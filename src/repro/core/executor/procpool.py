"""Process-pool morsel backend: picklable kernel specs and worker processes.

Thread morsels (PR 2) close over live objects — plugins, caches, compiled
functions — none of which can cross a process boundary. This module defines
the *kernel spec* protocol that makes morsel kernels shippable: a
self-contained work description (source paths + format descriptors + scan
ranges + the query's fold/predicate logic) that a child process rehydrates
and compiles or interprets locally.

The contract, mirrored by ARCHITECTURE.md:

- The parent ships a :class:`KernelSpec` once per parallel scan; children
  cache the rehydrated state (catalog, exec'd JIT module or unpickled
  physical plan) keyed by the spec bytes, so per-morsel cost is one small
  ``(spec_key, morsel)`` message.
- Children build raw-column partials plus worker-local stat deltas and
  positional-map partials; they never touch the parent's cache. All cache
  and posmap admission happens in the parent, in morsel order, exactly as
  the thread path does.
- Large homogeneous numeric columns ride in ``multiprocessing.shared_memory``
  segments instead of pickles; the parent attaches, copies, and unlinks.
  Abandoned results (LIMIT early stop, first-exception cancellation) are
  released by the scheduler's ``discard`` hook so segments never leak.
"""

from __future__ import annotations

import array
import multiprocessing
import pickle
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

#: formats whose sources can be described by a SourceSpec and rebuilt in a
#: worker without dragging live object graphs across the process boundary
SPECABLE_FORMATS = ("csv", "json", "array", "xls", "memory")

#: columns shorter than this (elements) are cheaper to pickle than to ship
#: through a shared-memory segment (attach/copy overhead dominates)
SHM_MIN_ELEMENTS = 16384

#: rehydrated query states kept per worker process (catalog + module/plan)
_CHILD_CACHE_MAX = 8


# ---------------------------------------------------------------------------
# kernel specs


@dataclass(frozen=True)
class SourceSpec:
    """Self-contained description of one catalog source.

    Carries exactly what a worker needs to rebuild the plugin *without*
    re-running schema inference: explicit columns/types for CSV, the
    complete positional map for warm CSV scans, semi-index spans for JSON.
    """

    name: str
    format: str
    path: str | None = None
    #: format-specific scalars (CSV delimiter/header, array dims, xls sheet)
    options: tuple = ()
    columns: tuple | None = None
    types: tuple | None = None
    #: pickled auxiliary structure (complete posmap / semi-index spans)
    aux: bytes | None = None
    #: in-memory sources ship their rows directly
    data: tuple | None = None


@dataclass(frozen=True)
class KernelSpec:
    """Everything a worker process needs to run one query's morsel kernel."""

    kind: str  # "jit" | "static"
    #: JIT: utf-8 generated module source; static: pickled physical plan
    payload: bytes
    #: JIT worker function name inside the module ("" for static)
    worker: str = ""
    sources: tuple = ()  # SourceSpec per catalog source
    #: pickled read-only shared state (hash tables, monoids, NL inner rows)
    shared: bytes = b""
    cleaning: bytes = b""  # pickled {source name: cleaning policy}
    row_limit: int | None = None
    #: table-statistics marching orders: (source, row count known?, known
    #: column names) per source — children collect only what the parent's
    #: shared registry is missing, and ship StatsPartial byproducts home
    stats_sources: tuple = ()


def source_spec(entry) -> SourceSpec:
    """Describe one catalog entry for worker-side rebuilding."""
    fmt = entry.format
    if fmt == "memory":
        return SourceSpec(entry.name, fmt, data=tuple(entry.data))
    plugin = entry.plugin
    if fmt == "csv":
        aux = pickle.dumps(plugin.posmap) if plugin.posmap.complete else None
        return SourceSpec(
            entry.name, fmt, path=plugin.path,
            options=(plugin.options.delimiter, plugin.options.header),
            columns=tuple(plugin.columns), types=tuple(plugin.types), aux=aux,
        )
    if fmt == "json":
        aux = None
        if plugin.has_semi_index():
            aux = pickle.dumps(tuple(plugin.semi_index.spans))
        return SourceSpec(entry.name, fmt, path=plugin.path, aux=aux)
    if fmt == "array":
        return SourceSpec(entry.name, fmt, path=plugin.path,
                          options=tuple(plugin.dim_names or ()))
    if fmt == "xls":
        return SourceSpec(entry.name, fmt, path=plugin.path,
                          options=(entry.description.options.get("sheet"),))
    raise ValueError(f"source {entry.name!r} ({fmt}) has no process-safe spec")


def catalog_specs(catalog) -> tuple:
    """Specs for every spec-able source; non-shippable ones are skipped
    (the planner guarantees a process-backend plan references none)."""
    specs = []
    for name in sorted(catalog.names()):
        entry = catalog.get(name)
        if entry.format in SPECABLE_FORMATS:
            specs.append(source_spec(entry))
    return tuple(specs)


def build_catalog(specs):
    """Worker side: rebuild a catalog from shipped specs. CSV entries reuse
    the parent's sniffed schema (explicit columns/types) and, for warm scans,
    its complete positional map, so children never re-infer anything big."""
    from ..catalog import Catalog

    cat = Catalog()
    for s in specs:
        if s.format == "csv":
            entry = cat.register_csv(
                s.name, s.path, delimiter=s.options[0], header=s.options[1],
                columns=list(s.columns), types=list(s.types),
            )
            if s.aux is not None:
                entry.plugin.posmap = pickle.loads(s.aux)
        elif s.format == "json":
            entry = cat.register_json(s.name, s.path)
            if s.aux is not None:
                from ...formats.jsonfmt.semi_index import JSONSemiIndex

                entry.plugin._semi_index = JSONSemiIndex(list(pickle.loads(s.aux)))
        elif s.format == "array":
            cat.register_array(s.name, s.path, list(s.options) or None)
        elif s.format == "xls":
            cat.register_xls(s.name, s.path, s.options[0])
        elif s.format == "memory":
            cat.register_memory(s.name, list(s.data))
    return cat


def jit_spec(rt, module_source: str, worker: str, shared: dict) -> KernelSpec:
    """Spec for a JIT parallel scan: the generated module plus the worker's
    read-only closure state (hash tables, monoid objects, NL inner rows)."""
    return KernelSpec(
        kind="jit", payload=module_source.encode("utf-8"), worker=worker,
        sources=catalog_specs(rt.catalog), shared=pickle.dumps(shared),
        cleaning=pickle.dumps(rt.cleaning), row_limit=rt.row_limit,
        stats_sources=rt._stats_spec(),
    )


def static_spec(rt, plan, shared_ix: dict) -> KernelSpec:
    """Spec for a static-engine parallel scan: the pickled physical plan plus
    prebuilt join state re-keyed by stable chain index (object ids do not
    survive pickling)."""
    return KernelSpec(
        kind="static", payload=pickle.dumps(plan),
        sources=catalog_specs(rt.catalog), shared=pickle.dumps(shared_ix),
        cleaning=pickle.dumps(rt.cleaning), row_limit=rt.row_limit,
        stats_sources=rt._stats_spec(),
    )


# ---------------------------------------------------------------------------
# worker-process entry points


_CHILD_CACHE: "OrderedDict[bytes, tuple]" = OrderedDict()


def _exec_module(source: str) -> dict:
    """Exec a generated JIT module with the same globals recipe the parent
    compiler uses, so helper names resolve identically."""
    import math

    from ..codegen.helpers import HELPERS

    ns = {
        "_H": HELPERS,
        "_m_sqrt": math.sqrt,
        "_m_exp": math.exp,
        "_m_log": math.log,
    }
    ns.update(HELPERS)
    exec(compile(source, "<vida-process-kernel>", "exec"), ns)
    return ns


def _child_state(spec_bytes: bytes) -> tuple:
    """Rehydrate (or fetch the cached) query state for a spec."""
    state = _CHILD_CACHE.get(spec_bytes)
    if state is not None:
        _CHILD_CACHE.move_to_end(spec_bytes)
        return state
    spec = pickle.loads(spec_bytes)
    catalog = build_catalog(spec.sources)
    cleaning = pickle.loads(spec.cleaning)
    shared = pickle.loads(spec.shared)
    if spec.kind == "jit":
        ns = _exec_module(spec.payload.decode("utf-8"))
        state = (spec, catalog, cleaning, shared, ns[spec.worker])
    else:
        from .static_engine import StaticExecutor, rekey_shared

        plan = pickle.loads(spec.payload)
        shared = rekey_shared(plan, shared)
        state = (spec, catalog, cleaning, shared, (StaticExecutor(catalog), plan))
    while len(_CHILD_CACHE) >= _CHILD_CACHE_MAX:
        _CHILD_CACHE.popitem(last=False)
    _CHILD_CACHE[spec_bytes] = state
    return state


def _child_runtime(catalog, cleaning, row_limit, stats_sources=()):
    from ...caching import DataCache
    from .runtime import QueryRuntime

    stats_hint = {
        src: (have_rows, frozenset(known))
        for src, have_rows, known in stats_sources
    }
    return QueryRuntime(catalog, DataCache(0), cleaning, {},
                        row_limit=row_limit, stats_hint=stats_hint)


def _finish(rt, partial) -> tuple:
    """Package one morsel's result: packed partial + stat deltas + posmap
    and stats partials, all merged by the parent under its lock."""
    stats = (rt.stats.raw_rows, rt.stats.cleaned_rows,
             rt.stats.skipped_rows, rt.stats.cache_rows)
    posmaps = tuple(
        (src, part)
        for src, by_split in rt._posmap_parts.items()
        for part in by_split.values()
    )
    statparts = tuple(
        (src, part)
        for src, by_split in rt._stats_parts.items()
        for part in by_split.values()
    )
    return (pack_partial(partial), stats, posmaps, statparts)


def run_jit_morsel(spec_bytes: bytes, morsel) -> tuple:
    """Child task: run one JIT morsel kernel against a fresh local runtime."""
    spec, catalog, cleaning, shared, worker = _child_state(spec_bytes)
    rt = _child_runtime(catalog, cleaning, spec.row_limit, spec.stats_sources)
    return _finish(rt, worker(rt, shared, morsel))


def run_static_morsel(spec_bytes: bytes, morsel) -> tuple:
    """Child task: interpret one morsel of a static physical plan."""
    spec, catalog, cleaning, shared, (executor, plan) = _child_state(spec_bytes)
    rt = _child_runtime(catalog, cleaning, spec.row_limit, spec.stats_sources)
    return _finish(rt, executor.driver_partial(plan, rt, morsel, shared))


# ---------------------------------------------------------------------------
# shared-memory column transport


class _ShmList:
    """Placeholder for a column living in a shared-memory segment.

    ``__len__`` answers without attaching, so the parent's LIMIT stop
    predicate can count rows before (or without ever) decoding."""

    __slots__ = ("name", "count", "fmt")

    def __init__(self, name: str, count: int, fmt: str):
        self.name = name
        self.count = count
        self.fmt = fmt

    def __len__(self) -> int:
        return self.count


def _pack_column(col):
    """Move a large homogeneous int/float list into shared memory; anything
    else (mixed types, Nones, strings, small lists) stays a pickled list."""
    if not isinstance(col, list) or len(col) < SHM_MIN_ELEMENTS:
        return col
    first = col[0]
    if isinstance(first, bool) or not isinstance(first, (int, float)):
        return col
    fmt = "d" if isinstance(first, float) else "q"
    typ = float if fmt == "d" else int
    if any(type(v) is not typ for v in col):
        return col
    try:
        buf = array.array(fmt, col)
    except (OverflowError, TypeError):  # e.g. ints beyond 64 bits
        return col
    from multiprocessing import resource_tracker, shared_memory

    nbytes = len(buf) * buf.itemsize
    seg = shared_memory.SharedMemory(create=True, size=nbytes)
    seg.buf[:nbytes] = buf.tobytes()
    name = seg.name
    # The parent owns the segment's lifetime (it unlinks after reading or via
    # the scheduler's discard hook); stop this process's resource tracker
    # from reaping it when the worker is recycled.
    try:
        resource_tracker.unregister(getattr(seg, "_name", name), "shared_memory")
    except Exception:
        pass
    seg.close()
    return _ShmList(name, len(col), fmt)


def _pack_value(v):
    if isinstance(v, dict) and set(v) == {"columns", "whole"}:
        # a static-engine populate dict: pack each projected column
        return {"columns": {f: _pack_column(c) for f, c in v["columns"].items()},
                "whole": v["whole"]}
    return _pack_column(v)


def pack_partial(partial):
    if not isinstance(partial, tuple):
        return partial
    return tuple(_pack_value(v) for v in partial)


def _read_segment(ref: _ShmList, unlink: bool) -> list:
    from multiprocessing import shared_memory

    seg = shared_memory.SharedMemory(name=ref.name)
    try:
        buf = array.array(ref.fmt)
        buf.frombytes(bytes(seg.buf[: ref.count * buf.itemsize]))
        return buf.tolist()
    finally:
        seg.close()
        if unlink:
            seg.unlink()


def _unpack_value(v):
    if isinstance(v, _ShmList):
        return _read_segment(v, unlink=True)
    if isinstance(v, dict) and set(v) == {"columns", "whole"}:
        return {"columns": {f: _unpack_value(c) for f, c in v["columns"].items()},
                "whole": v["whole"]}
    return v


def unpack_partial(partial):
    """Parent side: materialise a packed partial, unlinking any segments."""
    if not isinstance(partial, tuple):
        return partial
    return tuple(_unpack_value(v) for v in partial)


def _release_value(v) -> None:
    from multiprocessing import shared_memory

    if isinstance(v, _ShmList):
        seg = shared_memory.SharedMemory(name=v.name)
        seg.close()
        seg.unlink()
    elif isinstance(v, dict) and set(v) == {"columns", "whole"}:
        for c in v["columns"].values():
            _release_value(c)


def release_result(result) -> None:
    """Scheduler ``discard`` hook: free the shared-memory segments of a
    morsel result nobody will consume (LIMIT stop / exception cancel)."""
    try:
        packed = result[0]
        if isinstance(packed, tuple):
            for v in packed:
                _release_value(v)
    except Exception:
        pass  # best effort — a vanished segment is already released


# ---------------------------------------------------------------------------
# the session-lifetime pool


def _noop(_i: int) -> int:
    return _i


class WorkerPool:
    """Lazily-spawned, engine-lifetime ``ProcessPoolExecutor`` (spawn
    context, so workers are safe regardless of parent threads) reused across
    queries and *shared by every session* of an engine context — process
    spawn is a per-engine fixed cost, not per-query or per-tenant.

    Lifecycle is concurrency-safe and idempotent: sessions are refcounted
    by the owning :class:`~repro.core.engine.EngineContext`, which calls
    :meth:`shutdown` when the last one detaches; repeated shutdowns are
    no-ops, and submitting against a permanently closed pool raises a clear
    error instead of hanging on a dead executor.
    """

    def __init__(self, max_workers: int):
        self.max_workers = max(1, int(max_workers))
        self._executor: ProcessPoolExecutor | None = None
        self._mutex = threading.Lock()
        self._closed = False

    def executor(self) -> ProcessPoolExecutor:
        with self._mutex:
            if self._closed:
                from ...errors import ExecutionError

                raise ExecutionError(
                    "worker pool is permanently closed (engine context shut "
                    "down); open a new session against a live context"
                )
            if self._executor is None:
                ctx = multiprocessing.get_context("spawn")
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers, mp_context=ctx
                )
            return self._executor

    def prestart(self) -> None:
        """Spawn and warm every worker up front (benchmarks call this so
        interpreter start-up never lands inside a timed region)."""
        ex = self.executor()
        list(ex.map(_noop, range(self.max_workers * 2)))

    def shutdown(self, permanent: bool = True) -> None:
        """Reap the worker processes. Idempotent; ``permanent`` (the
        default — the engine context only shuts a pool it is discarding)
        additionally poisons the pool so later submits fail fast."""
        with self._mutex:
            if permanent:
                self._closed = True
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
