"""Query executors: JIT (generated code) and static (interpreted)."""

from .engine import JITExecutor, plan_fingerprint
from .runtime import ExecStats, QueryRuntime
from .static_engine import StaticExecutor, eval_expr

__all__ = ["ExecStats", "JITExecutor", "QueryRuntime", "StaticExecutor",
           "eval_expr", "plan_fingerprint"]
