"""Static executor: pre-generated, generic, interpreted operators.

This is the repo's stand-in for the paper's static engine ("for the rest of
the queries … we use a static pre-generated executor", §6) and the foil for
the JIT executor: Volcano-style pull operators over generic environment
dicts, with every expression evaluated by a recursive interpreter. The
"significant interpretation overhead" of pre-cooked operators (§4) is
exactly what the JIT-vs-static benchmark measures.

Semantics match the generated code exactly (null-skipping numeric
aggregates, null-safe ordering comparisons, set-monoid dedup by canonical
hashable keys) so the two engines are differential-testable.
"""

from __future__ import annotations

from typing import Iterator

from ...errors import ExecutionError
from ...mcc import ast as A
from ...mcc.monoids import Monoid, get_monoid
from ..chunk import chunked
from ..codegen.helpers import HELPERS, get_path, hashable, like
from ..physical import (
    PhysExprScan,
    PhysFilter,
    PhysHashJoin,
    PhysNest,
    PhysNLJoin,
    PhysNode,
    PhysReduce,
    PhysScan,
    PhysUnnest,
    chain_nest,
)

Env = dict


def _chain_nodes(node: PhysNode) -> list[PhysNode]:
    """Join nodes along the driver chain, in a stable top-down order.

    This is the traversal ``_prebuild_chain`` uses to attach shared state,
    exposed so the process backend can translate its ``id(node)``-keyed
    shared dict into chain *indexes* — stable across a pickle round-trip,
    unlike object ids.
    """
    out: list[PhysNode] = []
    while True:
        if isinstance(node, (PhysFilter, PhysUnnest, PhysNest)):
            node = node.child
        elif isinstance(node, PhysHashJoin):
            out.append(node)
            node = node.probe
        elif isinstance(node, PhysNLJoin):
            out.append(node)
            node = node.outer
        else:
            return out


def rekey_shared(plan: PhysReduce, shared_by_index: dict) -> dict:
    """Child-side inverse of the chain-index translation: rebind shared
    join state to the ids of *this* process's unpickled plan nodes."""
    nodes = _chain_nodes(plan.child)
    return {id(nodes[i]): state for i, state in shared_by_index.items()}


# ---------------------------------------------------------------------------
# Expression interpreter
# ---------------------------------------------------------------------------

_NUMERIC_SKIP_NULL = ("sum", "prod", "avg", "max", "min")


def eval_expr(expr: A.Expr, env: Env, rt) -> object:
    """Interpret a calculus expression under variable bindings ``env``."""
    if isinstance(expr, A.Null):
        return None
    if isinstance(expr, A.Const):
        return expr.value
    if isinstance(expr, A.Var):
        if expr.name in env:
            return env[expr.name]
        if expr.name in rt.catalog.names():
            return list(rt.iter_source(expr.name))
        raise ExecutionError(f"unbound variable {expr.name!r}")
    if isinstance(expr, A.Proj):
        base = eval_expr(expr.expr, env, rt)
        return get_path(base, (expr.attr,))
    if isinstance(expr, A.RecordCons):
        return {name: eval_expr(e, env, rt) for name, e in expr.fields}
    if isinstance(expr, A.If):
        if eval_expr(expr.cond, env, rt):
            return eval_expr(expr.then, env, rt)
        return eval_expr(expr.els, env, rt)
    if isinstance(expr, A.BinOp):
        return _eval_binop(expr, env, rt)
    if isinstance(expr, A.UnOp):
        value = eval_expr(expr.expr, env, rt)
        return (not value) if expr.op == "not" else (-value)
    if isinstance(expr, A.Call):
        return _eval_call(expr, env, rt)
    if isinstance(expr, A.ListLit):
        return [eval_expr(e, env, rt) for e in expr.items]
    if isinstance(expr, A.Index):
        base = eval_expr(expr.expr, env, rt)
        for ix in expr.indices:
            base = base[eval_expr(ix, env, rt)]
        return base
    if isinstance(expr, A.Comprehension):
        return _eval_comprehension(expr, env, rt)
    if isinstance(expr, A.Zero):
        return expr.monoid.finalize(expr.monoid.zero())
    if isinstance(expr, A.Singleton):
        return expr.monoid.finalize(expr.monoid.unit(eval_expr(expr.expr, env, rt)))
    if isinstance(expr, A.Merge):
        m = expr.monoid
        left = eval_expr(expr.left, env, rt)
        right = eval_expr(expr.right, env, rt)
        return _merge_finalized(m, left, right)
    if isinstance(expr, A.Lambda):
        return lambda arg: eval_expr(expr.body, {**env, expr.param: arg}, rt)
    if isinstance(expr, A.Apply):
        fn = eval_expr(expr.func, env, rt)
        return fn(eval_expr(expr.arg, env, rt))
    raise ExecutionError(f"cannot interpret {type(expr).__name__}")


def _merge_finalized(m: Monoid, left, right):
    """Merge two already-finalized monoid values (top-level Merge nodes)."""
    if m.collection or m.name in ("sum", "prod", "count", "any", "all"):
        if m.name == "set":
            out = m.zero()
            for v in (list(left) + list(right)):
                out = m.merge(out, m.lift(v))
            return m.finalize(out)
        if m.collection:
            return list(left) + list(right)
        return m.merge(left, right)
    if m.name in ("max", "min"):
        return m.merge(left, right)
    raise ExecutionError(f"cannot merge finalized values of monoid {m.name!r}")


def _eval_binop(expr: A.BinOp, env: Env, rt):
    op = expr.op
    if op == "and":
        return bool(eval_expr(expr.left, env, rt)) and bool(eval_expr(expr.right, env, rt))
    if op == "or":
        return bool(eval_expr(expr.left, env, rt)) or bool(eval_expr(expr.right, env, rt))
    left = eval_expr(expr.left, env, rt)
    right = eval_expr(expr.right, env, rt)
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op in ("<", "<=", ">", ">="):
        if left is None or right is None:
            return False
        return {"<": left < right, "<=": left <= right,
                ">": left > right, ">=": left >= right}[op]
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right
    if op == "%":
        return left % right
    if op == "in":
        return left in right
    if op == "like":
        return like(left, right)
    raise ExecutionError(f"unknown operator {op!r}")


def _eval_call(expr: A.Call, env: Env, rt):
    import math

    args = [eval_expr(a, env, rt) for a in expr.args]
    name = expr.name
    helper_map = {
        "lower": "_lower", "upper": "_upper", "len": "_len", "abs": "_abs",
        "substr": "_substr", "contains": "_contains",
        "startswith": "_startswith", "endswith": "_endswith",
    }
    if name in helper_map:
        return HELPERS[helper_map[name]](*args)
    plain = {"round": round, "float": float, "int": int, "str": str,
             "sqrt": math.sqrt, "exp": math.exp, "log": math.log}
    if name in plain:
        return plain[name](*args)
    raise ExecutionError(f"unknown builtin {name!r}")


def _eval_comprehension(comp: A.Comprehension, env: Env, rt):
    m = comp.monoid
    acc = m.zero()
    skip_null = m.name in _NUMERIC_SKIP_NULL

    def rec(qualifiers: tuple, scope: Env):
        nonlocal acc
        if not qualifiers:
            head = eval_expr(comp.head, scope, rt)
            if skip_null and head is None:
                return
            acc = m.merge(acc, m.lift(head))
            return
        q = qualifiers[0]
        rest = qualifiers[1:]
        if isinstance(q, A.Generator):
            if isinstance(q.source, A.Var) and q.source.name not in scope \
                    and q.source.name in rt.catalog.names():
                items = rt.iter_source(q.source.name)
            else:
                items = eval_expr(q.source, scope, rt) or ()
            for item in items:
                rec(rest, {**scope, q.var: item})
        elif isinstance(q, A.Filter):
            if eval_expr(q.pred, scope, rt):
                rec(rest, scope)
        elif isinstance(q, A.Bind):
            rec(rest, {**scope, q.var: eval_expr(q.expr, scope, rt)})
        else:
            raise ExecutionError(f"unknown qualifier {type(q).__name__}")

    rec(comp.qualifiers, env)
    return m.finalize(acc)


# ---------------------------------------------------------------------------
# Plan interpreter (Volcano-style pull operators)
# ---------------------------------------------------------------------------


class StaticExecutor:
    """Interprets physical plans with generic pull operators."""

    def __init__(self, catalog):
        self.catalog = catalog

    def execute(self, plan: PhysReduce, rt):
        from ..physical import parallel_driver

        driver = parallel_driver(plan)
        if driver is not None and driver.parallel > 1:
            return self._execute_parallel(plan, rt, driver)
        m = plan.monoid
        acc = m.zero()
        skip_null = m.name in _NUMERIC_SKIP_NULL
        for env in self._iter(plan.child, rt):
            head = eval_expr(plan.head, env, rt)
            if skip_null and head is None:
                continue
            if m.name == "count":
                acc = m.merge(acc, 1)
            else:
                acc = m.merge(acc, m.lift(head))
        return m.finalize(acc)

    def _execute_parallel(self, plan: PhysReduce, rt, driver: PhysScan):
        """Morsel-driven fold: the driver scan shards; workers fold into
        their own monoid accumulators; partials merge in morsel order.

        Hash-table builds and nested-loop inner materialisations along the
        driver chain run *once*, up front, and are shared read-only by every
        worker. Cache-population columns accumulate per worker and are
        admitted once after the ordered merge, exactly like a serial scan.
        """
        m = plan.monoid
        nest = chain_nest(plan)
        shared: dict = {}
        self._prebuild_chain(plan.child, rt, shared)
        if driver.access != "cache" and driver.format in ("csv", "json", "array"):
            rt.account_raw(driver.source)
        # mirror _scan's cache request shape exactly so the split probe and
        # the workers' cache_chunks calls share one memoised lookup
        if driver.bind_whole or not driver.fields:
            req_fields, req_whole = (), True
        else:
            req_fields, req_whole = driver.fields, False
        # bag/list folds are LIMIT-countable: over-partition so the
        # scheduler can cancel pending morsels once the limit is satisfied
        # (never through a nest — group counts don't track row counts)
        limited = m.name in ("bag", "list") and nest is None
        splits = rt.scan_splits(driver.source, driver.parallel,
                                access=driver.access, fields=req_fields,
                                whole=req_whole, limited=limited)

        if driver.backend == "process":
            nodes = _chain_nodes(plan.child)
            shared_ix = {i: shared[id(n)] for i, n in enumerate(nodes)
                         if id(n) in shared}
            partials = rt.run_morsels_plan(plan, shared_ix, splits,
                                           driver.parallel, limited=limited)
        else:
            def worker(split):
                return self.driver_partial(plan, rt, split, shared)

            partials = rt.run_morsels(worker, splits, driver.parallel,
                                      limited=limited)
        if driver.access != "cache":
            rt.finish_scan(driver.source, splits)
        merged: dict[str, list] = {}
        merged_whole: list = []
        for _pacc, pop in partials:
            for f, col in pop["columns"].items():
                merged.setdefault(f, []).extend(col)
            merged_whole.extend(pop["whole"])
        if driver.populate == ("*",):
            rt.admit_elements(driver.source, driver.populate_layout, merged_whole)
        else:
            scalar_pop = tuple(f for f in driver.populate if f != "*")
            if scalar_pop and merged:
                rt.admit_columns(driver.source, scalar_pop,
                                 tuple(merged[f] for f in scalar_pop))
        if nest is not None:
            # merge per-key group partials in morsel order (first occurrence
            # fixes key order, same as serial), park them where _iter's Nest
            # operator looks, and run everything above the nest serially
            gm = nest.monoid
            merged_groups: dict = {}
            for groups, _pop in partials:
                for key, (acc, raw_key) in groups.items():
                    prev = merged_groups.get(key)
                    if prev is None:
                        merged_groups[key] = (acc, raw_key)
                    else:
                        merged_groups[key] = (gm.merge(prev[0], acc), prev[1])
            shared[("nest", id(nest))] = merged_groups
            skip_null = m.name in _NUMERIC_SKIP_NULL
            acc = m.zero()
            for env in self._iter(plan.child, rt, shared=shared):
                head = eval_expr(plan.head, env, rt)
                if skip_null and head is None:
                    continue
                if m.name == "count":
                    acc = m.merge(acc, 1)
                else:
                    acc = m.merge(acc, m.lift(head))
            return m.finalize(acc)
        acc = m.zero()
        for pacc, _pop in partials:
            acc = m.merge(acc, pacc)
        return m.finalize(acc)

    def driver_partial(self, plan: PhysReduce, rt, split, shared):
        """One morsel's partial: the fold (or, when the plan shards at a
        grouping Nest, the per-key group accumulators) over the driver
        chain restricted to ``split``, plus the scan's cache-population
        share. Called by thread workers directly and by process-pool
        children through the kernel-spec protocol."""
        pop: dict = {"columns": {}, "whole": []}
        nest = chain_nest(plan)
        if nest is not None:
            gm = nest.monoid
            groups: dict = {}
            for env in self._iter(nest.child, rt, split=split, shared=shared,
                                  pop=pop):
                key = tuple(hashable(eval_expr(e, env, rt))
                            for _n, e in nest.keys)
                raw_key = tuple(eval_expr(e, env, rt) for _n, e in nest.keys)
                acc, _raw = groups.get(key, (gm.zero(), raw_key))
                groups[key] = (
                    gm.merge(acc, gm.lift(eval_expr(nest.head, env, rt))),
                    raw_key,
                )
            return groups, pop
        m = plan.monoid
        skip_null = m.name in _NUMERIC_SKIP_NULL
        acc = m.zero()
        for env in self._iter(plan.child, rt, split=split, shared=shared,
                              pop=pop):
            head = eval_expr(plan.head, env, rt)
            if skip_null and head is None:
                continue
            if m.name == "count":
                acc = m.merge(acc, 1)
            else:
                acc = m.merge(acc, m.lift(head))
        return acc, pop

    def _prebuild_chain(self, node: PhysNode, rt, shared: dict) -> None:
        """Materialise join state along the driver chain, once, serially."""
        while True:
            if isinstance(node, (PhysFilter, PhysUnnest, PhysNest)):
                node = node.child
            elif isinstance(node, PhysHashJoin):
                shared[id(node)] = self._build_table(node, rt)
                node = node.probe
            elif isinstance(node, PhysNLJoin):
                shared[id(node)] = list(self._iter(node.inner, rt))
                node = node.outer
            else:
                return

    def _build_table(self, node: PhysHashJoin, rt) -> dict:
        """Vectorized hash-join build: materialise the build rows, run one
        key kernel over them, then bulk-insert (mirrors the JIT engine's
        key-column kernel + dict-update loop)."""
        envs = list(self._iter(node.build, rt))
        keys = [tuple(hashable(eval_expr(k, env, rt)) for k in node.build_keys)
                for env in envs]
        table: dict = {}
        setdef = table.setdefault
        for key, env in zip(keys, envs):
            setdef(key, []).append(env)
        return table

    # -- operators ------------------------------------------------------------

    def _iter(self, node: PhysNode, rt, split=None, shared=None,
              pop=None) -> Iterator[Env]:
        """Pull-iterate one plan node.

        ``split``/``shared``/``pop`` carry the morsel-parallel context down
        the driver chain only: the split restricts the driver scan, shared
        join state replaces per-call builds, and ``pop`` collects the driver
        scan's cache-population columns for the coordinator to admit.
        """
        if isinstance(node, PhysScan):
            yield from self._scan(node, rt, split=split, pop=pop)
        elif isinstance(node, PhysExprScan):
            items = eval_expr(node.expr, {}, rt) or ()
            for item in items:
                env = {node.var: item}
                if node.pred is None or eval_expr(node.pred, env, rt):
                    yield env
        elif isinstance(node, PhysFilter):
            for env in self._iter(node.child, rt, split, shared, pop):
                if eval_expr(node.pred, env, rt):
                    yield env
        elif isinstance(node, PhysHashJoin):
            table = shared.get(id(node)) if shared is not None else None
            if table is None:
                table = self._build_table(node, rt)
            # vectorized probe: batch the probe stream, run one key kernel
            # per batch, narrow a matched-selection vector (empty vectors
            # short-circuit), then join only the survivors
            probe_keys = node.probe_keys
            residual = node.residual
            for batch in chunked(self._iter(node.probe, rt, split, shared, pop)):
                keys = [tuple(hashable(eval_expr(k, env, rt))
                              for k in probe_keys) for env in batch]
                matched = [i for i, key in enumerate(keys) if key in table]
                if not matched:
                    continue
                for i in matched:
                    env = batch[i]
                    for build_env in table[keys[i]]:
                        joined = {**build_env, **env}
                        if residual is None or eval_expr(residual, joined, rt):
                            yield joined
        elif isinstance(node, PhysNLJoin):
            if shared is not None and id(node) in shared:
                inner_rows = shared[id(node)]
            else:
                inner_rows = list(self._iter(node.inner, rt))
            for outer_env in self._iter(node.outer, rt, split, shared, pop):
                for inner_env in inner_rows:
                    joined = {**outer_env, **inner_env}
                    if node.pred is None or eval_expr(node.pred, joined, rt):
                        yield joined
        elif isinstance(node, PhysUnnest):
            for env in self._iter(node.child, rt, split, shared, pop):
                items = eval_expr(node.path, env, rt) or ()
                for item in items:
                    child_env = {**env, node.var: item}
                    if node.pred is None or eval_expr(node.pred, child_env, rt):
                        yield child_env
        elif isinstance(node, PhysNest):
            m = node.monoid
            groups: dict | None = None
            if shared is not None:
                # a parallel run already built and merged this node's groups
                groups = shared.get(("nest", id(node)))
            if groups is None:
                groups = {}
                for env in self._iter(node.child, rt, split, shared, pop):
                    key = tuple(hashable(eval_expr(e, env, rt)) for _n, e in node.keys)
                    raw_key = tuple(eval_expr(e, env, rt) for _n, e in node.keys)
                    acc, _raw = groups.get(key, (m.zero(), raw_key))
                    groups[key] = (m.merge(acc, m.lift(eval_expr(node.head, env, rt))), raw_key)
            for _key, (acc, raw_key) in groups.items():
                record = {name: raw_key[i] for i, (name, _e) in enumerate(node.keys)}
                record[node.agg_name] = m.finalize(acc)
                yield {node.group_var: record}
        elif isinstance(node, PhysReduce):
            raise ExecutionError("nested PhysReduce is not a streaming operator")
        else:
            raise ExecutionError(f"cannot interpret {type(node).__name__}")

    def _scan(self, node: PhysScan, rt, split=None, pop=None) -> Iterator[Env]:
        entry = self.catalog.get(node.source)
        fmt = entry.format
        pred = node.pred
        if isinstance(pred, A.Const) and pred.value is True:
            pred = None

        def emit(value) -> Iterator[Env]:
            env = {node.var: value}
            if pred is None or eval_expr(pred, env, rt):
                yield env

        def filter_batch(envs: list) -> list:
            """Per-chunk predicate kernel: one comprehension narrowing the
            batch's surviving rows (empty result short-circuits the chunk
            at the call site). Selection vectors carried by the chunk were
            already honoured by the selection-aware iteration helpers."""
            if pred is None:
                return envs
            return [env for env in envs if eval_expr(pred, env, rt)]

        def flush_populate(populate: dict, whole_pop: list | None = None) -> None:
            # morsel workers hand their population share to the coordinator
            # (ordered merge + single admission); serial scans admit directly
            if pop is not None:
                for f, col in populate.items():
                    pop["columns"].setdefault(f, []).extend(col)
                if whole_pop:
                    pop["whole"].extend(whole_pop)
                return
            if node.populate == ("*",):
                rt.admit_elements(node.source, node.populate_layout,
                                  whole_pop or [])
            elif populate:
                fields = tuple(populate)
                rt.admit_columns(node.source, fields,
                                 tuple(populate[f] for f in fields))

        var = node.var
        if node.access == "memory" or entry.data is not None:
            for item in rt.memory(node.source):
                yield from emit(item)
            return
        if node.access == "cache":
            if node.bind_whole or not node.fields:
                for chunk in rt.cache_chunks(node.source, (), whole=True,
                                             split=split):
                    kept = filter_batch([{var: obj}
                                         for obj in chunk.iter_whole()])
                    if not kept:
                        continue
                    yield from kept
                return
            for chunk in rt.cache_chunks(node.source, node.fields, whole=False,
                                         split=split):
                kept = filter_batch(
                    [{var: _record_from_paths(node.fields, values)}
                     for values in chunk.iter_rows()])
                if not kept:
                    continue
                yield from kept
            return
        if node.access == "index" and fmt in ("csv", "json"):
            # value-index access path: candidate rows through the JIT index,
            # holes scanned in place; ``pred`` stays as the recheck so
            # partial-coverage indexes remain exact
            whole = node.bind_whole or fmt == "json"
            scan_fields = node.chunk_fields()
            for chunk in rt.index_chunks(node.source, scan_fields,
                                         batch_size=node.batch_size,
                                         whole=whole,
                                         lookup=node.index_lookup,
                                         emit_fields=node.index_emit):
                if whole:
                    envs = [{var: record} for record in chunk.iter_whole()]
                else:
                    envs = [{var: dict(zip(scan_fields, values))}
                            for values in chunk.iter_rows()]
                kept = filter_batch(envs)
                if not kept:
                    continue
                yield from kept
            return
        if fmt == "csv":
            scan_fields = node.chunk_fields()
            populate: dict[str, list] = {f: [] for f in node.populate}
            pred_fields: tuple = ()
            pred_kernel = None
            if node.sel_push and pred is not None:
                pushed = _interpreted_pred_kernel(node, pred, rt)
                if pushed is not None:
                    pred_fields, pred_kernel = pushed
                    pred = None  # chunks arrive as dense predicate survivors
            for chunk in rt.csv_chunks(node.source, scan_fields,
                                       access=node.access,
                                       batch_size=node.batch_size,
                                       whole=node.bind_whole, split=split,
                                       pred_fields=pred_fields,
                                       pred_kernel=pred_kernel,
                                       index_fields=node.index_emit):
                _extend_populate(populate, chunk, scan_fields)
                if node.bind_whole:
                    envs = [{var: record} for record in chunk.iter_whole()]
                else:
                    envs = [{var: dict(zip(scan_fields, values))}
                            for values in chunk.iter_rows()]
                kept = filter_batch(envs)
                if not kept:
                    continue
                yield from kept
            if node.populate:
                flush_populate(populate)
            return
        if fmt == "json":
            scalar_pop = tuple(f for f in node.populate if f != "*")
            populate = {f: [] for f in scalar_pop}
            whole_pop: list = []
            for chunk in rt.json_chunks(node.source, scalar_pop,
                                        batch_size=node.batch_size, whole=True,
                                        split=split,
                                        index_fields=node.index_emit):
                _extend_populate(populate, chunk, scalar_pop)
                if node.populate == ("*",):
                    whole_pop.extend(chunk.iter_whole())
                kept = filter_batch([{var: obj} for obj in chunk.iter_whole()])
                if not kept:
                    continue
                yield from kept
            if node.populate:
                flush_populate(populate, whole_pop)
            return
        if fmt == "array":
            scan_fields = node.chunk_fields()
            populate = {f: [] for f in node.populate}
            for chunk in rt.array_chunks(node.source, scan_fields,
                                         batch_size=node.batch_size, whole=True,
                                         split=split):
                _extend_populate(populate, chunk, scan_fields)
                kept = filter_batch([{var: record}
                                     for record in chunk.iter_whole()])
                if not kept:
                    continue
                yield from kept
            if node.populate:
                flush_populate(populate)
            return
        if fmt == "xls":
            scan_fields = node.chunk_fields()
            populate = {f: [] for f in node.populate}
            for chunk in rt.xls_chunks(node.source, scan_fields,
                                       batch_size=node.batch_size, whole=True):
                _extend_populate(populate, chunk, scan_fields)
                kept = filter_batch([{var: record}
                                     for record in chunk.iter_whole()])
                if not kept:
                    continue
                yield from kept
            if node.populate:
                flush_populate(populate)
            return
        if fmt == "dbms":
            from ...warehouse.docstore import DocStore

            whole = node.bind_whole or isinstance(entry.plugin.store, DocStore)
            fields: tuple = () if whole else tuple(node.fields)
            if node.index_eq is not None:
                for record in rt.dbms_rows(node.source, fields, node.index_eq):
                    yield from emit(record)
                return
            for chunk in rt.dbms_chunks(node.source, fields,
                                        batch_size=node.batch_size, whole=whole):
                if chunk.whole is not None:
                    envs = [{var: record} for record in chunk.iter_whole()]
                else:
                    envs = [{var: dict(zip(fields, values))}
                            for values in chunk.iter_rows()]
                kept = filter_batch(envs)
                if not kept:
                    continue
                yield from kept
            return
        raise ExecutionError(f"no interpreted scan for format {fmt!r}")


def _interpreted_pred_kernel(node: PhysScan, pred: A.Expr, rt):
    """Selection-pushdown kernel for the interpreted engine: evaluates the
    scan predicate over the predicate columns only, returning surviving row
    indexes (the plugin materialises the other columns just for those)."""
    from ..physical import collect_usage

    usage = collect_usage(pred).get(node.var)
    if usage is None or usage.whole:
        return None
    fields = tuple(f for f in node.fields if f in usage.top_fields())
    if not fields:
        return None
    var = node.var

    def kernel(*cols):
        if len(cols) == 1:
            name = fields[0]
            return [i for i, v in enumerate(cols[0])
                    if eval_expr(pred, {var: {name: v}}, rt)]
        return [i for i, vals in enumerate(zip(*cols))
                if eval_expr(pred, {var: dict(zip(fields, vals))}, rt)]

    return fields, kernel


def _extend_populate(populate: dict, chunk, chunk_fields: tuple) -> None:
    """Accumulate cache-population columns, one whole-column extend per chunk.

    Uses the selection-compacted columns so rows a cleaning policy dropped
    never reach the cache.
    """
    if not populate:
        return
    cols = chunk.selected_columns()
    for f, acc in populate.items():
        acc.extend(cols[chunk_fields.index(f)])


def _record_from_paths(paths: tuple, values: tuple) -> dict:
    """Rebuild a nested record from dotted paths (cache-served scans)."""
    record: dict = {}
    for path, value in zip(paths, values):
        steps = path.split(".")
        target = record
        for step in steps[:-1]:
            target = target.setdefault(step, {})
        target[steps[-1]] = value
    return record
