"""Morsel-driven parallel scan scheduling.

The chunk protocol made the columnar batch the unit of data movement; this
module makes a *range of batches* — a **morsel** — the unit of scale-out
(Leis et al., "Morsel-Driven Parallelism", adapted to ViDa's raw-file scans).
Format plugins expose splittable scan ranges (CSV byte/row ranges, JSON span
ranges, array element ranges, cache row ranges); the planner picks a
degree of parallelism per driver scan; and :class:`MorselScheduler` fans the
per-morsel kernels out over a thread pool.

Correctness contract: every morsel kernel folds into a *worker-local*
accumulator, and partial results are merged **in morsel order** through the
query's monoid (associative merge), so parallel answers are bit-identical
to the serial fold — including ordered outputs (``bag``/``list``), ``set``
first-occurrence dedup, and per-key hash-join build order.

Failure contract: the first morsel exception fails the whole query. Pending
morsels are cancelled; already-running workers finish (their results are
discarded) so shutdown never hangs.

Early-termination contract: an optional ``stop`` predicate sees each partial
in morsel order; once it returns True the scheduler stops consuming, cancels
every still-pending morsel, and returns the ordered prefix — the mechanism
behind parallel SQL ``LIMIT`` cutting a scan short without changing which
rows are returned.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from ..chunk import MORSEL_ALL, Morsel, split_ranges  # noqa: F401 (re-export)


class MorselScheduler:
    """Runs per-morsel kernels on a bounded thread pool, in morsel order.

    ``map`` returns partial results aligned with the input morsels so the
    caller can merge them deterministically. With ``dop <= 1`` (or a single
    morsel) kernels run inline on the calling thread — the serial fallback
    shares the exact code path the workers run, which keeps parallel and
    serial execution differential-testable.
    """

    def __init__(self, dop: int):
        if dop < 1:
            raise ValueError(f"degree of parallelism must be >= 1, got {dop}")
        self.dop = dop
        #: morsels cancelled before they started (early termination)
        self.cancelled = 0

    def map(self, kernel, morsels: list[Morsel], stop=None) -> list:
        """Run kernels over ``morsels``; return partials in morsel order.

        ``stop(partial)``, checked as each partial is consumed in morsel
        order, ends the run early when it returns True: pending morsels are
        cancelled (counted in ``self.cancelled``), in-flight ones drain with
        their results discarded, and the ordered prefix is returned.
        """
        self.cancelled = 0
        if self.dop <= 1 or len(morsels) <= 1:
            results = []
            for i, m in enumerate(morsels):
                results.append(kernel(m))
                if stop is not None and stop(results[-1]):
                    self.cancelled = len(morsels) - i - 1
                    break
            return results
        workers = min(self.dop, len(morsels))
        with ThreadPoolExecutor(max_workers=workers,
                                thread_name_prefix="vida-morsel") as pool:
            futures = [pool.submit(kernel, m) for m in morsels]
            try:
                results = []
                for i, f in enumerate(futures):
                    results.append(f.result())
                    if stop is not None and stop(results[-1]):
                        for pending in futures[i + 1:]:
                            if pending.cancel():
                                self.cancelled += 1
                        break
                return results
            except BaseException:
                # fail fast: drop queued morsels; running ones drain on
                # pool shutdown (no result is consumed), then re-raise the
                # first failure in morsel order.
                for f in futures:
                    f.cancel()
                raise
