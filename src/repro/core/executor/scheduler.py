"""Morsel-driven parallel scan scheduling.

The chunk protocol made the columnar batch the unit of data movement; this
module makes a *range of batches* — a **morsel** — the unit of scale-out
(Leis et al., "Morsel-Driven Parallelism", adapted to ViDa's raw-file scans).
Format plugins expose splittable scan ranges (CSV byte/row ranges, JSON span
ranges, array element ranges, cache row ranges); the planner picks a
degree of parallelism per driver scan; and :class:`MorselScheduler` fans the
per-morsel kernels out over a thread pool. :class:`ProcessMorselScheduler`
runs the same contract over a session-lifetime process pool, for kernels
shipped as picklable specs (see ``procpool``) — the backend that scales on
GIL-ful CPython.

Correctness contract: every morsel kernel folds into a *worker-local*
accumulator, and partial results are merged **in morsel order** through the
query's monoid (associative merge), so parallel answers are bit-identical
to the serial fold — including ordered outputs (``bag``/``list``), ``set``
first-occurrence dedup, and per-key hash-join build order.

Failure contract: the first morsel exception fails the whole query. Pending
morsels are cancelled; already-running workers finish (their results are
discarded — through the ``discard`` hook when one is set, so process
results holding shared-memory segments are released) and shutdown never
hangs.

Early-termination contract: an optional ``stop`` predicate sees each partial
in morsel order; once it returns True the scheduler stops consuming, cancels
every still-pending morsel, and returns the ordered prefix — the mechanism
behind parallel SQL ``LIMIT`` cutting a scan short without changing which
rows are returned.

Backpressure contract: at most ~2×DoP morsels are in flight at once. Results
are consumed in morsel order and each consumed slot admits one more
submission, so over-partitioned LIMIT scans and wide chunks cannot pile an
unbounded queue of materialised partials — which matters double when every
partial is a pickled cross-process payload.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from ..chunk import MORSEL_ALL, Morsel, split_ranges  # noqa: F401 (re-export)


def _discarder(discard):
    """Done-callback that releases a future's result nobody will consume."""

    def _cb(fut):
        try:
            if not fut.cancelled() and fut.exception() is None:
                discard(fut.result())
        except Exception:
            pass

    return _cb


class MorselScheduler:
    """Runs per-morsel kernels on a bounded thread pool, in morsel order.

    ``map`` returns partial results aligned with the input morsels so the
    caller can merge them deterministically. With ``dop <= 1`` (or a single
    morsel) kernels run inline on the calling thread — the serial fallback
    shares the exact code path the workers run, which keeps parallel and
    serial execution differential-testable.
    """

    #: which execution substrate runs the kernels (EXPLAIN surfaces this)
    backend = "thread"

    def __init__(self, dop: int):
        if dop < 1:
            raise ValueError(f"degree of parallelism must be >= 1, got {dop}")
        self.dop = dop
        #: morsels cancelled before they started (early termination)
        self.cancelled = 0
        #: optional cleanup applied to in-flight results that are dropped
        #: after an early stop or failure (releases process shm segments)
        self.discard = None

    def map(self, kernel, morsels: list[Morsel], stop=None) -> list:
        """Run kernels over ``morsels``; return partials in morsel order.

        ``stop(partial)``, checked as each partial is consumed in morsel
        order, ends the run early when it returns True: pending morsels are
        cancelled (counted in ``self.cancelled``), in-flight ones drain with
        their results discarded, and the ordered prefix is returned.
        """
        self.cancelled = 0
        if self.dop <= 1 or len(morsels) <= 1:
            return self._run_inline(kernel, morsels, stop)
        workers = min(self.dop, len(morsels))
        with ThreadPoolExecutor(max_workers=workers,
                                thread_name_prefix="vida-morsel") as pool:
            return self._pump(pool, kernel, morsels, stop)

    def _run_inline(self, kernel, morsels, stop) -> list:
        results = []
        for i, m in enumerate(morsels):
            results.append(kernel(m))
            if stop is not None and stop(results[-1]):
                self.cancelled = len(morsels) - i - 1
                break
        return results

    def _pump(self, pool, kernel, morsels, stop) -> list:
        """Windowed submit/consume loop shared by both pool backends.

        Keeps at most ``2 × dop`` morsels outstanding: enough that every
        worker always has a queued successor, little enough that partials
        never pile up faster than the in-order consumer drains them.
        """
        window = max(2 * self.dop, 2)
        futures = [pool.submit(kernel, m) for m in morsels[:window]]
        next_ix = len(futures)
        results: list = []
        i = 0
        try:
            while i < len(futures):
                results.append(futures[i].result())
                i += 1
                if stop is not None and stop(results[-1]):
                    # morsels never submitted were cancelled before starting
                    self.cancelled += len(morsels) - next_ix
                    self._drop_pending(futures[i:], count=True)
                    break
                if next_ix < len(morsels):
                    futures.append(pool.submit(kernel, morsels[next_ix]))
                    next_ix += 1
            return results
        except BaseException:
            # fail fast: drop queued morsels; running ones drain with their
            # results discarded, then the first failure (in morsel order)
            # propagates.
            self._drop_pending(futures[i:], count=False)
            raise

    def _drop_pending(self, pending, count: bool) -> None:
        discard = self.discard
        for f in pending:
            if f.cancel():
                if count:
                    self.cancelled += 1
            elif discard is not None:
                f.add_done_callback(_discarder(discard))


class ProcessMorselScheduler(MorselScheduler):
    """Morsel scheduling over a session-lifetime worker-process pool.

    Same ordering/failure/early-termination/backpressure contract as the
    thread scheduler, but kernels must be picklable (a ``procpool`` task
    bound to a kernel-spec) and the pool outlives the query — spawning
    interpreters is a per-session fixed cost, never a per-query one.
    """

    backend = "process"

    def __init__(self, dop: int, pool):
        super().__init__(dop)
        self.pool = pool

    def map(self, kernel, morsels: list[Morsel], stop=None) -> list:
        self.cancelled = 0
        if self.pool is None or self.dop <= 1 or len(morsels) <= 1:
            # the spec kernel rehydrates in-process just as well — the
            # serial fallback stays differential-testable against workers
            return self._run_inline(kernel, morsels, stop)
        return self._pump(self.pool.executor(), kernel, morsels, stop)
