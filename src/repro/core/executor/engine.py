"""JIT executor: compile the physical plan, run the generated function.

Compilation is cheap (Python's ``compile`` on a few hundred lines) but not
free, so compiled queries are memoised by plan fingerprint — re-running the
same query shape skips codegen, the analogue of ViDa reusing generated
operators across a workload with locality. The cache is engine-wide: every
tenant session of an :class:`~repro.core.engine.EngineContext` shares it,
so one tenant's compilation warms the next tenant's identical query shape.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..codegen.compiler import CompiledQuery, QueryCompiler
from ..physical import PhysReduce, explain_physical


def plan_fingerprint(plan: PhysReduce) -> str:
    """A structural key identifying a physical plan (for the compile cache)."""
    return explain_physical(plan)


@dataclass
class JITStats:
    compilations: int = 0
    cache_hits: int = 0
    evictions: int = 0


class JITExecutor:
    """Compiles plans to Python functions; caches compilations (true LRU).

    Concurrency-safe and multi-tenant: cache keys include the session's
    ``vector_filters`` mode (the same plan compiles to different kernels
    under each mode), LRU bookkeeping runs under a mutex, and compilation
    itself happens outside the lock — two sessions racing the same cold
    plan compile twice, the second insert wins, nothing corrupts.

    ``vector_filters`` at construction sets the default mode for
    :meth:`compile` calls that don't pass one (standalone uses).
    """

    def __init__(self, catalog, max_cached: int = 256,
                 vector_filters: bool = True):
        self.catalog = catalog
        self.max_cached = max_cached
        self.vector_filters = vector_filters
        # insertion-ordered dict used as an LRU: hits move to the end, so
        # the front is always the least-recently-used entry
        self._compiled: dict[tuple, CompiledQuery] = {}
        self._mutex = threading.Lock()
        self.stats = JITStats()

    def compile(self, plan: PhysReduce,
                vector_filters: bool | None = None) -> CompiledQuery:
        if vector_filters is None:
            vector_filters = self.vector_filters
        key = (bool(vector_filters), plan_fingerprint(plan))
        with self._mutex:
            hit = self._compiled.pop(key, None)
            if hit is not None:
                self._compiled[key] = hit  # move-to-end: hot keys survive
                self.stats.cache_hits += 1
                return hit
        compiled = QueryCompiler(
            self.catalog, vector_filters=vector_filters).compile(plan)
        with self._mutex:
            self.stats.compilations += 1
            if key not in self._compiled and \
                    len(self._compiled) >= self.max_cached:
                self._compiled.pop(next(iter(self._compiled)))
                self.stats.evictions += 1
            self._compiled[key] = compiled
        return compiled

    def is_cached(self, plan: PhysReduce,
                  vector_filters: bool | None = None) -> bool:
        """True when this plan is already compiled (no compile cost to pay).

        A pure probe: no LRU move, no stats bump — the auto engine chooser
        asks before deciding whether JIT's compile latency is sunk.
        """
        if vector_filters is None:
            vector_filters = self.vector_filters
        key = (bool(vector_filters), plan_fingerprint(plan))
        with self._mutex:
            return key in self._compiled

    def execute(self, plan: PhysReduce, runtime):
        return self.compile(plan)(runtime)
