"""JIT executor: compile the physical plan, run the generated function.

Compilation is cheap (Python's ``compile`` on a few hundred lines) but not
free, so compiled queries are memoised by plan fingerprint — re-running the
same query shape skips codegen, the analogue of ViDa reusing generated
operators across a workload with locality.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codegen.compiler import CompiledQuery, QueryCompiler
from ..physical import PhysReduce, explain_physical


def plan_fingerprint(plan: PhysReduce) -> str:
    """A structural key identifying a physical plan (for the compile cache)."""
    return explain_physical(plan)


@dataclass
class JITStats:
    compilations: int = 0
    cache_hits: int = 0
    evictions: int = 0


class JITExecutor:
    """Compiles plans to Python functions; caches compilations (true LRU).

    ``vector_filters`` is forwarded to the compiler: True (default) emits
    selection-vector filter kernels and vectorized join build/probe; False
    restores row-at-a-time evaluation (the differential/benchmark baseline).
    """

    def __init__(self, catalog, max_cached: int = 256,
                 vector_filters: bool = True):
        self.catalog = catalog
        self.max_cached = max_cached
        self.vector_filters = vector_filters
        # insertion-ordered dict used as an LRU: hits move to the end, so
        # the front is always the least-recently-used entry
        self._compiled: dict[str, CompiledQuery] = {}
        self.stats = JITStats()

    def compile(self, plan: PhysReduce) -> CompiledQuery:
        key = plan_fingerprint(plan)
        hit = self._compiled.pop(key, None)
        if hit is not None:
            self._compiled[key] = hit  # move-to-end: hot keys survive eviction
            self.stats.cache_hits += 1
            return hit
        compiled = QueryCompiler(
            self.catalog, vector_filters=self.vector_filters).compile(plan)
        self.stats.compilations += 1
        if len(self._compiled) >= self.max_cached:
            self._compiled.pop(next(iter(self._compiled)))
            self.stats.evictions += 1
        self._compiled[key] = compiled
        return compiled

    def execute(self, plan: PhysReduce, runtime):
        return self.compile(plan)(runtime)
