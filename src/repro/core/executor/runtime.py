"""Query runtime: the services generated (and interpreted) plans call into.

A fresh :class:`QueryRuntime` is created per query execution. It owns no
data itself — it mediates access to the catalog's plugins, the session-wide
:class:`~repro.caching.DataCache`, cleaning policies, and optional simulated
devices, while accounting execution statistics (raw rows parsed, cache rows
served, raw bytes touched) that the benchmarks report.
"""

from __future__ import annotations

import bisect
import os
import pickle
import threading
from dataclasses import dataclass, field
from time import perf_counter

from ...caching import DataCache
from ...errors import ExecutionError, GenerationError
from ...formats.descriptions import NULL_TOKENS
from ...indexing import IndexPartial
from ...mcc.monoids import get_monoid
from ...stats import ScanTiming, StatsPartial
from ..chunk import DEFAULT_BATCH_SIZE, MORSEL_ALL, Chunk, Morsel, split_ranges
from .scheduler import MorselScheduler


@dataclass
class ExecStats:
    """Per-query execution counters."""

    raw_rows: int = 0
    cache_rows: int = 0
    raw_bytes: int = 0
    raw_sources: set = field(default_factory=set)
    cache_sources: set = field(default_factory=set)
    cleaned_rows: int = 0
    skipped_rows: int = 0
    #: morsels cancelled unstarted because a LIMIT was already satisfied
    morsels_cancelled: int = 0
    #: value indexes created or extended as scan byproducts this query
    index_builds: int = 0
    #: scans served through a JIT value index (access=index)
    index_hits: int = 0
    #: rows resolved positionally through an index instead of scanned
    index_rows_served: int = 0

    @property
    def cache_only(self) -> bool:
        """True when the query never touched a raw file."""
        return not self.raw_sources


class _CountingPolicy:
    """Wraps a cleaning policy so batch scans account repairs/skips.

    The batch path hands the policy to the plugin's chunked scan, so the
    per-query stats accounting wraps the policy rather than living in a
    runtime callback. ``lock`` serialises repairs when morsel workers share
    the underlying (possibly stateful) policy object.
    """

    def __init__(self, policy, stats: "ExecStats", lock=None):
        self._policy = policy
        self._lock = lock
        self.stats = stats
        self.validate_always = bool(getattr(policy, "validate_always", False))

    def repair(self, plugin, row: int, cells: list, cols: list):
        if self._lock is not None:
            with self._lock:
                return self._repair(plugin, row, cells, cols)
        return self._repair(plugin, row, cells, cols)

    def _repair(self, plugin, row: int, cells: list, cols: list):
        repaired = self._policy.repair(plugin, row, cells, list(cols))
        if repaired is None:
            self.stats.skipped_rows += 1
        else:
            self.stats.cleaned_rows += 1
        return repaired


class QueryRuntime:
    """Execution-time context handed to compiled/interpreted plans."""

    def __init__(
        self,
        catalog,
        cache: DataCache,
        cleaning: dict | None = None,
        devices: dict | None = None,
        row_limit: int | None = None,
        process_pool=None,
        indexes=None,
        engine=None,
        table_stats=None,
        stats_hint: dict | None = None,
        as_of: dict | None = None,
    ):
        self.catalog = catalog
        self.cache = cache
        #: time travel: source → pinned :class:`GenerationSnapshot`. Scans of
        #: a pinned source serve that generation's rows (live-prefix re-scan
        #: or pinned cache slices) and emit no byproducts — nothing a pinned
        #: query produces may leak into live shared state
        self.as_of = as_of or {}
        #: owning :class:`~repro.core.engine.EngineContext` (None in worker
        #: children and standalone uses) — receives cross-tenant sharing
        #: counters from the adopt-or-discard merge points
        self.engine = engine
        #: session-wide :class:`~repro.indexing.IndexRegistry`, or ``None``
        #: when JIT value indexes are disabled (worker-process children run
        #: without one, so byproduct emission degrades to a no-op there)
        self.indexes = indexes
        self.cleaning = cleaning or {}
        self.devices = devices or {}
        #: session-lifetime worker-process pool, present when the session was
        #: opened with ``backend="process"`` (scans the planner marked
        #: ``backend="process"`` fan their kernel specs out through it)
        self.process_pool = process_pool
        self.stats = ExecStats()
        #: SQL LIMIT (or query(limit=...)) — lets LIMIT-countable parallel
        #: folds stop consuming morsels once enough rows are in hand
        self.row_limit = row_limit
        #: True once a limited scan stopped early: the query saw a prefix of
        #: the source, so cache admissions must be suppressed
        self.truncated = False
        # morsel-parallel scans: stats flushes, cleaning-policy calls and
        # cache admissions from worker threads serialise on this lock
        self._lock = threading.Lock()
        # one cache lookup per (source, fields, whole) per query, shared by
        # every morsel worker slicing row-range chunk views off it
        self._cache_scan_memo: dict[tuple, tuple] = {}
        # per-morsel positional-map partials awaiting the coordinator's
        # ordered merge (source → {Morsel: PositionalMap})
        self._posmap_parts: dict[str, dict] = {}
        # per-morsel value-index partials, same lifecycle as posmap partials
        self._index_parts: dict[str, dict] = {}
        #: shared :class:`~repro.stats.StatsRegistry`, or ``None`` when
        #: adaptive statistics are off (then ``stats_hint`` may still carry
        #: a worker child's marching orders: source → (have_rows, known
        #: fields), so children collect exactly what the parent is missing)
        self.table_stats = table_stats
        self._stats_hint = stats_hint or {}
        # per-source collection state memoised at first touch so every
        # morsel of one scan builds identically-shaped stats sinks
        self._stats_states: dict[str, tuple | None] = {}
        # per-morsel stats partials, same lifecycle as index partials
        self._stats_parts: dict[str, dict] = {}
        #: measured per-scan wall-clock timings (serial scans only — morsel
        #: workers overlap, so their per-worker times aren't wall-clock);
        #: the session feeds these into the shared CostCalibration
        self.scan_timings: list[ScanTiming] = []
        # generation token of each source captured at scan start; adoption
        # and cache admission compare it against the catalog's current token
        # under the per-source lock (adopt-or-discard)
        self._generations: dict[str, int] = {}
        # the posmap object observed at scan start, per source — an
        # in-place update swaps the map, so identity doubles as a guard
        self._posmap_expect: dict[str, object] = {}

    # -- generic -----------------------------------------------------------

    def monoid(self, name: str, params: tuple = ()):
        return get_monoid(name, params)

    def device_for(self, source: str):
        return self.devices.get(source) or self.devices.get("*")

    # -- generation-token adoption gates -----------------------------------

    def touch_generation(self, source: str) -> int:
        """Capture ``source``'s generation token at scan start (memoised
        per query). Everything this scan produces — posmap partials, index
        partials, cache columns — may only merge into shared state while
        the catalog still carries this token."""
        gen = self._generations.get(source)
        if gen is None:
            # setdefault: concurrent morsel workers agree on one token
            gen = self._generations.setdefault(
                source, self.catalog.get(source).generation)
        return gen

    def _generation_current(self, source: str) -> bool:
        """True when the captured token still matches the catalog's (call
        under the source lock for an atomic adopt-or-discard decision).

        Beyond the token compare, the file's current stat is checked against
        the catalog fingerprint: a mutation that happened *during* the scan
        has not bumped the generation yet (no refresh ran), but the partials
        were built over a mix of dead and live bytes — discard them."""
        gen = self._generations.get(source)
        if gen is None:
            return True
        entry = self.catalog.get(source)
        if gen != entry.generation:
            return False
        fp = getattr(entry, "fingerprint", None)
        path = getattr(entry.plugin, "path", None)
        if fp is not None and path is not None:
            try:
                if not fp.stat_matches(path):
                    return False
            except OSError:
                return False
        return True

    def _count_engine(self, **deltas: int) -> None:
        if self.engine is not None:
            deltas = {k: v for k, v in deltas.items() if v}
            if deltas:
                self.engine.count(**deltas)

    def _adopt_posmap(self, source: str, partials: list,
                      expect=None) -> bool:
        """Atomic adopt-or-discard of completed positional-map partials:
        one winner per concurrent cold race, stale scans always discard."""
        plugin = self.catalog.get(source).plugin
        with self.catalog.source_lock(source):
            adopted = self._generation_current(source) and \
                plugin.adopt_posmap_partials(partials, expect=expect)
        if adopted:
            self._count_engine(posmap_adoptions=1)
        else:
            self._count_engine(posmap_discards=1)
        return adopted

    # -- morsel-parallel scan protocol ------------------------------------------

    def run_morsels(self, kernel, morsels: list, dop: int,
                    limited: bool = False) -> list:
        """Fan per-morsel kernels out over the scheduler; partials return in
        morsel order so callers merge deterministically.

        ``limited`` marks a LIMIT-countable fold (``bag``/``list`` driver):
        each partial's first element is its ordered output-row list, so once
        the morsel-ordered prefix carries ``row_limit`` rows the scheduler
        stops consuming and cancels pending morsels — the merged prefix
        holds the same first ``row_limit`` rows a full run would return.
        """
        stop = None
        if limited and self.row_limit is not None:
            target = self.row_limit
            seen = 0

            def stop(partial):
                nonlocal seen
                seen += len(partial[0])
                return seen >= target

        scheduler = MorselScheduler(dop)
        partials = scheduler.map(kernel, morsels, stop=stop)
        if len(partials) < len(morsels):
            # the query saw a prefix of the scan: suppress cache admission
            # (and posmap adoption skips the holes via finish_scan's guard).
            # In-flight morsels drain with their results discarded; only the
            # truly-unstarted ones count as cancelled.
            self.truncated = True
            if scheduler.cancelled:
                with self._lock:
                    self.stats.morsels_cancelled += scheduler.cancelled
        return partials

    def run_morsels_spec(self, module_source: str, worker: str, shared: dict,
                         morsels: list, dop: int, limited: bool = False) -> list:
        """Process-backend fan-out of a JIT parallel scan.

        Packages the generated module plus the worker's read-only closure
        state into a picklable :class:`~.procpool.KernelSpec`, runs it over
        the session's worker-process pool, and returns unpacked worker
        partials in morsel order — shaped exactly like the thread path's, so
        the generated merge loop is backend-agnostic. Worker stat deltas are
        flushed under the runtime lock and positional-map partials are
        stored for :meth:`finish_scan`, mirroring the thread contract.
        """
        import functools

        from . import procpool

        spec = procpool.jit_spec(self, module_source, worker, shared)
        kernel = functools.partial(procpool.run_jit_morsel, pickle.dumps(spec))
        return self._run_spec(kernel, morsels, dop, limited)

    def run_morsels_plan(self, plan, shared_ix: dict, morsels: list, dop: int,
                         limited: bool = False) -> list:
        """Process-backend fan-out of a static-engine parallel scan: ships
        the pickled physical plan plus chain-indexed prebuilt join state."""
        import functools

        from . import procpool

        spec = procpool.static_spec(self, plan, shared_ix)
        kernel = functools.partial(procpool.run_static_morsel, pickle.dumps(spec))
        return self._run_spec(kernel, morsels, dop, limited)

    def _run_spec(self, kernel, morsels: list, dop: int, limited: bool) -> list:
        """Shared spec-kernel driver: schedule, merge stats/posmap partials
        in the parent (children never touch the parent's cache), unpack
        shared-memory columns, and return worker partials in morsel order."""
        from . import procpool
        from .scheduler import ProcessMorselScheduler

        stop = None
        if limited and self.row_limit is not None:
            target = self.row_limit
            seen = 0

            def stop(result):
                nonlocal seen
                # result[0] is the packed partial; its first element is the
                # ordered output-row list (len works on shm placeholders too)
                seen += len(result[0][0])
                return seen >= target

        scheduler = ProcessMorselScheduler(dop, self.process_pool)
        scheduler.discard = procpool.release_result
        results = scheduler.map(kernel, morsels, stop=stop)
        if len(results) < len(morsels):
            self.truncated = True
            if scheduler.cancelled:
                with self._lock:
                    self.stats.morsels_cancelled += scheduler.cancelled
        partials = []
        for morsel, (packed, deltas, posmaps, statparts) in zip(morsels, results):
            raw_rows, cleaned, skipped, cache_rows = deltas
            with self._lock:
                self.stats.raw_rows += raw_rows
                self.stats.cleaned_rows += cleaned
                self.stats.skipped_rows += skipped
                self.stats.cache_rows += cache_rows
                for src, part in posmaps:
                    self._posmap_parts.setdefault(src, {})[morsel] = part
                for src, part in statparts:
                    self._stats_parts.setdefault(src, {})[morsel] = part
            partials.append(procpool.unpack_partial(packed))
        return partials

    def account_raw(self, source: str) -> None:
        """File-level raw accounting for a parallel scan, charged once by
        the coordinator (split scans skip it so workers don't multiply it)."""
        entry = self.catalog.get(source)
        with self._lock:
            self.stats.raw_sources.add(source)
            self.stats.raw_bytes += os.path.getsize(entry.plugin.path)

    #: split multiplier for LIMIT-countable parallel folds: finer morsels
    #: mean the scheduler can stop sooner once the limit is satisfied
    LIMIT_OVERSPLIT = 4

    def scan_splits(self, source: str, dop: int, access: str = "cold",
                    fields: tuple = (), whole: bool = False,
                    limited: bool = False) -> list:
        """Morsels for a parallel scan of ``source`` (at most ``dop``).

        Cache scans split into row ranges over the (single, memoised)
        lookup; raw formats delegate to the plugin's splittable-range
        contract; anything else degrades to the single-morsel plan.
        ``limited`` + an active row limit over-partitions (more morsels than
        workers) so early termination has pending morsels to cancel.
        """
        parts = dop
        if limited and self.row_limit is not None:
            parts = dop * self.LIMIT_OVERSPLIT
        if access == "cache":
            data, _layout = self._cache_scan_once(source, tuple(fields), whole)
            count = len(data) if whole else (len(data[0]) if data else 0)
            return split_ranges(count, parts, "rows")
        self.touch_generation(source)
        plugin = self.catalog.get(source).plugin
        if hasattr(plugin, "posmap"):
            self._posmap_expect[source] = plugin.posmap
        splits = getattr(plugin, "scan_splits", None)
        if splits is None:
            return [MORSEL_ALL]
        return splits(parts)

    def finish_scan(self, source: str, splits: list) -> None:
        """Coordinator epilogue of a parallel scan: merge auxiliary-structure
        partials (positional maps, value indexes) in morsel order. No-op for
        sources whose morsels recorded nothing."""
        parts = self._posmap_parts.pop(source, None)
        if parts:
            byte_splits = [s for s in splits if s.kind == "bytes"]
            if byte_splits and all(s in parts for s in byte_splits):
                self._adopt_posmap(source,
                                   [parts[s] for s in byte_splits],
                                   expect=self._posmap_expect.get(source))
            # else: a morsel didn't finish; discard rather than adopt holes
        iparts = self._index_parts.pop(source, None)
        if iparts:
            if any(s.kind == "bytes" for s in splits):
                # byte morsels record morsel-local rows: shifting them to
                # global rows needs every morsel's exact row count, so a
                # single missing partial discards the whole byproduct
                if all(s in iparts for s in splits):
                    self._adopt_index_partials(
                        source, [iparts[s] for s in splits]
                    )
            else:
                # row/span morsels record global rows and per-field coverage
                # ranges, so whatever completed adopts soundly on its own
                ordered = [iparts[s] for s in splits if s in iparts]
                if ordered:
                    self._adopt_index_partials(source, ordered)
        sparts = self._stats_parts.pop(source, None)
        if sparts:
            # statistics claim full-table coverage, so (unlike row-morsel
            # index partials) a single missing split discards the byproduct
            # — no partial row counts, no biased min/max/NDV
            if all(s in sparts for s in splits):
                self._adopt_stats_partials(
                    source, [sparts[s] for s in splits], complete=True
                )

    def _adopt_index_partials(self, source: str, partials: list) -> None:
        """Merge scan-byproduct index partials into the shared registry
        (morsel order), crediting ``index_builds`` for fields that grew.

        Atomic adopt-or-discard: runs under the source lock against the
        generation token captured at scan start, so partials built from a
        since-mutated file are dropped instead of poisoning fresh indexes.
        """
        if self.indexes is None:
            return
        with self.catalog.source_lock(source):
            if not self._generation_current(source):
                self._count_engine(index_discards=1)
                return
            entry = self.catalog.get(source)
            grown = self.indexes.adopt(source, entry.generation, partials)
        if grown:
            with self._lock:
                self.stats.index_builds += grown
            self._count_engine(index_adoptions=1)

    def _new_index_sink(self, index_fields: tuple, split) -> IndexPartial | None:
        """A byproduct recorder for one scan (or morsel), if emission is on."""
        if not index_fields or self.indexes is None:
            return None
        local = split is not None and split.kind == "bytes"
        return IndexPartial(index_fields, local_rows=local)

    # -- table statistics as scan byproducts --------------------------------

    def _stats_state(self, source: str) -> tuple | None:
        """(row count known?, known column names) for ``source``, or None
        when this runtime collects no statistics. Memoised per query so all
        morsels of one scan agree on the sink shape (bit-identity across
        DoP depends on it)."""
        if source in self._stats_states:
            return self._stats_states[source]
        if self.table_stats is not None:
            gen = self.touch_generation(source)
            state = self.table_stats.known(source, gen)
        else:
            state = self._stats_hint.get(source)
        self._stats_states[source] = state
        return state

    def _new_stats_sink(self, source: str, fields, split=None):
        """A stats recorder for one scan (or morsel), covering only what
        the shared registry doesn't already know; None when nothing new
        would be learned (steady state: scans carry no stats overhead)."""
        state = self._stats_state(source)
        if state is None:
            return None
        have_rows, known = state
        needed = tuple(f for f in fields if f not in known)
        if not needed and have_rows:
            return None
        return StatsPartial(needed)

    def _adopt_stats_partials(self, source: str, partials: list,
                              complete: bool) -> None:
        """Atomic adopt-or-discard of scan-byproduct statistics partials.

        ``complete`` asserts full row coverage (serial exhaustion, or every
        parallel split present) — only then may ``row_count`` be learned.
        A LIMIT-truncated execution saw a prefix, so it never adopts.
        """
        if self.table_stats is None or not partials or self.truncated:
            return
        merged = partials[0]
        for p in partials[1:]:
            merged.merge(p)
        with self.catalog.source_lock(source):
            if not self._generation_current(source):
                self._count_engine(stats_discards=1)
                return
            entry = self.catalog.get(source)
            changed = self.table_stats.adopt(
                source, entry.generation, merged, complete
            )
        if changed:
            self._count_engine(stats_adoptions=1)

    def _stats_spec(self) -> tuple:
        """Per-source collection state shipped to worker processes: each
        child builds sinks for exactly the fields the parent is missing,
        so parent-side adoption converges instead of double-counting."""
        if self.table_stats is None:
            return ()
        out = []
        for source in sorted(self._generations):
            state = self._stats_state(source)
            if state is not None:
                have_rows, known = state
                out.append((source, bool(have_rows), tuple(sorted(known))))
        return tuple(out)

    def _instrument(self, chunks, source: str, fmt: str, access: str,
                    nfields: int):
        """Wrap a serial scan's chunk stream, measuring wall-clock spent
        *inside* the plugin iterator (consumer time excluded). On
        exhaustion the timing is recorded for cost-model calibration; an
        abandoned scan (LIMIT) records nothing."""
        rows = 0
        nchunks = 0
        elapsed = 0.0
        it = iter(chunks)
        while True:
            t0 = perf_counter()
            try:
                chunk = next(it)
            except StopIteration:
                elapsed += perf_counter() - t0
                break
            elapsed += perf_counter() - t0
            rows += chunk.scanned if chunk.scanned is not None \
                else chunk.selected_length
            nchunks += 1
            yield chunk
        timing = ScanTiming(source, fmt, access, rows, nfields, nchunks,
                            elapsed)
        with self._lock:
            self.scan_timings.append(timing)

    def _cache_scan_once(self, source: str, fields: tuple, whole: bool):
        key = (source, fields, bool(whole))
        with self._lock:
            hit = self._cache_scan_memo.get(key)
            if hit is None:
                hit = self.cache_data(source, fields, whole)
                self._cache_scan_memo[key] = hit
        return hit

    # -- time travel: pinned-generation serving -----------------------------

    @staticmethod
    def _check_pinned_split(source: str, split) -> None:
        """Pinned scans are planned serial; reject real morsels defensively."""
        if split is not None and split.kind != "all":
            raise ExecutionError(
                f"pinned scans of {source!r} are serial; got a "
                f"{split.kind!r} morsel")

    def _pinned_csv_chunks(self, source: str, fields: tuple, batch_size: int,
                           whole: bool, split) -> "Iterator[Chunk]":
        """Serve a CSV scan AS OF a pinned generation.

        Live-prefix snapshots re-scan exactly the generation's byte range of
        the current file (append-only history keeps old bytes in place), cold
        and byproduct-free. Rewritten-away generations fall back to the cache
        entries pinned at invalidation time, sliced to the snapshot's rows.
        """
        self._check_pinned_split(source, split)
        snap = self.as_of[source]
        if not snap.live:
            yield from self._pinned_cached_chunks(source, snap, fields,
                                                  batch_size, whole)
            return
        plugin = self.catalog.get(source).plugin
        self.stats.raw_sources.add(source)
        self.stats.raw_bytes += max(0, snap.byte_size - plugin._data_start)
        cols = plugin.field_indexes(fields)
        names = tuple(plugin.columns)
        conv_cols = list(range(len(names))) if whole else cols
        count = 0
        for _start, lines in plugin.iter_line_batches(
                batch_size, device=self.device_for(source),
                byte_range=(plugin._data_start, snap.byte_size)):
            cells_rows = [line.split(plugin.options.delimiter)
                          for line in lines]
            columns = plugin.convert_batch(conv_cols, cells_rows) \
                if conv_cols else []
            count += len(cells_rows)
            if whole:
                records = [dict(zip(names, vals)) for vals in zip(*columns)] \
                    if columns else [{} for _ in cells_rows]
                picked = tuple(columns[c] for c in cols)
                yield Chunk(fields, picked, len(cells_rows), whole=records)
            elif cols:
                yield Chunk(fields, tuple(columns), len(cells_rows))
            else:
                yield Chunk((), (), len(cells_rows))
        self.stats.raw_rows += count

    def _pinned_json_chunks(self, source: str, paths: tuple, batch_size: int,
                            whole: bool, split) -> "Iterator[Chunk]":
        """Serve a JSON scan AS OF a pinned generation (live-prefix spans
        re-parsed from the head of the current file, or pinned cache
        slices for rewritten-away generations)."""
        self._check_pinned_split(source, split)
        snap = self.as_of[source]
        if not snap.live:
            yield from self._pinned_cached_chunks(source, snap, paths,
                                                  batch_size, whole)
            return
        import json as _json

        from ...storage import RawFile
        plugin = self.catalog.get(source).plugin
        self.stats.raw_sources.add(source)
        self.stats.raw_bytes += snap.byte_size
        with RawFile(plugin.path, device=self.device_for(source)) as raw:
            data = raw.read_at(0, snap.byte_size)
        if plugin.has_semi_index():
            spans = [s for s in plugin.semi_index.spans
                     if s.end <= snap.byte_size]
        else:
            from ...formats.jsonfmt.semi_index import JSONSemiIndex
            spans = list(JSONSemiIndex.build(data).spans)
        encoding = plugin.options.encoding
        count = 0
        for i in range(0, len(spans), batch_size):
            group = spans[i:i + batch_size]
            objs = [_json.loads(data[s.start:s.end].decode(encoding))
                    for s in group]
            columns = plugin.project_paths(objs, paths) if paths else []
            count += len(objs)
            yield Chunk(paths, tuple(columns), len(objs),
                        whole=objs if whole else None)
        self.stats.raw_rows += count

    def _pinned_cached_chunks(self, source: str, snap, fields: tuple,
                              batch_size: int, whole: bool
                              ) -> "Iterator[Chunk]":
        """Serve a rewritten-away generation from the cache entries pinned
        when its file content was invalidated, sliced to the snapshot's row
        count (every live snapshot at pin time was a row-prefix of the
        pinned total). Raises :class:`GenerationError` when nothing pinned
        covers the requested shape — the generation's rows are gone."""
        import json as _json

        pinned = snap.pinned
        n = snap.row_count
        if pinned is None or n is None or pinned.total_rows is None:
            raise GenerationError(
                f"generation {snap.generation} of {source!r} is no longer "
                "materializable: the file was rewritten and no pinned data "
                "covers it")
        candidates = [c for c in pinned.cached
                      if c.count == pinned.total_rows]
        if not whole and fields:
            for c in candidates:
                if c.layout == "columns" and all(f in c.fields
                                                 for f in fields):
                    self.stats.cache_sources.add(source)
                    self.stats.cache_rows += n
                    for i in range(0, n, batch_size):
                        yield Chunk(fields,
                                    tuple(c.data[f][i:min(n, i + batch_size)]
                                          for f in fields),
                                    min(n, i + batch_size) - i)
                    return
        objs = None
        for c in candidates:
            if c.fields:
                continue
            if c.layout == "objects":
                objs = c.data[:n]
                break
            if c.layout == "json_text":
                objs = [_json.loads(t) for t in c.data[:n]]
                break
        if objs is not None:
            from ...formats.jsonfmt.plugin import JSONSource
            self.stats.cache_sources.add(source)
            self.stats.cache_rows += n
            for i in range(0, n, batch_size):
                group = objs[i:i + batch_size]
                columns = JSONSource.project_paths(group, fields) \
                    if fields else []
                yield Chunk(fields, tuple(columns), len(group),
                            whole=group if whole else None)
            return
        if not fields and not whole:
            # pure row-count service needs no pinned values at all
            self.stats.cache_sources.add(source)
            self.stats.cache_rows += n
            yield Chunk((), (), n)
            return
        raise GenerationError(
            f"generation {snap.generation} of {source!r} is no longer "
            f"materializable: no pinned cache entry covers fields {fields!r}")

    # -- memory sources -----------------------------------------------------------

    def memory(self, source: str):
        entry = self.catalog.get(source)
        if entry.data is None:
            raise ExecutionError(f"source {source!r} is not an in-memory collection")
        self.stats.cache_rows += len(entry.data)
        return entry.data

    # -- cache access -----------------------------------------------------------

    def cache_data(self, source: str, fields: tuple, whole: bool):
        """Serve a scan from the cache; returns (data, layout).

        For field projections the result is a list of column lists aligned
        with ``fields``; for whole-element service it is an iterable of
        elements.
        """
        if whole:
            entry = self.cache.lookup(source, [], layouts=("objects", "bson", "json_text"))
        else:
            entry = self.cache.lookup(source, list(fields))
        if entry is None:
            raise ExecutionError(
                f"planner chose cache access for {source!r} but no entry covers "
                f"fields {fields!r}"
            )
        cached = entry.cached
        self.stats.cache_sources.add(source)
        self.stats.cache_rows += cached.count
        if whole:
            if cached.layout in ("objects", "bson", "json_text"):
                return [row[0] for row in cached.iter_rows(None)], cached.layout
            raise ExecutionError(
                f"cache entry for {source!r} has layout {cached.layout!r}, "
                "cannot serve whole elements"
            )
        if cached.layout == "columns":
            return [cached.data[f] for f in fields], "columns"
        cols: list[list] = [[] for _ in fields]
        for row in cached.iter_rows(fields):
            for i, v in enumerate(row):
                cols[i].append(v)
        return cols, cached.layout

    def admit_columns(self, source: str, fields: tuple, columns: tuple) -> None:
        """Admit piggybacked columnar data gathered during a raw scan.

        Whole column batches go straight into the cache — no per-row tuple
        round-trip (the batch pipeline's population lists are adopted as-is).
        A LIMIT-truncated execution saw only a prefix of the source, so
        nothing is admitted (a partial column must never pose as complete).
        """
        if self.truncated or source in self.as_of:
            return
        with self.catalog.source_lock(source):
            if not self._generation_current(source):
                self._count_engine(stale_admissions_dropped=1)
                return
            self.cache.put_columns(source, fields, columns)

    def admit_elements(self, source: str, layout: str, elements: list) -> None:
        if self.truncated or source in self.as_of:
            return
        with self.catalog.source_lock(source):
            if not self._generation_current(source):
                self._count_engine(stale_admissions_dropped=1)
                return
            self.cache.put(source, layout, (), elements)

    # -- chunked scan protocol (shared by both engines) ------------------------

    def cache_chunks(self, source: str, fields: tuple, whole: bool,
                     split=None):
        """Serve a cached scan as one zero-copy chunk view.

        Columnar entries are wrapped without copying a value; row/object
        layouts are columnarised once. Returns a list so callers iterate a
        uniform chunk stream regardless of access path. ``split`` serves a
        row-range chunk view of the (memoised, shared) lookup instead —
        morsel workers each slice their rows off one cache entry.
        """
        if source in self.as_of:
            raise GenerationError(
                f"live cache entries cannot serve {source!r} AS OF a pinned "
                "generation")
        if split is None:
            data, _layout = self.cache_data(source, fields, whole)
        else:
            data, _layout = self._cache_scan_once(source, tuple(fields), whole)
            if split.kind == "rows":
                if whole:
                    data = data[split.lo:split.hi]
                else:
                    data = [col[split.lo:split.hi] for col in data]
            elif split.kind != "all":
                raise ExecutionError(
                    f"cache scans cannot interpret a {split.kind!r} morsel"
                )
        if whole:
            return [Chunk((), (), len(data), whole=data)]
        length = len(data[0]) if data else 0
        return [Chunk(tuple(fields), tuple(data), length)]

    def csv_chunks(
        self,
        source: str,
        fields: tuple,
        access: str = "cold",
        batch_size: int = DEFAULT_BATCH_SIZE,
        whole: bool = False,
        split=None,
        pred_fields: tuple = (),
        pred_kernel=None,
        index_fields: tuple = (),
    ):
        """Batched CSV scan: converted column chunks with piggybacked
        positional-map population (cold) and batch-level cleaning.

        ``index_fields`` requests value-index byproduct emission: the plugin
        records those columns' converted values into an
        :class:`~repro.indexing.IndexPartial` while scanning, and the
        partial is adopted into the session registry when the scan (or, for
        morsels, the coordinator's :meth:`finish_scan`) completes. Emission
        is suppressed under cleaning policies — repaired/skipped rows would
        desynchronise value runs from physical rows.

        With ``split`` the scan covers one morsel: file-level accounting is
        the coordinator's job (:meth:`account_raw`), row/cleaning counters
        accumulate locally and flush under the runtime lock once.

        ``pred_fields``/``pred_kernel`` forward a selection-pushdown filter
        to the plugin's warm navigated path (late materialization); chunks
        then arrive as dense predicate survivors with ``Chunk.scanned``
        carrying the physical row count for accounting."""
        if source in self.as_of:
            yield from self._pinned_csv_chunks(source, tuple(fields),
                                               batch_size, whole, split)
            return
        entry = self.catalog.get(source)
        plugin = entry.plugin
        self.touch_generation(source)
        clean = self.cleaning.get(source)
        if clean is None or not (fields or whole):
            # a projection that touches no raw attribute cannot fail conversion
            clean = None
        sink = self._new_index_sink(index_fields, split) \
            if clean is None else None
        # stats byproducts cover the materialised columns (all columns on a
        # whole-row binding); suppressed under cleaning like index emission
        sfields = tuple(fields) if fields \
            else (tuple(plugin.columns) if whole else ())
        ssink = self._new_stats_sink(source, sfields, split) \
            if clean is None else None
        if split is None:
            self.stats.raw_sources.add(source)
            self.stats.raw_bytes += os.path.getsize(plugin.path)
            if clean is not None:
                clean = _CountingPolicy(clean, self.stats)
            # cold population records into a detached partial map, adopted
            # atomically below — concurrent sessions cold-scanning the same
            # file each build their own; exactly one wins, none corrupts
            pm_expect = pm_partial = None
            if access == "cold":
                pm_expect = plugin.posmap
                pm_partial = plugin.new_posmap_partial()
            count = 0
            skipped_before = self.stats.skipped_rows
            for chunk in self._instrument(
                plugin.scan_chunks(
                    fields, batch_size=batch_size,
                    device=self.device_for(source),
                    clean=clean, whole=whole, access=access,
                    posmap_partial=pm_partial,
                    pred_fields=pred_fields, pred_kernel=pred_kernel,
                    index_sink=sink, stats_sink=ssink,
                ),
                source, "csv", access, len(sfields),
            ):
                count += chunk.scanned if chunk.scanned is not None \
                    else chunk.selected_length
                yield chunk
            # rows the cleaning policy dropped were still physically scanned
            self.stats.raw_rows += count + (self.stats.skipped_rows - skipped_before)
            if pm_partial is not None:
                self._adopt_posmap(source, [pm_partial], expect=pm_expect)
            if sink is not None:
                self._adopt_index_partials(source, [sink])
            if ssink is not None:
                self._adopt_stats_partials(source, [ssink], complete=True)
            return
        local = ExecStats()
        if clean is not None:
            clean = _CountingPolicy(clean, local, lock=self._lock)
        partial = None
        if split.kind == "bytes" and access == "cold":
            # sharded positional-map population piggybacks on the morsel;
            # finish_scan merges the partials in morsel order
            partial = plugin.new_posmap_partial()
        count = 0
        for chunk in plugin.scan_chunks(
            fields, batch_size=batch_size, device=self.device_for(source),
            clean=clean, whole=whole, access=access, split=split,
            posmap_partial=partial,
            pred_fields=pred_fields, pred_kernel=pred_kernel,
            index_sink=sink, stats_sink=ssink,
        ):
            count += chunk.scanned if chunk.scanned is not None \
                else chunk.selected_length
            yield chunk
        with self._lock:
            self.stats.raw_rows += count + local.skipped_rows
            self.stats.cleaned_rows += local.cleaned_rows
            self.stats.skipped_rows += local.skipped_rows
            if partial is not None:
                self._posmap_parts.setdefault(source, {})[split] = partial
            if sink is not None:
                self._index_parts.setdefault(source, {})[split] = sink
            if ssink is not None:
                self._stats_parts.setdefault(source, {})[split] = ssink

    def json_chunks(
        self,
        source: str,
        paths: tuple = (),
        batch_size: int = DEFAULT_BATCH_SIZE,
        whole: bool = False,
        split=None,
        index_fields: tuple = (),
    ):
        """Batched JSON scan: dotted-path column chunks and/or whole objects.

        ``index_fields`` requests value-index byproduct emission over those
        dotted paths (JSON rows are semi-index span numbers, always global,
        so morsel partials never need shifting)."""
        if source in self.as_of:
            yield from self._pinned_json_chunks(source, tuple(paths),
                                                batch_size, whole, split)
            return
        entry = self.catalog.get(source)
        plugin = entry.plugin
        self.touch_generation(source)
        sink = self._new_index_sink(index_fields, split)
        ssink = self._new_stats_sink(source, tuple(paths), split)
        access = "warm" if plugin.has_semi_index() else "cold"
        if split is None:
            self.stats.raw_sources.add(source)
            self.stats.raw_bytes += os.path.getsize(plugin.path)
        count = 0
        chunks = plugin.scan_chunks(paths, batch_size=batch_size,
                                    device=self.device_for(source),
                                    whole=whole, split=split,
                                    index_sink=sink, stats_sink=ssink)
        if split is None:
            chunks = self._instrument(chunks, source, "json", access,
                                      len(paths))
        for chunk in chunks:
            count += chunk.selected_length
            yield chunk
        if split is None:
            self.stats.raw_rows += count
            if sink is not None:
                self._adopt_index_partials(source, [sink])
            if ssink is not None:
                self._adopt_stats_partials(source, [ssink], complete=True)
        else:
            with self._lock:
                self.stats.raw_rows += count
                if sink is not None:
                    self._index_parts.setdefault(source, {})[split] = sink
                if ssink is not None:
                    self._stats_parts.setdefault(source, {})[split] = ssink

    def index_chunks(
        self,
        source: str,
        fields: tuple,
        batch_size: int = DEFAULT_BATCH_SIZE,
        whole: bool = False,
        lookup: tuple | None = None,
        emit_fields: tuple = (),
    ):
        """Serve a scan through a JIT value index (``access=index``).

        Candidate rows matching the ``lookup`` spec are resolved through the
        session registry and fetched positionally (posmap seek for CSV,
        semi-index span assembly for JSON); row ranges the index has not
        covered yet are scanned in full — with byproduct emission on, so
        coverage converges toward 100% across queries. Candidate fetches and
        uncovered-range scans interleave in ascending row order, making the
        emitted row stream bit-identical to a full sequential scan's. The
        caller keeps the original predicate as a recheck, so candidate
        false positives (hash-equality quirks, multi-conjunct predicates)
        and uncovered-range rows are filtered exactly as a scan would.

        Degrades to the plain chunked scan when the registry went stale
        between planning and execution or the probe type is unservable.
        """
        if source in self.as_of:
            # pinned scans never ride a live index (it describes the live
            # generation) and never emit byproducts
            fmt = self.catalog.get(source).format
            if fmt == "csv":
                yield from self.csv_chunks(source, fields,
                                           batch_size=batch_size, whole=whole)
            else:
                yield from self.json_chunks(source, fields,
                                            batch_size=batch_size, whole=whole)
            return
        entry = self.catalog.get(source)
        plugin = entry.plugin
        fmt = entry.format
        gen = self.touch_generation(source)
        idx = None
        if self.indexes is not None and lookup is not None:
            idx = self.indexes.peek(source, gen, lookup[1])
        rows = idx.lookup(lookup) if idx is not None else None
        if rows is None:
            if fmt == "csv":
                yield from self.csv_chunks(
                    source, fields, access="warm", batch_size=batch_size,
                    whole=whole, index_fields=emit_fields,
                )
            else:
                yield from self.json_chunks(
                    source, fields, batch_size=batch_size, whole=whole,
                    index_fields=emit_fields,
                )
            return
        self.stats.index_hits += 1
        self.stats.raw_sources.add(source)
        device = self.device_for(source)
        if fmt == "csv":
            total = len(plugin.posmap.row_offsets)
        else:
            total = plugin.object_count()
        served = 0
        pos = 0
        for lo, hi in idx.uncovered_ranges(total) + [(total, total)]:
            j = bisect.bisect_left(rows, lo, pos)
            for i in range(pos, j, batch_size):
                batch = rows[i:min(j, i + batch_size)]
                yield self._fetch_rows_chunk(entry, batch, fields, whole,
                                             device)
                served += len(batch)
            # candidates can't live inside an uncovered hole; skip defensively
            pos = bisect.bisect_left(rows, hi, j)
            if hi > lo:
                yield from self._index_hole_scan(entry, lo, hi, fields, whole,
                                                 batch_size, emit_fields,
                                                 device)
        self.stats.index_rows_served += served
        self.stats.raw_rows += served

    def _fetch_rows_chunk(self, entry, rows: list, fields: tuple,
                          whole: bool, device) -> Chunk:
        """Positionally fetch ``rows`` (global row/span numbers) as one
        dense chunk, mirroring the shapes the plain chunked scans yield."""
        plugin = entry.plugin
        fields = tuple(fields)
        if entry.format == "csv":
            if whole:
                names = tuple(plugin.columns)
                cols = plugin.fetch_rows(rows, names, device=device)
                records = [dict(zip(names, vals)) for vals in zip(*cols)]
                picked = tuple(cols[names.index(f)] for f in fields)
                return Chunk(fields, picked, len(rows), whole=records)
            if not fields:
                return Chunk((), (), len(rows))
            cols = plugin.fetch_rows(rows, fields, device=device)
            return Chunk(fields, tuple(cols), len(rows))
        spans = [plugin.semi_index[i] for i in rows]
        objs = plugin.assemble(spans, device=device)
        cols = tuple(plugin.project_paths(objs, list(fields))) if fields \
            else ()
        if whole:
            return Chunk(fields, cols, len(objs), whole=objs)
        return Chunk(fields, cols, len(objs))

    def _index_hole_scan(self, entry, lo: int, hi: int, fields: tuple,
                         whole: bool, batch_size: int, emit_fields: tuple,
                         device):
        """Full scan of one uncovered row range during an index-served scan,
        emitting byproducts so the range is covered next time."""
        plugin = entry.plugin
        source = entry.name
        if entry.format == "csv":
            split = Morsel("rows", lo, hi, start_row=lo)
        else:
            split = Morsel("spans", lo, hi, start_row=lo)
        sink = self._new_index_sink(emit_fields, split)
        count = 0
        if entry.format == "csv":
            chunks = plugin.scan_chunks(
                fields, batch_size=batch_size, device=device, whole=whole,
                access="warm", split=split, index_sink=sink,
            )
        else:
            chunks = plugin.scan_chunks(
                fields, batch_size=batch_size, device=device, whole=whole,
                split=split, index_sink=sink,
            )
        for chunk in chunks:
            count += chunk.scanned if chunk.scanned is not None \
                else chunk.selected_length
            yield chunk
        self.stats.raw_rows += count
        if sink is not None:
            self._adopt_index_partials(source, [sink])

    def array_chunks(
        self,
        source: str,
        fields: tuple = (),
        batch_size: int = DEFAULT_BATCH_SIZE,
        whole: bool = False,
        split=None,
    ):
        """Batched binary-array scan (fused-struct batch decode)."""
        if source in self.as_of:
            raise GenerationError(
                f"source {source!r} has format 'array', which does not "
                "support AS OF generation pinning")
        entry = self.catalog.get(source)
        self.touch_generation(source)
        ssink = self._new_stats_sink(source, tuple(fields), split)
        if split is None:
            self.stats.raw_sources.add(source)
            self.stats.raw_bytes += os.path.getsize(entry.plugin.path)
        count = 0
        chunks = entry.plugin.scan_chunks(fields, batch_size=batch_size,
                                          device=self.device_for(source),
                                          whole=whole, split=split,
                                          stats_sink=ssink)
        if split is None:
            chunks = self._instrument(chunks, source, "array", "cold",
                                      len(fields))
        for chunk in chunks:
            count += chunk.selected_length
            yield chunk
        if split is None:
            self.stats.raw_rows += count
            if ssink is not None:
                self._adopt_stats_partials(source, [ssink], complete=True)
        else:
            with self._lock:
                self.stats.raw_rows += count
                if ssink is not None:
                    self._stats_parts.setdefault(source, {})[split] = ssink

    def xls_chunks(
        self,
        source: str,
        fields: tuple = (),
        batch_size: int = DEFAULT_BATCH_SIZE,
        whole: bool = False,
    ):
        """Batched workbook scan of the source's registered sheet."""
        entry = self.catalog.get(source)
        sheet = entry.description.options.get("sheet")
        self.stats.raw_sources.add(source)
        self.stats.raw_bytes += os.path.getsize(entry.plugin.path)
        count = 0
        for chunk in entry.plugin.scan_chunks(sheet, fields,
                                              batch_size=batch_size,
                                              device=self.device_for(source),
                                              whole=whole):
            count += chunk.selected_length
            yield chunk
        self.stats.raw_rows += count

    # -- JSON -----------------------------------------------------------

    def json_objects(self, source: str):
        if source in self.as_of:
            for chunk in self.json_chunks(source, (), whole=True):
                yield from chunk.iter_whole()
            return
        entry = self.catalog.get(source)
        plugin = entry.plugin
        self.stats.raw_sources.add(source)
        self.stats.raw_bytes += os.path.getsize(plugin.path)
        count = 0
        for obj in plugin.scan_objects(device=self.device_for(source)):
            yield obj
            count += 1
        self.stats.raw_rows += count

    def json_spans(self, source: str):
        if source in self.as_of:
            raise GenerationError(
                f"positional span access cannot serve {source!r} AS OF a "
                "pinned generation")
        plugin = self.catalog.get(source).plugin
        self.stats.raw_sources.add(source)
        return plugin.scan_positions()

    def json_assemble(self, source: str, spans):
        plugin = self.catalog.get(source).plugin
        return plugin.assemble(spans, device=self.device_for(source))

    # -- array / xls -----------------------------------------------------------

    def array_scan(self, source: str):
        entry = self.catalog.get(source)
        self.stats.raw_sources.add(source)
        self.stats.raw_bytes += os.path.getsize(entry.plugin.path)
        count = 0
        for tup in entry.plugin.scan(device=self.device_for(source)):
            yield tup
            count += 1
        self.stats.raw_rows += count

    def xls_rows(self, source: str, fields: tuple):
        entry = self.catalog.get(source)
        sheet = entry.description.options.get("sheet")
        self.stats.raw_sources.add(source)
        self.stats.raw_bytes += os.path.getsize(entry.plugin.path)
        count = 0
        for tup in entry.plugin.scan(sheet, list(fields) or None,
                                     device=self.device_for(source)):
            yield tup
            count += 1
        self.stats.raw_rows += count

    # -- DBMS sources -----------------------------------------------------------

    def dbms_chunks(
        self,
        source: str,
        fields: tuple = (),
        batch_size: int = DEFAULT_BATCH_SIZE,
        whole: bool = False,
    ):
        """Batched scan of a registered DBMS source (full scans only; index
        lookups stay row-at-a-time via :meth:`dbms_rows`)."""
        plugin = self.catalog.get(source).plugin
        count = 0
        for chunk in plugin.scan_chunks(fields or None, batch_size=batch_size,
                                        whole=whole):
            count += chunk.selected_length
            yield chunk
        self.stats.cache_rows += count

    def dbms_rows(self, source: str, fields: tuple, index_eq: tuple | None):
        """Scan a registered DBMS source; uses the store index when the
        planner pushed an equality down (paper §2.1)."""
        plugin = self.catalog.get(source).plugin
        count = 0
        if index_eq is not None:
            if len(index_eq) == 3 and index_eq[2] == "in":
                field_name, values, _ = index_eq
                # dict.fromkeys dedupes hash-equal probes (1 vs 1.0) so a
                # record never surfaces twice for one IN-list
                for value in dict.fromkeys(values):
                    for doc in plugin.index_lookup(field_name, value):
                        yield doc
                        count += 1
            else:
                field_name, value = index_eq
                for doc in plugin.index_lookup(field_name, value):
                    yield doc
                    count += 1
        else:
            for record in plugin.scan(list(fields) or None):
                yield record
                count += 1
        self.stats.cache_rows += count

    # -- generic row iterator (subqueries, interpreter) ------------------------

    def iter_source(self, source: str):
        """Yield every element of a source as a record-like value.

        CSV/array/xls rows surface as dicts so path navigation works
        uniformly; JSON objects and memory elements pass through.
        """
        entry = self.catalog.get(source)
        fmt = entry.format
        if entry.data is not None:
            self.stats.cache_rows += len(entry.data)
            yield from entry.data
            return
        if fmt == "csv":
            if source in self.as_of:
                for chunk in self.csv_chunks(source, (), whole=True):
                    yield from chunk.iter_whole()
                return
            plugin = entry.plugin
            columns = plugin.columns
            self.stats.raw_sources.add(source)
            self.stats.raw_bytes += os.path.getsize(plugin.path)
            count = 0
            for tup in plugin.scan(None, device=self.device_for(source),
                                   clean=self.cleaning.get(source)):
                yield dict(zip(columns, tup))
                count += 1
            self.stats.raw_rows += count
            return
        if fmt == "json":
            yield from self.json_objects(source)
            return
        if source in self.as_of:
            raise GenerationError(
                f"source {source!r} has format {fmt!r}, which does not "
                "support AS OF generation pinning")
        if fmt == "array":
            plugin = entry.plugin
            names = list(plugin.dim_names) + [n for n, _t in plugin.header.fields]
            for tup in self.array_scan(source):
                yield dict(zip(names, tup))
            return
        if fmt == "xls":
            sheet = entry.description.options.get("sheet")
            columns = entry.plugin.sheets[sheet].columns
            for tup in self.xls_rows(source, tuple(columns)):
                yield dict(zip(columns, tup))
            return
        if fmt == "dbms":
            yield from self.dbms_rows(source, (), None)
            return
        raise ExecutionError(f"cannot iterate source of format {fmt!r}")

