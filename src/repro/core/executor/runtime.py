"""Query runtime: the services generated (and interpreted) plans call into.

A fresh :class:`QueryRuntime` is created per query execution. It owns no
data itself — it mediates access to the catalog's plugins, the session-wide
:class:`~repro.caching.DataCache`, cleaning policies, and optional simulated
devices, while accounting execution statistics (raw rows parsed, cache rows
served, raw bytes touched) that the benchmarks report.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ...caching import DataCache
from ...errors import ExecutionError
from ...mcc.monoids import get_monoid

#: the null tokens generated CSV conversion code tests against
NULL_TOKENS = frozenset(["", "null", "NULL", "NA", "N/A", "\\N"])


@dataclass
class ExecStats:
    """Per-query execution counters."""

    raw_rows: int = 0
    cache_rows: int = 0
    raw_bytes: int = 0
    raw_sources: set = field(default_factory=set)
    cache_sources: set = field(default_factory=set)
    cleaned_rows: int = 0
    skipped_rows: int = 0

    @property
    def cache_only(self) -> bool:
        """True when the query never touched a raw file."""
        return not self.raw_sources


class QueryRuntime:
    """Execution-time context handed to compiled/interpreted plans."""

    null_tokens = NULL_TOKENS

    def __init__(
        self,
        catalog,
        cache: DataCache,
        cleaning: dict | None = None,
        devices: dict | None = None,
    ):
        self.catalog = catalog
        self.cache = cache
        self.cleaning = cleaning or {}
        self.devices = devices or {}
        self.stats = ExecStats()

    # -- generic -----------------------------------------------------------

    def monoid(self, name: str, params: tuple = ()):
        return get_monoid(name, params)

    def device_for(self, source: str):
        return self.devices.get(source) or self.devices.get("*")

    # -- memory sources -----------------------------------------------------------

    def memory(self, source: str):
        entry = self.catalog.get(source)
        if entry.data is None:
            raise ExecutionError(f"source {source!r} is not an in-memory collection")
        self.stats.cache_rows += len(entry.data)
        return entry.data

    # -- cache access -----------------------------------------------------------

    def cache_data(self, source: str, fields: tuple, whole: bool):
        """Serve a scan from the cache; returns (data, layout).

        For field projections the result is a list of column lists aligned
        with ``fields``; for whole-element service it is an iterable of
        elements.
        """
        if whole:
            entry = self.cache.lookup(source, [], layouts=("objects", "bson", "json_text"))
        else:
            entry = self.cache.lookup(source, list(fields))
        if entry is None:
            raise ExecutionError(
                f"planner chose cache access for {source!r} but no entry covers "
                f"fields {fields!r}"
            )
        cached = entry.cached
        self.stats.cache_sources.add(source)
        self.stats.cache_rows += cached.count
        if whole:
            if cached.layout in ("objects", "bson", "json_text"):
                return [row[0] for row in cached.iter_rows(None)], cached.layout
            raise ExecutionError(
                f"cache entry for {source!r} has layout {cached.layout!r}, "
                "cannot serve whole elements"
            )
        if cached.layout == "columns":
            return [cached.data[f] for f in fields], "columns"
        cols: list[list] = [[] for _ in fields]
        for row in cached.iter_rows(fields):
            for i, v in enumerate(row):
                cols[i].append(v)
        return cols, cached.layout

    def admit_columns(self, source: str, fields: tuple, columns: tuple) -> None:
        """Admit piggybacked columnar data gathered during a raw scan."""
        rows = zip(*columns) if len(columns) > 1 else ((v,) for v in columns[0])
        self.cache.put(source, "columns", fields, rows)

    def admit_elements(self, source: str, layout: str, elements: list) -> None:
        self.cache.put(source, layout, (), elements)

    # -- CSV access paths -----------------------------------------------------------

    def csv_lines_cold(self, source: str, anchors: tuple):
        """Cold scan: yield (row, line) while building the positional map."""
        entry = self.catalog.get(source)
        plugin = entry.plugin
        device = self.device_for(source)
        anchor_list = list(anchors)
        plugin.posmap.begin_population(anchor_list)
        self.stats.raw_sources.add(source)
        self.stats.raw_bytes += os.path.getsize(plugin.path)
        from ...storage.io import RawFile

        encoding = plugin.options.encoding
        record_row = plugin.posmap.record_row
        with RawFile(plugin.path, device=device) as raw:
            row = 0
            for offset, line_bytes in raw.iter_lines():
                if offset < plugin._data_start:
                    continue
                line = line_bytes.decode(encoding)
                if not line:
                    continue
                record_row(offset, line, anchor_list)
                yield row, line
                row += 1
        plugin.posmap.finish_population()
        self.stats.raw_rows += row

    def csv_lines_warm(self, source: str):
        """Warm scan: yield (row, line); navigation uses the positional map."""
        entry = self.catalog.get(source)
        plugin = entry.plugin
        device = self.device_for(source)
        self.stats.raw_sources.add(source)
        self.stats.raw_bytes += os.path.getsize(plugin.path)
        from ...storage.io import RawFile

        encoding = plugin.options.encoding
        with RawFile(plugin.path, device=device) as raw:
            row = 0
            for offset, line_bytes in raw.iter_lines():
                if offset < plugin._data_start:
                    continue
                line = line_bytes.decode(encoding)
                if not line:
                    continue
                yield row, line
                row += 1
        self.stats.raw_rows += row

    def posmap_field(self, source: str):
        plugin = self.catalog.get(source).plugin
        return plugin.posmap.field_in_line

    def csv_row_dict(self, source: str, cells: list) -> dict:
        """Convert a full split row into a column-name → value dict."""
        plugin = self.catalog.get(source).plugin
        out = {}
        for i, name in enumerate(plugin.columns):
            text = cells[i] if i < len(cells) else ""
            if text in NULL_TOKENS:
                out[name] = None
            else:
                out[name] = plugin.converter(i)(text)
        return out

    # -- JSON -----------------------------------------------------------

    def json_objects(self, source: str):
        entry = self.catalog.get(source)
        plugin = entry.plugin
        self.stats.raw_sources.add(source)
        self.stats.raw_bytes += os.path.getsize(plugin.path)
        count = 0
        for obj in plugin.scan_objects(device=self.device_for(source)):
            yield obj
            count += 1
        self.stats.raw_rows += count

    def json_spans(self, source: str):
        plugin = self.catalog.get(source).plugin
        self.stats.raw_sources.add(source)
        return plugin.scan_positions()

    def json_assemble(self, source: str, spans):
        plugin = self.catalog.get(source).plugin
        return plugin.assemble(spans, device=self.device_for(source))

    # -- array / xls -----------------------------------------------------------

    def array_scan(self, source: str):
        entry = self.catalog.get(source)
        self.stats.raw_sources.add(source)
        self.stats.raw_bytes += os.path.getsize(entry.plugin.path)
        count = 0
        for tup in entry.plugin.scan(device=self.device_for(source)):
            yield tup
            count += 1
        self.stats.raw_rows += count

    def xls_rows(self, source: str, fields: tuple):
        entry = self.catalog.get(source)
        sheet = entry.description.options.get("sheet")
        self.stats.raw_sources.add(source)
        self.stats.raw_bytes += os.path.getsize(entry.plugin.path)
        count = 0
        for tup in entry.plugin.scan(sheet, list(fields) or None,
                                     device=self.device_for(source)):
            yield tup
            count += 1
        self.stats.raw_rows += count

    # -- DBMS sources -----------------------------------------------------------

    def dbms_rows(self, source: str, fields: tuple, index_eq: tuple | None):
        """Scan a registered DBMS source; uses the store index when the
        planner pushed an equality down (paper §2.1)."""
        plugin = self.catalog.get(source).plugin
        count = 0
        if index_eq is not None:
            field_name, value = index_eq
            for doc in plugin.index_lookup(field_name, value):
                yield doc
                count += 1
        else:
            for record in plugin.scan(list(fields) or None):
                yield record
                count += 1
        self.stats.cache_rows += count

    # -- generic row iterator (subqueries, interpreter) ------------------------

    def iter_source(self, source: str):
        """Yield every element of a source as a record-like value.

        CSV/array/xls rows surface as dicts so path navigation works
        uniformly; JSON objects and memory elements pass through.
        """
        entry = self.catalog.get(source)
        fmt = entry.format
        if entry.data is not None:
            self.stats.cache_rows += len(entry.data)
            yield from entry.data
            return
        if fmt == "csv":
            plugin = entry.plugin
            columns = plugin.columns
            self.stats.raw_sources.add(source)
            self.stats.raw_bytes += os.path.getsize(plugin.path)
            count = 0
            for tup in plugin.scan(None, device=self.device_for(source),
                                   clean=self.cleaning.get(source)):
                yield dict(zip(columns, tup))
                count += 1
            self.stats.raw_rows += count
            return
        if fmt == "json":
            yield from self.json_objects(source)
            return
        if fmt == "array":
            plugin = entry.plugin
            names = list(plugin.dim_names) + [n for n, _t in plugin.header.fields]
            for tup in self.array_scan(source):
                yield dict(zip(names, tup))
            return
        if fmt == "xls":
            sheet = entry.description.options.get("sheet")
            columns = entry.plugin.sheets[sheet].columns
            for tup in self.xls_rows(source, tuple(columns)):
                yield dict(zip(columns, tup))
            return
        if fmt == "dbms":
            yield from self.dbms_rows(source, (), None)
            return
        raise ExecutionError(f"cannot iterate source of format {fmt!r}")

    # -- cleaning -----------------------------------------------------------

    def has_cleaning(self, source: str) -> bool:
        return source in self.cleaning

    def cleaning_validates(self, source: str) -> bool:
        """True when the policy must see *every* row (dictionary validation)."""
        policy = self.cleaning.get(source)
        return bool(policy is not None and getattr(policy, "validate_always", False))

    def clean_row(self, source: str, row: int, cells: list, cols: tuple):
        """Delegate a conversion failure to the source's cleaning policy.

        Returns repaired converted values (aligned with ``cols``) or None to
        skip the row.
        """
        policy = self.cleaning.get(source)
        if policy is None:
            raise ExecutionError(f"no cleaning policy for {source!r}")
        plugin = self.catalog.get(source).plugin
        repaired = policy.repair(plugin, row, cells, list(cols))
        if repaired is None:
            self.stats.skipped_rows += 1
        else:
            self.stats.cleaned_rows += 1
        return repaired
