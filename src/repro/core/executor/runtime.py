"""Query runtime: the services generated (and interpreted) plans call into.

A fresh :class:`QueryRuntime` is created per query execution. It owns no
data itself — it mediates access to the catalog's plugins, the session-wide
:class:`~repro.caching.DataCache`, cleaning policies, and optional simulated
devices, while accounting execution statistics (raw rows parsed, cache rows
served, raw bytes touched) that the benchmarks report.
"""

from __future__ import annotations

import os
import pickle
import threading
from dataclasses import dataclass, field

from ...caching import DataCache
from ...errors import ExecutionError
from ...formats.descriptions import NULL_TOKENS
from ...mcc.monoids import get_monoid
from ..chunk import DEFAULT_BATCH_SIZE, MORSEL_ALL, Chunk, split_ranges
from .scheduler import MorselScheduler


@dataclass
class ExecStats:
    """Per-query execution counters."""

    raw_rows: int = 0
    cache_rows: int = 0
    raw_bytes: int = 0
    raw_sources: set = field(default_factory=set)
    cache_sources: set = field(default_factory=set)
    cleaned_rows: int = 0
    skipped_rows: int = 0
    #: morsels cancelled unstarted because a LIMIT was already satisfied
    morsels_cancelled: int = 0

    @property
    def cache_only(self) -> bool:
        """True when the query never touched a raw file."""
        return not self.raw_sources


class _CountingPolicy:
    """Wraps a cleaning policy so batch scans account repairs/skips.

    The batch path hands the policy to the plugin's chunked scan, so the
    per-query stats accounting wraps the policy rather than living in a
    runtime callback. ``lock`` serialises repairs when morsel workers share
    the underlying (possibly stateful) policy object.
    """

    def __init__(self, policy, stats: "ExecStats", lock=None):
        self._policy = policy
        self._lock = lock
        self.stats = stats
        self.validate_always = bool(getattr(policy, "validate_always", False))

    def repair(self, plugin, row: int, cells: list, cols: list):
        if self._lock is not None:
            with self._lock:
                return self._repair(plugin, row, cells, cols)
        return self._repair(plugin, row, cells, cols)

    def _repair(self, plugin, row: int, cells: list, cols: list):
        repaired = self._policy.repair(plugin, row, cells, list(cols))
        if repaired is None:
            self.stats.skipped_rows += 1
        else:
            self.stats.cleaned_rows += 1
        return repaired


class QueryRuntime:
    """Execution-time context handed to compiled/interpreted plans."""

    def __init__(
        self,
        catalog,
        cache: DataCache,
        cleaning: dict | None = None,
        devices: dict | None = None,
        row_limit: int | None = None,
        process_pool=None,
    ):
        self.catalog = catalog
        self.cache = cache
        self.cleaning = cleaning or {}
        self.devices = devices or {}
        #: session-lifetime worker-process pool, present when the session was
        #: opened with ``backend="process"`` (scans the planner marked
        #: ``backend="process"`` fan their kernel specs out through it)
        self.process_pool = process_pool
        self.stats = ExecStats()
        #: SQL LIMIT (or query(limit=...)) — lets LIMIT-countable parallel
        #: folds stop consuming morsels once enough rows are in hand
        self.row_limit = row_limit
        #: True once a limited scan stopped early: the query saw a prefix of
        #: the source, so cache admissions must be suppressed
        self.truncated = False
        # morsel-parallel scans: stats flushes, cleaning-policy calls and
        # cache admissions from worker threads serialise on this lock
        self._lock = threading.Lock()
        # one cache lookup per (source, fields, whole) per query, shared by
        # every morsel worker slicing row-range chunk views off it
        self._cache_scan_memo: dict[tuple, tuple] = {}
        # per-morsel positional-map partials awaiting the coordinator's
        # ordered merge (source → {Morsel: PositionalMap})
        self._posmap_parts: dict[str, dict] = {}

    # -- generic -----------------------------------------------------------

    def monoid(self, name: str, params: tuple = ()):
        return get_monoid(name, params)

    def device_for(self, source: str):
        return self.devices.get(source) or self.devices.get("*")

    # -- morsel-parallel scan protocol ------------------------------------------

    def run_morsels(self, kernel, morsels: list, dop: int,
                    limited: bool = False) -> list:
        """Fan per-morsel kernels out over the scheduler; partials return in
        morsel order so callers merge deterministically.

        ``limited`` marks a LIMIT-countable fold (``bag``/``list`` driver):
        each partial's first element is its ordered output-row list, so once
        the morsel-ordered prefix carries ``row_limit`` rows the scheduler
        stops consuming and cancels pending morsels — the merged prefix
        holds the same first ``row_limit`` rows a full run would return.
        """
        stop = None
        if limited and self.row_limit is not None:
            target = self.row_limit
            seen = 0

            def stop(partial):
                nonlocal seen
                seen += len(partial[0])
                return seen >= target

        scheduler = MorselScheduler(dop)
        partials = scheduler.map(kernel, morsels, stop=stop)
        if len(partials) < len(morsels):
            # the query saw a prefix of the scan: suppress cache admission
            # (and posmap adoption skips the holes via finish_scan's guard).
            # In-flight morsels drain with their results discarded; only the
            # truly-unstarted ones count as cancelled.
            self.truncated = True
            if scheduler.cancelled:
                with self._lock:
                    self.stats.morsels_cancelled += scheduler.cancelled
        return partials

    def run_morsels_spec(self, module_source: str, worker: str, shared: dict,
                         morsels: list, dop: int, limited: bool = False) -> list:
        """Process-backend fan-out of a JIT parallel scan.

        Packages the generated module plus the worker's read-only closure
        state into a picklable :class:`~.procpool.KernelSpec`, runs it over
        the session's worker-process pool, and returns unpacked worker
        partials in morsel order — shaped exactly like the thread path's, so
        the generated merge loop is backend-agnostic. Worker stat deltas are
        flushed under the runtime lock and positional-map partials are
        stored for :meth:`finish_scan`, mirroring the thread contract.
        """
        import functools

        from . import procpool

        spec = procpool.jit_spec(self, module_source, worker, shared)
        kernel = functools.partial(procpool.run_jit_morsel, pickle.dumps(spec))
        return self._run_spec(kernel, morsels, dop, limited)

    def run_morsels_plan(self, plan, shared_ix: dict, morsels: list, dop: int,
                         limited: bool = False) -> list:
        """Process-backend fan-out of a static-engine parallel scan: ships
        the pickled physical plan plus chain-indexed prebuilt join state."""
        import functools

        from . import procpool

        spec = procpool.static_spec(self, plan, shared_ix)
        kernel = functools.partial(procpool.run_static_morsel, pickle.dumps(spec))
        return self._run_spec(kernel, morsels, dop, limited)

    def _run_spec(self, kernel, morsels: list, dop: int, limited: bool) -> list:
        """Shared spec-kernel driver: schedule, merge stats/posmap partials
        in the parent (children never touch the parent's cache), unpack
        shared-memory columns, and return worker partials in morsel order."""
        from . import procpool
        from .scheduler import ProcessMorselScheduler

        stop = None
        if limited and self.row_limit is not None:
            target = self.row_limit
            seen = 0

            def stop(result):
                nonlocal seen
                # result[0] is the packed partial; its first element is the
                # ordered output-row list (len works on shm placeholders too)
                seen += len(result[0][0])
                return seen >= target

        scheduler = ProcessMorselScheduler(dop, self.process_pool)
        scheduler.discard = procpool.release_result
        results = scheduler.map(kernel, morsels, stop=stop)
        if len(results) < len(morsels):
            self.truncated = True
            if scheduler.cancelled:
                with self._lock:
                    self.stats.morsels_cancelled += scheduler.cancelled
        partials = []
        for morsel, (packed, deltas, posmaps) in zip(morsels, results):
            raw_rows, cleaned, skipped, cache_rows = deltas
            with self._lock:
                self.stats.raw_rows += raw_rows
                self.stats.cleaned_rows += cleaned
                self.stats.skipped_rows += skipped
                self.stats.cache_rows += cache_rows
                for src, part in posmaps:
                    self._posmap_parts.setdefault(src, {})[morsel] = part
            partials.append(procpool.unpack_partial(packed))
        return partials

    def account_raw(self, source: str) -> None:
        """File-level raw accounting for a parallel scan, charged once by
        the coordinator (split scans skip it so workers don't multiply it)."""
        entry = self.catalog.get(source)
        with self._lock:
            self.stats.raw_sources.add(source)
            self.stats.raw_bytes += os.path.getsize(entry.plugin.path)

    #: split multiplier for LIMIT-countable parallel folds: finer morsels
    #: mean the scheduler can stop sooner once the limit is satisfied
    LIMIT_OVERSPLIT = 4

    def scan_splits(self, source: str, dop: int, access: str = "cold",
                    fields: tuple = (), whole: bool = False,
                    limited: bool = False) -> list:
        """Morsels for a parallel scan of ``source`` (at most ``dop``).

        Cache scans split into row ranges over the (single, memoised)
        lookup; raw formats delegate to the plugin's splittable-range
        contract; anything else degrades to the single-morsel plan.
        ``limited`` + an active row limit over-partitions (more morsels than
        workers) so early termination has pending morsels to cancel.
        """
        parts = dop
        if limited and self.row_limit is not None:
            parts = dop * self.LIMIT_OVERSPLIT
        if access == "cache":
            data, _layout = self._cache_scan_once(source, tuple(fields), whole)
            count = len(data) if whole else (len(data[0]) if data else 0)
            return split_ranges(count, parts, "rows")
        plugin = self.catalog.get(source).plugin
        splits = getattr(plugin, "scan_splits", None)
        if splits is None:
            return [MORSEL_ALL]
        return splits(parts)

    def finish_scan(self, source: str, splits: list) -> None:
        """Coordinator epilogue of a parallel scan: merge auxiliary-structure
        partials (positional maps) in morsel order. No-op for sources whose
        morsels recorded nothing."""
        parts = self._posmap_parts.pop(source, None)
        if not parts:
            return
        byte_splits = [s for s in splits if s.kind == "bytes"]
        if not byte_splits or any(s not in parts for s in byte_splits):
            return  # a morsel didn't finish; discard rather than adopt holes
        plugin = self.catalog.get(source).plugin
        plugin.adopt_posmap_partials([parts[s] for s in byte_splits])

    def _cache_scan_once(self, source: str, fields: tuple, whole: bool):
        key = (source, fields, bool(whole))
        with self._lock:
            hit = self._cache_scan_memo.get(key)
            if hit is None:
                hit = self.cache_data(source, fields, whole)
                self._cache_scan_memo[key] = hit
        return hit

    # -- memory sources -----------------------------------------------------------

    def memory(self, source: str):
        entry = self.catalog.get(source)
        if entry.data is None:
            raise ExecutionError(f"source {source!r} is not an in-memory collection")
        self.stats.cache_rows += len(entry.data)
        return entry.data

    # -- cache access -----------------------------------------------------------

    def cache_data(self, source: str, fields: tuple, whole: bool):
        """Serve a scan from the cache; returns (data, layout).

        For field projections the result is a list of column lists aligned
        with ``fields``; for whole-element service it is an iterable of
        elements.
        """
        if whole:
            entry = self.cache.lookup(source, [], layouts=("objects", "bson", "json_text"))
        else:
            entry = self.cache.lookup(source, list(fields))
        if entry is None:
            raise ExecutionError(
                f"planner chose cache access for {source!r} but no entry covers "
                f"fields {fields!r}"
            )
        cached = entry.cached
        self.stats.cache_sources.add(source)
        self.stats.cache_rows += cached.count
        if whole:
            if cached.layout in ("objects", "bson", "json_text"):
                return [row[0] for row in cached.iter_rows(None)], cached.layout
            raise ExecutionError(
                f"cache entry for {source!r} has layout {cached.layout!r}, "
                "cannot serve whole elements"
            )
        if cached.layout == "columns":
            return [cached.data[f] for f in fields], "columns"
        cols: list[list] = [[] for _ in fields]
        for row in cached.iter_rows(fields):
            for i, v in enumerate(row):
                cols[i].append(v)
        return cols, cached.layout

    def admit_columns(self, source: str, fields: tuple, columns: tuple) -> None:
        """Admit piggybacked columnar data gathered during a raw scan.

        Whole column batches go straight into the cache — no per-row tuple
        round-trip (the batch pipeline's population lists are adopted as-is).
        A LIMIT-truncated execution saw only a prefix of the source, so
        nothing is admitted (a partial column must never pose as complete).
        """
        if self.truncated:
            return
        self.cache.put_columns(source, fields, columns)

    def admit_elements(self, source: str, layout: str, elements: list) -> None:
        if self.truncated:
            return
        self.cache.put(source, layout, (), elements)

    # -- chunked scan protocol (shared by both engines) ------------------------

    def cache_chunks(self, source: str, fields: tuple, whole: bool,
                     split=None):
        """Serve a cached scan as one zero-copy chunk view.

        Columnar entries are wrapped without copying a value; row/object
        layouts are columnarised once. Returns a list so callers iterate a
        uniform chunk stream regardless of access path. ``split`` serves a
        row-range chunk view of the (memoised, shared) lookup instead —
        morsel workers each slice their rows off one cache entry.
        """
        if split is None:
            data, _layout = self.cache_data(source, fields, whole)
        else:
            data, _layout = self._cache_scan_once(source, tuple(fields), whole)
            if split.kind == "rows":
                if whole:
                    data = data[split.lo:split.hi]
                else:
                    data = [col[split.lo:split.hi] for col in data]
            elif split.kind != "all":
                raise ExecutionError(
                    f"cache scans cannot interpret a {split.kind!r} morsel"
                )
        if whole:
            return [Chunk((), (), len(data), whole=data)]
        length = len(data[0]) if data else 0
        return [Chunk(tuple(fields), tuple(data), length)]

    def csv_chunks(
        self,
        source: str,
        fields: tuple,
        access: str = "cold",
        batch_size: int = DEFAULT_BATCH_SIZE,
        whole: bool = False,
        split=None,
        pred_fields: tuple = (),
        pred_kernel=None,
    ):
        """Batched CSV scan: converted column chunks with piggybacked
        positional-map population (cold) and batch-level cleaning.

        With ``split`` the scan covers one morsel: file-level accounting is
        the coordinator's job (:meth:`account_raw`), row/cleaning counters
        accumulate locally and flush under the runtime lock once.

        ``pred_fields``/``pred_kernel`` forward a selection-pushdown filter
        to the plugin's warm navigated path (late materialization); chunks
        then arrive as dense predicate survivors with ``Chunk.scanned``
        carrying the physical row count for accounting."""
        entry = self.catalog.get(source)
        plugin = entry.plugin
        clean = self.cleaning.get(source)
        if clean is None or not (fields or whole):
            # a projection that touches no raw attribute cannot fail conversion
            clean = None
        if split is None:
            self.stats.raw_sources.add(source)
            self.stats.raw_bytes += os.path.getsize(plugin.path)
            if clean is not None:
                clean = _CountingPolicy(clean, self.stats)
            count = 0
            skipped_before = self.stats.skipped_rows
            for chunk in plugin.scan_chunks(
                fields, batch_size=batch_size, device=self.device_for(source),
                clean=clean, whole=whole, access=access,
                pred_fields=pred_fields, pred_kernel=pred_kernel,
            ):
                count += chunk.scanned if chunk.scanned is not None \
                    else chunk.selected_length
                yield chunk
            # rows the cleaning policy dropped were still physically scanned
            self.stats.raw_rows += count + (self.stats.skipped_rows - skipped_before)
            return
        local = ExecStats()
        if clean is not None:
            clean = _CountingPolicy(clean, local, lock=self._lock)
        partial = None
        if split.kind == "bytes" and access == "cold":
            # sharded positional-map population piggybacks on the morsel;
            # finish_scan merges the partials in morsel order
            partial = plugin.new_posmap_partial()
        count = 0
        for chunk in plugin.scan_chunks(
            fields, batch_size=batch_size, device=self.device_for(source),
            clean=clean, whole=whole, access=access, split=split,
            posmap_partial=partial,
            pred_fields=pred_fields, pred_kernel=pred_kernel,
        ):
            count += chunk.scanned if chunk.scanned is not None \
                else chunk.selected_length
            yield chunk
        with self._lock:
            self.stats.raw_rows += count + local.skipped_rows
            self.stats.cleaned_rows += local.cleaned_rows
            self.stats.skipped_rows += local.skipped_rows
            if partial is not None:
                self._posmap_parts.setdefault(source, {})[split] = partial

    def json_chunks(
        self,
        source: str,
        paths: tuple = (),
        batch_size: int = DEFAULT_BATCH_SIZE,
        whole: bool = False,
        split=None,
    ):
        """Batched JSON scan: dotted-path column chunks and/or whole objects."""
        entry = self.catalog.get(source)
        plugin = entry.plugin
        if split is None:
            self.stats.raw_sources.add(source)
            self.stats.raw_bytes += os.path.getsize(plugin.path)
        count = 0
        for chunk in plugin.scan_chunks(paths, batch_size=batch_size,
                                        device=self.device_for(source),
                                        whole=whole, split=split):
            count += chunk.selected_length
            yield chunk
        if split is None:
            self.stats.raw_rows += count
        else:
            with self._lock:
                self.stats.raw_rows += count

    def array_chunks(
        self,
        source: str,
        fields: tuple = (),
        batch_size: int = DEFAULT_BATCH_SIZE,
        whole: bool = False,
        split=None,
    ):
        """Batched binary-array scan (fused-struct batch decode)."""
        entry = self.catalog.get(source)
        if split is None:
            self.stats.raw_sources.add(source)
            self.stats.raw_bytes += os.path.getsize(entry.plugin.path)
        count = 0
        for chunk in entry.plugin.scan_chunks(fields, batch_size=batch_size,
                                              device=self.device_for(source),
                                              whole=whole, split=split):
            count += chunk.selected_length
            yield chunk
        if split is None:
            self.stats.raw_rows += count
        else:
            with self._lock:
                self.stats.raw_rows += count

    def xls_chunks(
        self,
        source: str,
        fields: tuple = (),
        batch_size: int = DEFAULT_BATCH_SIZE,
        whole: bool = False,
    ):
        """Batched workbook scan of the source's registered sheet."""
        entry = self.catalog.get(source)
        sheet = entry.description.options.get("sheet")
        self.stats.raw_sources.add(source)
        self.stats.raw_bytes += os.path.getsize(entry.plugin.path)
        count = 0
        for chunk in entry.plugin.scan_chunks(sheet, fields,
                                              batch_size=batch_size,
                                              device=self.device_for(source),
                                              whole=whole):
            count += chunk.selected_length
            yield chunk
        self.stats.raw_rows += count

    # -- JSON -----------------------------------------------------------

    def json_objects(self, source: str):
        entry = self.catalog.get(source)
        plugin = entry.plugin
        self.stats.raw_sources.add(source)
        self.stats.raw_bytes += os.path.getsize(plugin.path)
        count = 0
        for obj in plugin.scan_objects(device=self.device_for(source)):
            yield obj
            count += 1
        self.stats.raw_rows += count

    def json_spans(self, source: str):
        plugin = self.catalog.get(source).plugin
        self.stats.raw_sources.add(source)
        return plugin.scan_positions()

    def json_assemble(self, source: str, spans):
        plugin = self.catalog.get(source).plugin
        return plugin.assemble(spans, device=self.device_for(source))

    # -- array / xls -----------------------------------------------------------

    def array_scan(self, source: str):
        entry = self.catalog.get(source)
        self.stats.raw_sources.add(source)
        self.stats.raw_bytes += os.path.getsize(entry.plugin.path)
        count = 0
        for tup in entry.plugin.scan(device=self.device_for(source)):
            yield tup
            count += 1
        self.stats.raw_rows += count

    def xls_rows(self, source: str, fields: tuple):
        entry = self.catalog.get(source)
        sheet = entry.description.options.get("sheet")
        self.stats.raw_sources.add(source)
        self.stats.raw_bytes += os.path.getsize(entry.plugin.path)
        count = 0
        for tup in entry.plugin.scan(sheet, list(fields) or None,
                                     device=self.device_for(source)):
            yield tup
            count += 1
        self.stats.raw_rows += count

    # -- DBMS sources -----------------------------------------------------------

    def dbms_chunks(
        self,
        source: str,
        fields: tuple = (),
        batch_size: int = DEFAULT_BATCH_SIZE,
        whole: bool = False,
    ):
        """Batched scan of a registered DBMS source (full scans only; index
        lookups stay row-at-a-time via :meth:`dbms_rows`)."""
        plugin = self.catalog.get(source).plugin
        count = 0
        for chunk in plugin.scan_chunks(fields or None, batch_size=batch_size,
                                        whole=whole):
            count += chunk.selected_length
            yield chunk
        self.stats.cache_rows += count

    def dbms_rows(self, source: str, fields: tuple, index_eq: tuple | None):
        """Scan a registered DBMS source; uses the store index when the
        planner pushed an equality down (paper §2.1)."""
        plugin = self.catalog.get(source).plugin
        count = 0
        if index_eq is not None:
            field_name, value = index_eq
            for doc in plugin.index_lookup(field_name, value):
                yield doc
                count += 1
        else:
            for record in plugin.scan(list(fields) or None):
                yield record
                count += 1
        self.stats.cache_rows += count

    # -- generic row iterator (subqueries, interpreter) ------------------------

    def iter_source(self, source: str):
        """Yield every element of a source as a record-like value.

        CSV/array/xls rows surface as dicts so path navigation works
        uniformly; JSON objects and memory elements pass through.
        """
        entry = self.catalog.get(source)
        fmt = entry.format
        if entry.data is not None:
            self.stats.cache_rows += len(entry.data)
            yield from entry.data
            return
        if fmt == "csv":
            plugin = entry.plugin
            columns = plugin.columns
            self.stats.raw_sources.add(source)
            self.stats.raw_bytes += os.path.getsize(plugin.path)
            count = 0
            for tup in plugin.scan(None, device=self.device_for(source),
                                   clean=self.cleaning.get(source)):
                yield dict(zip(columns, tup))
                count += 1
            self.stats.raw_rows += count
            return
        if fmt == "json":
            yield from self.json_objects(source)
            return
        if fmt == "array":
            plugin = entry.plugin
            names = list(plugin.dim_names) + [n for n, _t in plugin.header.fields]
            for tup in self.array_scan(source):
                yield dict(zip(names, tup))
            return
        if fmt == "xls":
            sheet = entry.description.options.get("sheet")
            columns = entry.plugin.sheets[sheet].columns
            for tup in self.xls_rows(source, tuple(columns)):
                yield dict(zip(columns, tup))
            return
        if fmt == "dbms":
            yield from self.dbms_rows(source, (), None)
            return
        raise ExecutionError(f"cannot iterate source of format {fmt!r}")

