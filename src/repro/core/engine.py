"""Process-wide engine context: warm state shared by many tenant sessions.

The paper's economics — pay the scan cost once, amortise positional maps,
data caches and value indexes across later queries — only compound when
that JIT-built state outlives a single session. :class:`EngineContext`
owns everything that is a property of the *data* rather than of one user:
the catalog, the shared :class:`~repro.caching.DataCache`, the
:class:`~repro.indexing.IndexRegistry`, the JIT compile cache, the
worker-process pool, and cross-tenant sharing statistics. A
:class:`~repro.core.session.ViDa` session borrows all of it and keeps only
per-tenant concerns (language bindings, cleaning policies, knobs, quotas).

Concurrency contract (ARCHITECTURE.md §Engine vs Session):

- every auxiliary-structure merge point (positional-map adoption, value-
  index adoption, cache admission) is an **atomic adopt-or-discard**
  operation: it runs under the catalog's per-source lock and compares the
  source's generation token captured at scan start against the current
  one — two sessions racing a cold scan of the same file produce exactly
  one winner and zero torn state, and a scan of a since-mutated file can
  never poison fresh structures;
- lock order is always ``catalog source lock → structure-internal lock``
  (DataCache / IndexRegistry / plugin auxiliary locks are leaves and never
  taken first), so the context cannot deadlock;
- the worker-process pool is refcounted by attached sessions: the last
  session out shuts it down, a later attach respawns it lazily.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..caching import AdmissionPolicy, DataCache
from ..errors import ViDaError
from ..indexing import IndexRegistry
from ..stats import CostCalibration, StatsRegistry
from ..storage.io import FileFingerprint
from .catalog import Catalog, next_generation
from .executor.engine import JITExecutor
from .executor.static_engine import StaticExecutor
from .generations import (
    DEFAULT_RETAIN_GENERATIONS,
    GenerationSnapshot,
    PinnedState,
)


@dataclass
class EngineStats:
    """Cross-tenant sharing counters (cache internals live in CacheStats)."""

    #: queries executed across every attached session
    queries: int = 0
    #: positional maps merged into a source (one winner per cold race)
    posmap_adoptions: int = 0
    #: completed posmap partials discarded because another scan won the
    #: race (map already complete) or the file's generation moved on
    posmap_discards: int = 0
    #: value-index adoptions that grew at least one field's index
    index_adoptions: int = 0
    #: index partials dropped at the generation-token gate
    index_discards: int = 0
    #: cache admissions dropped because the source mutated mid-query
    stale_admissions_dropped: int = 0
    #: table-statistics partials merged into the shared registry
    stats_adoptions: int = 0
    #: table-statistics partials dropped at the generation-token gate
    stats_discards: int = 0
    #: append-classified refreshes served by an O(delta) tail rescan
    delta_refreshes: int = 0
    #: raw bytes re-read by delta refreshes (the tail regions only)
    delta_tail_bytes: int = 0
    #: refreshes that fell back to dropping every auxiliary structure
    full_invalidations: int = 0
    sessions_opened: int = 0
    sessions_closed: int = 0


class QuotaCacheView:
    """Per-tenant view of the shared cache that meters *writes* only.

    Reads (lookups, peeks) pass straight through — a tenant always benefits
    from data other tenants warmed. Admissions are charged against the
    tenant's byte quota and refused once it is exhausted, so one noisy
    tenant cannot churn the shared cache. All other attributes delegate.
    """

    def __init__(self, cache: DataCache, quota_bytes: int):
        self._cache = cache
        self.quota_bytes = quota_bytes
        self.admitted_bytes = 0
        self.writes_denied = 0
        self._quota_lock = threading.Lock()

    def _allow(self) -> bool:
        with self._quota_lock:
            if self.admitted_bytes >= self.quota_bytes:
                self.writes_denied += 1
                return False
            return True

    def _charge(self, entry):
        if entry is not None:
            with self._quota_lock:
                self.admitted_bytes += entry.cached.nbytes
        return entry

    def put(self, *args, **kwargs):
        if not self._allow():
            return None
        return self._charge(self._cache.put(*args, **kwargs))

    def put_columns(self, *args, **kwargs):
        if not self._allow():
            return None
        return self._charge(self._cache.put_columns(*args, **kwargs))

    def put_cached(self, *args, **kwargs):
        if not self._allow():
            return None
        return self._charge(self._cache.put_cached(*args, **kwargs))

    def __getattr__(self, name):
        return getattr(self._cache, name)

    def __len__(self) -> int:
        return len(self._cache)


class EngineContext:
    """Shared, concurrency-safe virtualization state for N sessions."""

    def __init__(
        self,
        cache_budget_bytes: int = 256 << 20,
        admission_policy: AdmissionPolicy | None = None,
        retain_generations: int = DEFAULT_RETAIN_GENERATIONS,
    ):
        if retain_generations < 1:
            raise ViDaError("retain_generations must be at least 1")
        self.retain_generations = retain_generations
        self.catalog = Catalog()
        self.cache = DataCache(cache_budget_bytes, admission_policy)
        self.indexes = IndexRegistry()
        self.table_stats = StatsRegistry()
        self.calibration = CostCalibration()
        self.stats = EngineStats()
        self.jit = JITExecutor(self.catalog)
        self.static = StaticExecutor(self.catalog)
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._sessions = 0
        self._pool = None
        self._closed = False

    # -- session refcounting -------------------------------------------------

    def attach(self) -> None:
        """Register one session against the context (ViDa.__init__)."""
        with self._lock:
            if self._closed:
                raise ViDaError("engine context is closed")
            self._sessions += 1
            self.stats.sessions_opened += 1

    def detach(self) -> None:
        """Deregister one session; the last one out shuts the worker pool
        (a later attach respawns it lazily). Idempotent per session —
        :meth:`ViDa.close` guards against double-detach."""
        with self._lock:
            if self._sessions > 0:
                self._sessions -= 1
                self.stats.sessions_closed += 1
            if self._sessions == 0 and self._pool is not None:
                self._pool.shutdown()
                self._pool = None

    @property
    def session_count(self) -> int:
        with self._lock:
            return self._sessions

    # -- the shared worker-process pool -------------------------------------

    def worker_pool(self, parallelism: int):
        """The context's worker-process pool, spawned on first request.

        The pool is sized by the first requester; a ProcessPoolExecutor
        cannot grow, so later sessions asking for more workers share the
        existing pool (the planner still caps each scan's DoP at the
        session's own ``parallelism``).
        """
        from .executor.procpool import WorkerPool

        with self._lock:
            if self._closed:
                raise ViDaError("engine context is closed")
            if self._pool is None:
                self._pool = WorkerPool(parallelism)
            return self._pool

    def close(self) -> None:
        """Shut the context down for good: the pool dies and any session
        still attached (or attached later) gets a clear error."""
        with self._lock:
            self._closed = True
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None

    @property
    def closed(self) -> bool:
        return self._closed

    # -- cross-tenant statistics ---------------------------------------------

    def count(self, **deltas: int) -> None:
        """Atomically bump EngineStats counters (runtime merge points)."""
        with self._stats_lock:
            for name, delta in deltas.items():
                setattr(self.stats, name, getattr(self.stats, name) + delta)

    def stats_snapshot(self) -> dict:
        """One JSON-able view of engine-level sharing state (server /stats)."""
        with self._stats_lock:
            engine = {
                "queries": self.stats.queries,
                "sessions": self._sessions,
                "sessions_opened": self.stats.sessions_opened,
                "sessions_closed": self.stats.sessions_closed,
                "posmap_adoptions": self.stats.posmap_adoptions,
                "posmap_discards": self.stats.posmap_discards,
                "index_adoptions": self.stats.index_adoptions,
                "index_discards": self.stats.index_discards,
                "stats_adoptions": self.stats.stats_adoptions,
                "stats_discards": self.stats.stats_discards,
                "stale_admissions_dropped": self.stats.stale_admissions_dropped,
                "delta_refreshes": self.stats.delta_refreshes,
                "delta_tail_bytes": self.stats.delta_tail_bytes,
                "full_invalidations": self.stats.full_invalidations,
            }
        cs = self.cache.stats
        engine["cache"] = {
            "lookups": cs.lookups, "hits": cs.hits,
            "admissions": cs.admissions, "rejections": cs.rejections,
            "evictions": cs.evictions, "invalidations": cs.invalidations,
            "entries": len(self.cache), "used_bytes": self.cache.used_bytes,
        }
        js = self.jit.stats
        engine["compile_cache"] = {
            "compilations": js.compilations, "hits": js.cache_hits,
            "evictions": js.evictions,
        }
        engine["table_stats"] = self.table_stats.summary()
        engine["calibration"] = self.calibration.snapshot()
        return engine

    def plan_epoch(self) -> tuple:
        """Fingerprint of every input the planner reads beyond the query
        text. A prepared plan cached under one epoch is replanned the
        moment any component moves — catalog shape or file generations,
        table statistics, cost calibration — so a stale plan (built before
        stats arrived, or before a file mutated) can never be served.
        """
        with self._stats_lock:
            aux = (self.stats.posmap_adoptions, self.stats.index_adoptions,
                   self.stats.stats_adoptions)
        cs = self.cache.stats
        return (self.catalog.version, self.table_stats.version,
                self.calibration.version,
                cs.admissions, cs.evictions, cs.invalidations) + aux

    # -- generation-aware refresh --------------------------------------------

    def refresh_source(self, name: str) -> bool:
        """Freshness check generalised from "latest wins" to "latest
        extends, history pins". Returns True if the backing file is
        unchanged.

        On a fingerprint change the superseded generation is snapshotted
        into the entry's bounded history, then the mutation is classified:

        - **append** (old content is a byte-prefix of the new file) with a
          complete posmap / built semi-index → the tail past the last
          mapped byte is re-scanned and posmap, semi-index, cache entries,
          value indexes and table stats are *extended* into the new
          generation in O(delta);
        - **append without extendable structures** → auxiliaries drop, but
          history snapshots stay live-prefix (their bytes survive);
        - **anything else** → every live snapshot is frozen onto a shared
          :class:`PinnedState` rescuing current cache entries/stats, and
          all auxiliary structures drop (paper §2.1 behaviour).

        Runs atomically under the catalog's per-source lock, exactly like
        ``Catalog.check_freshness``: of N racing observers one refreshes.
        """
        entry = self.catalog.get(name)
        path = entry.description.path
        if entry.fingerprint is None or path is None:
            return True
        if entry.fingerprint.matches(path):
            return True
        with self.catalog.source_lock(name):
            # re-check: another thread may have refreshed while we waited
            if entry.fingerprint.matches(path):
                return True
            self._refresh_locked(entry, name, path)
        return False

    def _refresh_locked(self, entry, name: str, path: str) -> None:
        old_fp = entry.fingerprint
        old_gen = entry.generation
        new_fp = FileFingerprint.of(path)
        old_rows = self._live_row_count(entry)
        entry.history.capacity = self.retain_generations
        entry.history.add(GenerationSnapshot(
            generation=old_gen, fingerprint=old_fp,
            byte_size=old_fp.size, row_count=old_rows,
        ))
        new_gen = next_generation()
        appended = (
            entry.format in ("csv", "json")
            and new_fp.size > old_fp.size
            # a CSV whose last line lacked a newline may have had that line
            # *extended* by the append — its old rows are not a row-prefix
            and (entry.format == "json" or old_fp.ends_nl)
            and old_fp.is_prefix_of(path)
        )
        if not (appended and self._try_extend(entry, name, old_fp, new_fp,
                                              old_gen, new_gen, old_rows)):
            if not appended:
                # rewrite: the old bytes are gone — rescue references to
                # current cache entries/stats for every live-prefix snapshot
                # *before* unlinking them from the live registries
                mine = [e.cached for e in self.cache.entries()
                        if e.source == name]
                total = old_rows
                if total is None:
                    counts = {c.count for c in mine}
                    if len(counts) == 1:
                        total = counts.pop()
                entry.history.pin_all(PinnedState(
                    cached=mine,
                    stats=self.table_stats.peek(name, old_gen),
                    total_rows=total,
                ))
            if hasattr(entry.plugin, "invalidate_auxiliary"):
                entry.plugin.invalidate_auxiliary()
            self.cache.invalidate_source(name)
            self.indexes.invalidate_source(name)
            self.table_stats.invalidate_source(name)
            self.count(full_invalidations=1)
        entry.fingerprint = new_fp
        entry.generation = new_gen
        self.catalog.bump_version()

    def _try_extend(self, entry, name: str, old_fp, new_fp,
                    old_gen: int, new_gen: int, old_rows: int | None) -> bool:
        """Attempt the O(delta) tail extension; False → caller invalidates.

        A failure inside the plugin (dirty tail rows, I/O error) leaves
        the live structures untouched — the plugin only swaps its extended
        posmap/semi-index in after the tail scanned cleanly.
        """
        plugin = entry.plugin
        if old_rows is None:
            return False
        try:
            fields = self._tail_fields(name, entry, old_gen, old_rows)
            if entry.format == "csv":
                if not plugin.posmap.complete:
                    return False
                tail_columns, tail_rows, tail_bytes = plugin.extend_for_append(
                    old_fp.size, new_fp.size, fields)
                tail_objects = None
            else:
                if not plugin.has_semi_index():
                    return False
                tail_objects, _, tail_bytes = plugin.extend_for_append(
                    old_fp.size, new_fp.size)
                tail_rows = len(tail_objects)
                tail_columns = dict(zip(
                    fields, plugin.project_paths(tail_objects, fields)))
        except (ViDaError, ValueError, IndexError, OSError):
            return False
        self.cache.extend_source(name, old_rows, tail_rows, tail_columns,
                                 tail_objects)
        self.indexes.extend_source(name, old_gen, new_gen, old_rows,
                                   tail_columns)
        self.table_stats.extend_source(name, old_gen, new_gen, tail_rows,
                                       tail_columns)
        self.count(delta_refreshes=1, delta_tail_bytes=tail_bytes)
        return True

    def _live_row_count(self, entry) -> int | None:
        """Exact row/object count of the live generation, if any complete
        structure knows it (the precondition for slicing/extending)."""
        plugin = entry.plugin
        if entry.format == "csv" and plugin.posmap.complete:
            return len(plugin.posmap.row_offsets)
        if entry.format == "json" and plugin.has_semi_index():
            return len(plugin.semi_index)
        return None

    def _tail_fields(self, name: str, entry, old_gen: int,
                     old_rows: int) -> list[str]:
        """Fields whose auxiliary state must see the appended tail for a
        delta refresh to be lossless: every fully-covering cached column,
        every built index field, every known stats column."""
        fields: set[str] = set()
        for e in self.cache.entries():
            if e.source == name and e.cached.layout == "columns" \
                    and e.cached.count == old_rows:
                fields.update(e.cached.fields)
        fields.update(self.indexes.fields(name, old_gen))
        fields.update(self.table_stats.known(name, old_gen)[1])
        if entry.format == "csv":
            fields &= set(entry.plugin.col_index)
        return sorted(fields)
