"""Process-wide engine context: warm state shared by many tenant sessions.

The paper's economics — pay the scan cost once, amortise positional maps,
data caches and value indexes across later queries — only compound when
that JIT-built state outlives a single session. :class:`EngineContext`
owns everything that is a property of the *data* rather than of one user:
the catalog, the shared :class:`~repro.caching.DataCache`, the
:class:`~repro.indexing.IndexRegistry`, the JIT compile cache, the
worker-process pool, and cross-tenant sharing statistics. A
:class:`~repro.core.session.ViDa` session borrows all of it and keeps only
per-tenant concerns (language bindings, cleaning policies, knobs, quotas).

Concurrency contract (ARCHITECTURE.md §Engine vs Session):

- every auxiliary-structure merge point (positional-map adoption, value-
  index adoption, cache admission) is an **atomic adopt-or-discard**
  operation: it runs under the catalog's per-source lock and compares the
  source's generation token captured at scan start against the current
  one — two sessions racing a cold scan of the same file produce exactly
  one winner and zero torn state, and a scan of a since-mutated file can
  never poison fresh structures;
- lock order is always ``catalog source lock → structure-internal lock``
  (DataCache / IndexRegistry / plugin auxiliary locks are leaves and never
  taken first), so the context cannot deadlock;
- the worker-process pool is refcounted by attached sessions: the last
  session out shuts it down, a later attach respawns it lazily.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..caching import AdmissionPolicy, DataCache
from ..errors import ViDaError
from ..indexing import IndexRegistry
from ..stats import CostCalibration, StatsRegistry
from .catalog import Catalog
from .executor.engine import JITExecutor
from .executor.static_engine import StaticExecutor


@dataclass
class EngineStats:
    """Cross-tenant sharing counters (cache internals live in CacheStats)."""

    #: queries executed across every attached session
    queries: int = 0
    #: positional maps merged into a source (one winner per cold race)
    posmap_adoptions: int = 0
    #: completed posmap partials discarded because another scan won the
    #: race (map already complete) or the file's generation moved on
    posmap_discards: int = 0
    #: value-index adoptions that grew at least one field's index
    index_adoptions: int = 0
    #: index partials dropped at the generation-token gate
    index_discards: int = 0
    #: cache admissions dropped because the source mutated mid-query
    stale_admissions_dropped: int = 0
    #: table-statistics partials merged into the shared registry
    stats_adoptions: int = 0
    #: table-statistics partials dropped at the generation-token gate
    stats_discards: int = 0
    sessions_opened: int = 0
    sessions_closed: int = 0


class QuotaCacheView:
    """Per-tenant view of the shared cache that meters *writes* only.

    Reads (lookups, peeks) pass straight through — a tenant always benefits
    from data other tenants warmed. Admissions are charged against the
    tenant's byte quota and refused once it is exhausted, so one noisy
    tenant cannot churn the shared cache. All other attributes delegate.
    """

    def __init__(self, cache: DataCache, quota_bytes: int):
        self._cache = cache
        self.quota_bytes = quota_bytes
        self.admitted_bytes = 0
        self.writes_denied = 0
        self._quota_lock = threading.Lock()

    def _allow(self) -> bool:
        with self._quota_lock:
            if self.admitted_bytes >= self.quota_bytes:
                self.writes_denied += 1
                return False
            return True

    def _charge(self, entry):
        if entry is not None:
            with self._quota_lock:
                self.admitted_bytes += entry.cached.nbytes
        return entry

    def put(self, *args, **kwargs):
        if not self._allow():
            return None
        return self._charge(self._cache.put(*args, **kwargs))

    def put_columns(self, *args, **kwargs):
        if not self._allow():
            return None
        return self._charge(self._cache.put_columns(*args, **kwargs))

    def put_cached(self, *args, **kwargs):
        if not self._allow():
            return None
        return self._charge(self._cache.put_cached(*args, **kwargs))

    def __getattr__(self, name):
        return getattr(self._cache, name)

    def __len__(self) -> int:
        return len(self._cache)


class EngineContext:
    """Shared, concurrency-safe virtualization state for N sessions."""

    def __init__(
        self,
        cache_budget_bytes: int = 256 << 20,
        admission_policy: AdmissionPolicy | None = None,
    ):
        self.catalog = Catalog()
        self.cache = DataCache(cache_budget_bytes, admission_policy)
        self.indexes = IndexRegistry()
        self.table_stats = StatsRegistry()
        self.calibration = CostCalibration()
        self.stats = EngineStats()
        self.jit = JITExecutor(self.catalog)
        self.static = StaticExecutor(self.catalog)
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._sessions = 0
        self._pool = None
        self._closed = False

    # -- session refcounting -------------------------------------------------

    def attach(self) -> None:
        """Register one session against the context (ViDa.__init__)."""
        with self._lock:
            if self._closed:
                raise ViDaError("engine context is closed")
            self._sessions += 1
            self.stats.sessions_opened += 1

    def detach(self) -> None:
        """Deregister one session; the last one out shuts the worker pool
        (a later attach respawns it lazily). Idempotent per session —
        :meth:`ViDa.close` guards against double-detach."""
        with self._lock:
            if self._sessions > 0:
                self._sessions -= 1
                self.stats.sessions_closed += 1
            if self._sessions == 0 and self._pool is not None:
                self._pool.shutdown()
                self._pool = None

    @property
    def session_count(self) -> int:
        with self._lock:
            return self._sessions

    # -- the shared worker-process pool -------------------------------------

    def worker_pool(self, parallelism: int):
        """The context's worker-process pool, spawned on first request.

        The pool is sized by the first requester; a ProcessPoolExecutor
        cannot grow, so later sessions asking for more workers share the
        existing pool (the planner still caps each scan's DoP at the
        session's own ``parallelism``).
        """
        from .executor.procpool import WorkerPool

        with self._lock:
            if self._closed:
                raise ViDaError("engine context is closed")
            if self._pool is None:
                self._pool = WorkerPool(parallelism)
            return self._pool

    def close(self) -> None:
        """Shut the context down for good: the pool dies and any session
        still attached (or attached later) gets a clear error."""
        with self._lock:
            self._closed = True
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None

    @property
    def closed(self) -> bool:
        return self._closed

    # -- cross-tenant statistics ---------------------------------------------

    def count(self, **deltas: int) -> None:
        """Atomically bump EngineStats counters (runtime merge points)."""
        with self._stats_lock:
            for name, delta in deltas.items():
                setattr(self.stats, name, getattr(self.stats, name) + delta)

    def stats_snapshot(self) -> dict:
        """One JSON-able view of engine-level sharing state (server /stats)."""
        with self._stats_lock:
            engine = {
                "queries": self.stats.queries,
                "sessions": self._sessions,
                "sessions_opened": self.stats.sessions_opened,
                "sessions_closed": self.stats.sessions_closed,
                "posmap_adoptions": self.stats.posmap_adoptions,
                "posmap_discards": self.stats.posmap_discards,
                "index_adoptions": self.stats.index_adoptions,
                "index_discards": self.stats.index_discards,
                "stats_adoptions": self.stats.stats_adoptions,
                "stats_discards": self.stats.stats_discards,
                "stale_admissions_dropped": self.stats.stale_admissions_dropped,
            }
        cs = self.cache.stats
        engine["cache"] = {
            "lookups": cs.lookups, "hits": cs.hits,
            "admissions": cs.admissions, "rejections": cs.rejections,
            "evictions": cs.evictions, "invalidations": cs.invalidations,
            "entries": len(self.cache), "used_bytes": self.cache.used_bytes,
        }
        js = self.jit.stats
        engine["compile_cache"] = {
            "compilations": js.compilations, "hits": js.cache_hits,
            "evictions": js.evictions,
        }
        engine["table_stats"] = self.table_stats.summary()
        engine["calibration"] = self.calibration.snapshot()
        return engine

    def plan_epoch(self) -> tuple:
        """Fingerprint of every input the planner reads beyond the query
        text. A prepared plan cached under one epoch is replanned the
        moment any component moves — catalog shape or file generations,
        table statistics, cost calibration — so a stale plan (built before
        stats arrived, or before a file mutated) can never be served.
        """
        with self._stats_lock:
            aux = (self.stats.posmap_adoptions, self.stats.index_adoptions,
                   self.stats.stats_adoptions)
        cs = self.cache.stats
        return (self.catalog.version, self.table_stats.version,
                self.calibration.version,
                cs.admissions, cs.evictions, cs.invalidations) + aux
