"""The ViDa catalog: registered raw sources and their descriptions.

"ViDa requires an elementary description of each data format. The equivalent
concept in a DBMS is a catalog containing the schema of each table"
(paper §3). The catalog owns the plugin instance for each source (which in
turn owns its auxiliary structures), tracks file fingerprints to detect
in-place updates, and exposes the type environment the type checker needs.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import CatalogError
from ..formats import (
    ArraySource,
    CSVOptions,
    CSVSource,
    JSONSource,
    SourceDescription,
    XLSSource,
    learn_description,
)
from ..mcc import types as T
from ..storage.io import FileFingerprint
from .generations import GenerationHistory


#: process-wide generation sequence — re-registering a name never reuses a
#: generation, so stale registry entries can never match a fresh source
_GENERATIONS = itertools.count()


def next_generation() -> int:
    """Allocate a fresh generation token (refresh paths outside the
    catalog — :meth:`EngineContext.refresh_source` — share the sequence)."""
    return next(_GENERATIONS)


@dataclass
class CatalogEntry:
    """One registered source: description + live plugin + fingerprint."""

    description: SourceDescription
    plugin: object
    fingerprint: FileFingerprint | None = None
    #: in-memory collections registered directly (no file behind them)
    data: list | None = None
    #: file-generation token shared by cache/posmap/index invalidation:
    #: bumps whenever the backing file's fingerprint changes
    generation: int = field(default_factory=lambda: next(_GENERATIONS))
    #: bounded history of superseded generations (time travel / AS OF);
    #: populated by ``EngineContext.refresh_source`` on fingerprint change
    history: GenerationHistory = field(default_factory=GenerationHistory)

    @property
    def name(self) -> str:
        return self.description.name

    @property
    def format(self) -> str:
        return self.description.format


class Catalog:
    """Name → :class:`CatalogEntry` registry with update detection.

    Safe to share across sessions/threads: registration and name lookups
    serialise on a registry lock, and each source carries a **per-source
    lock** (:meth:`source_lock`) that makes generation bumps and
    auxiliary-structure adoption mutually exclusive — the atomic
    adopt-or-discard gate every concurrent merge point goes through.
    """

    def __init__(self):
        self._entries: dict[str, CatalogEntry] = {}
        self._lock = threading.Lock()
        self._source_locks: dict[str, threading.Lock] = {}
        #: bumps on any shape change (register/deregister) or generation
        #: bump — one component of the plan-cache epoch
        self.version = 0

    def source_lock(self, name: str) -> threading.Lock:
        """The lock serialising ``name``'s freshness checks, generation
        bumps, and posmap/index/cache adoptions. Survives re-registration
        (keyed by name, not entry), so stale adopters still serialise."""
        with self._lock:
            lock = self._source_locks.get(name)
            if lock is None:
                lock = self._source_locks[name] = threading.Lock()
            return lock

    # -- registration ---------------------------------------------------------

    def _check_free(self, name: str) -> None:
        if name in self._entries:
            raise CatalogError(f"source {name!r} is already registered")

    def _install(self, name: str, entry: CatalogEntry) -> CatalogEntry:
        """Atomically publish a built entry (plugin I/O stays outside the
        lock; the registration races of two tenants resolve to one error)."""
        with self._lock:
            if name in self._entries:
                raise CatalogError(f"source {name!r} is already registered")
            self._entries[name] = entry
            self.version += 1
            return entry

    def register_csv(
        self,
        name: str,
        path: str | os.PathLike,
        delimiter: str = ",",
        header: bool = True,
        columns: Sequence[str] | None = None,
        types: Sequence[str] | None = None,
    ) -> CatalogEntry:
        """Register a CSV file as a bag-of-records source."""
        self._check_free(name)
        plugin = CSVSource(
            path, CSVOptions(delimiter=delimiter, header=header),
            columns=columns, types=types,
        )
        desc = SourceDescription(
            name=name, format="csv", schema=plugin.schema(), unit="row",
            access_paths=("sequential", "positional"), path=os.fspath(path),
            options={"delimiter": delimiter, "header": header},
        )
        entry = CatalogEntry(desc, plugin, FileFingerprint.of(path))
        return self._install(name, entry)

    def register_json(self, name: str, path: str | os.PathLike) -> CatalogEntry:
        """Register a JSON file (NDJSON or top-level array) as a source."""
        self._check_free(name)
        plugin = JSONSource(path)
        desc = SourceDescription(
            name=name, format="json", schema=plugin.schema(), unit="object",
            access_paths=("sequential", "positional"), path=os.fspath(path),
        )
        entry = CatalogEntry(desc, plugin, FileFingerprint.of(path))
        return self._install(name, entry)

    def register_array(
        self, name: str, path: str | os.PathLike, dim_names: Sequence[str] | None = None
    ) -> CatalogEntry:
        """Register a VARR binary array file as a dimensioned source."""
        self._check_free(name)
        plugin = ArraySource(path, dim_names)
        desc = SourceDescription(
            name=name, format="array", schema=plugin.schema(), unit="element",
            access_paths=("sequential", "positional"), path=os.fspath(path),
        )
        entry = CatalogEntry(desc, plugin, FileFingerprint.of(path))
        return self._install(name, entry)

    def register_xls(
        self, name: str, path: str | os.PathLike, sheet: str | None = None
    ) -> CatalogEntry:
        """Register one sheet of a VXLS workbook as a source."""
        self._check_free(name)
        plugin = XLSSource(path)
        sheet_name = sheet or plugin.sheet_names()[0]
        desc = SourceDescription(
            name=name, format="xls", schema=plugin.schema(sheet_name), unit="row",
            access_paths=("sequential",), path=os.fspath(path),
            options={"sheet": sheet_name},
        )
        entry = CatalogEntry(desc, plugin, FileFingerprint.of(path))
        return self._install(name, entry)

    def register_memory(
        self, name: str, data: Sequence, elem_type: T.Type | None = None
    ) -> CatalogEntry:
        """Register an in-memory collection (tests, intermediate results)."""
        self._check_free(name)
        data = list(data)
        if elem_type is None:
            elem_type = T.ANY
            for item in data[:50]:
                inferred = T.type_of_python_value(item)
                unified = T.unify(elem_type, inferred)
                elem_type = unified if unified is not None else T.ANY
        desc = SourceDescription(
            name=name, format="memory", schema=T.bag_of(elem_type), unit="element",
            access_paths=("sequential",),
        )
        entry = CatalogEntry(desc, None, None, data=data)
        return self._install(name, entry)

    def register_dbms(self, name: str, store, table: str) -> CatalogEntry:
        """Register a warehouse store's table/collection as a source.

        ViDa's access paths can then use the store's indexes (paper §2.1).
        """
        self._check_free(name)
        from ..formats.dbmsfmt import DBMSSource

        plugin = DBMSSource(store, table)
        desc = SourceDescription(
            name=name, format="dbms", schema=plugin.schema(), unit="tuple",
            access_paths=("sequential", "index") if plugin.indexed_fields()
            else ("sequential",),
            options={"table": table},
        )
        entry = CatalogEntry(desc, plugin, None)
        return self._install(name, entry)

    def register_auto(self, name: str, path: str | os.PathLike) -> CatalogEntry:
        """Register a file of unknown format via schema learning (§3.1)."""
        desc = learn_description(path, name)
        if desc.format == "csv":
            return self.register_csv(name, path, delimiter=desc.options["delimiter"])
        if desc.format == "json":
            return self.register_json(name, path)
        if desc.format == "array":
            return self.register_array(name, path)
        if desc.format == "xls":
            return self.register_xls(name, path, desc.options.get("sheet"))
        raise CatalogError(f"cannot auto-register format {desc.format!r}")

    def deregister(self, name: str) -> None:
        with self._lock:
            if name not in self._entries:
                raise CatalogError(f"unknown source {name!r}")
            del self._entries[name]
            self.version += 1

    # -- lookup ---------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def names(self) -> frozenset[str]:
        return frozenset(self._entries)

    def get(self, name: str) -> CatalogEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise CatalogError(
                f"unknown source {name!r}; registered: {', '.join(sorted(self._entries))}"
            ) from None

    def type_env(self) -> dict[str, T.Type]:
        """Variable environment for the type checker (source name → schema)."""
        return {name: e.description.schema for name, e in self._entries.items()}

    # -- update detection ---------------------------------------------------------

    def bump_version(self) -> None:
        """Register a visible state change (generation bump by a refresh
        path outside the catalog) so plan epochs move."""
        with self._lock:
            self.version += 1

    def check_freshness(self, name: str) -> bool:
        """True if the backing file is unchanged; False after dropping stale
        auxiliary structures (paper §2.1: in-place updates drop auxiliaries).

        The re-fingerprint and generation bump run atomically under the
        source lock: of N threads observing the same mutation, exactly one
        bumps the generation (the rest re-check under the lock and see the
        refreshed fingerprint) — a double bump would strand in-flight
        index/posmap rebuilds keyed on the intermediate token.
        """
        entry = self.get(name)
        if entry.fingerprint is None or entry.description.path is None:
            return True
        if entry.fingerprint.matches(entry.description.path):
            return True
        with self.source_lock(name):
            # re-check: another thread may have refreshed while we waited
            if entry.fingerprint.matches(entry.description.path):
                return True
            if hasattr(entry.plugin, "invalidate_auxiliary"):
                entry.plugin.invalidate_auxiliary()
            entry.fingerprint = FileFingerprint.of(entry.description.path)
            entry.generation = next(_GENERATIONS)
            with self._lock:
                self.version += 1
        return False
