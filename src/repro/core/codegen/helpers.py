"""Runtime helpers referenced by generated query code.

Generated functions bind these as local variables in their prelude (local
loads are the cheapest name resolution in CPython). Each helper exists
because inlining its logic at every use-site would bloat the generated
source without measurable gain: they are small, allocation-free, and mostly
guard against ``None`` (SQL-style null semantics for ordering comparisons).
"""

from __future__ import annotations

import re
from functools import lru_cache


def get_path(obj, path: tuple):
    """Navigate a tuple path through dicts/lists; None on any miss."""
    current = obj
    for step in path:
        if isinstance(current, dict):
            current = current.get(step)
        elif isinstance(current, (list, tuple)):
            try:
                current = current[int(step)]
            except (ValueError, IndexError, TypeError):
                return None
        else:
            return None
        if current is None:
            return None
    return current


def lt(a, b):
    return a is not None and b is not None and a < b


def le(a, b):
    return a is not None and b is not None and a <= b


def gt(a, b):
    return a is not None and b is not None and a > b


def ge(a, b):
    return a is not None and b is not None and a >= b


@lru_cache(maxsize=256)
def _like_regex(pattern: str):
    # re.escape leaves % and _ untouched, so wildcard substitution is safe
    # after escaping everything else.
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.compile(f"^{regex}$", re.DOTALL)


def like(value, pattern) -> bool:
    """SQL LIKE with % and _ wildcards; null-safe (null never matches)."""
    if value is None or pattern is None:
        return False
    return _like_regex(pattern).match(str(value)) is not None


def hashable(v):
    """Canonical hashable representative (set-monoid deduplication)."""
    if isinstance(v, dict):
        return tuple((k, hashable(x)) for k, x in v.items())
    if isinstance(v, (list, set, tuple)):
        return tuple(hashable(x) for x in v)
    return v


def nz_lower(a):
    return a.lower() if isinstance(a, str) else None


def nz_upper(a):
    return a.upper() if isinstance(a, str) else None


def nz_len(a):
    return len(a) if a is not None else None


def nz_abs(a):
    return abs(a) if a is not None else None


def substr(s, start, length=None):
    if s is None:
        return None
    start = int(start)
    if length is None:
        return s[start:]
    return s[start:start + int(length)]


def contains(haystack, needle) -> bool:
    if haystack is None or needle is None:
        return False
    return needle in haystack


def startswith(s, prefix) -> bool:
    return isinstance(s, str) and prefix is not None and s.startswith(prefix)


def endswith(s, suffix) -> bool:
    return isinstance(s, str) and suffix is not None and s.endswith(suffix)


#: name → helper object; the codegen prelude binds these as locals.
HELPERS = {
    "_gp": get_path,
    "_lt": lt,
    "_le": le,
    "_gt": gt,
    "_ge": ge,
    "_like": like,
    "_hashable": hashable,
    "_lower": nz_lower,
    "_upper": nz_upper,
    "_len": nz_len,
    "_abs": nz_abs,
    "_substr": substr,
    "_contains": contains,
    "_startswith": startswith,
    "_endswith": endswith,
}
