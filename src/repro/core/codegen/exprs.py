"""Calculus-expression → Python-source compilation.

Used by the JIT compiler for predicates, join keys, and reduce heads. The
compiler resolves variable references against the plan's *bindings*:

- ``ScalarBinding`` — the scan extracted specific dotted paths into Python
  locals ("data bindings placed in CPU registers", paper §4.1 — the closest
  Python analogue is a local variable);
- ``ObjectBinding`` — the whole element is bound to one local (parsed JSON
  object, array-element record, memory row); projections compile to ``_gp``
  path navigation.

Nested comprehensions compile to *correlated subqueries*: a helper function
emitted alongside the main query, taking the runtime and the free outer
locals as parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import CodegenError
from ...mcc import ast as A

#: operators that compile 1:1 onto Python
_DIRECT_BINOPS = {"+": "+", "-": "-", "*": "*", "/": "/", "%": "%",
                  "and": "and", "or": "or"}
#: null-guarded ordering comparisons (helpers from helpers.py)
_GUARDED_CMP = {"<": "_lt", "<=": "_le", ">": "_gt", ">=": "_ge"}

_BUILTIN_COMPILE = {
    "lower": "_lower", "upper": "_upper", "len": "_len", "abs": "_abs",
    "substr": "_substr", "contains": "_contains", "startswith": "_startswith",
    "endswith": "_endswith",
}
_PLAIN_FUNCS = {"round": "round", "float": "float", "int": "int", "str": "str"}
_MATH_FUNCS = {"sqrt": "_m_sqrt", "exp": "_m_exp", "log": "_m_log"}


@dataclass
class ScalarBinding:
    """Var bound as extracted locals: dotted path → local name."""

    locals_by_path: dict[str, str]
    whole_local: str | None = None  # set when the full element is also bound


@dataclass
class ObjectBinding:
    """Var bound as one local holding the whole element."""

    local: str


Binding = ScalarBinding | ObjectBinding


@dataclass
class ExprContext:
    """Compilation context: variable bindings + subquery collection."""

    bindings: dict[str, Binding] = field(default_factory=dict)
    subqueries: list[str] = field(default_factory=list)
    counter: int = 0
    source_names: frozenset = frozenset()

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"_{prefix}{self.counter}"


def compile_expr(expr: A.Expr, ctx: ExprContext) -> str:
    """Compile ``expr`` to a Python expression string."""
    if isinstance(expr, A.Null):
        return "None"
    if isinstance(expr, A.Const):
        return repr(expr.value)
    if isinstance(expr, A.Var):
        return _compile_var(expr.name, ctx)
    if isinstance(expr, A.Proj):
        return _compile_proj(expr, ctx)
    if isinstance(expr, A.RecordCons):
        inner = ", ".join(f"{name!r}: {compile_expr(e, ctx)}" for name, e in expr.fields)
        return "{" + inner + "}"
    if isinstance(expr, A.If):
        return (
            f"({compile_expr(expr.then, ctx)} if {compile_expr(expr.cond, ctx)}"
            f" else {compile_expr(expr.els, ctx)})"
        )
    if isinstance(expr, A.BinOp):
        return _compile_binop(expr, ctx)
    if isinstance(expr, A.UnOp):
        inner = compile_expr(expr.expr, ctx)
        return f"(not {inner})" if expr.op == "not" else f"(-{inner})"
    if isinstance(expr, A.Call):
        return _compile_call(expr, ctx)
    if isinstance(expr, A.ListLit):
        return "[" + ", ".join(compile_expr(e, ctx) for e in expr.items) + "]"
    if isinstance(expr, A.Index):
        base = compile_expr(expr.expr, ctx)
        for ix in expr.indices:
            base = f"{base}[{compile_expr(ix, ctx)}]"
        return base
    if isinstance(expr, A.Comprehension):
        return _compile_subquery(expr, ctx)
    if isinstance(expr, A.Lambda) or isinstance(expr, A.Apply):
        raise CodegenError(
            f"{type(expr).__name__} should have been eliminated by normalization"
        )
    if isinstance(expr, (A.Zero, A.Singleton, A.Merge)):
        raise CodegenError(
            f"monoid-algebra node {type(expr).__name__} reached codegen; "
            "evaluate via the interpreter instead"
        )
    raise CodegenError(f"cannot compile {type(expr).__name__}")


def _compile_var(name: str, ctx: ExprContext) -> str:
    binding = ctx.bindings.get(name)
    if binding is None:
        raise CodegenError(f"unbound variable {name!r} during codegen")
    if isinstance(binding, ObjectBinding):
        return binding.local
    if binding.whole_local is not None:
        return binding.whole_local
    # Reconstruct a record from the extracted scalar locals (rare path).
    inner = ", ".join(
        f"{path!r}: {local}" for path, local in binding.locals_by_path.items()
    )
    return "{" + inner + "}"


def _proj_path(expr: A.Proj) -> tuple[A.Expr, tuple[str, ...]]:
    """Longest Proj chain → (root expression, path tuple)."""
    path: list[str] = []
    base: A.Expr = expr
    while isinstance(base, A.Proj):
        path.append(base.attr)
        base = base.expr
    return base, tuple(reversed(path))


def _compile_proj(expr: A.Proj, ctx: ExprContext) -> str:
    base, path = _proj_path(expr)
    if isinstance(base, A.Var) and base.name in ctx.bindings:
        binding = ctx.bindings[base.name]
        if isinstance(binding, ScalarBinding):
            dotted = ".".join(path)
            if dotted in binding.locals_by_path:
                return binding.locals_by_path[dotted]
            # longest extracted prefix + residual navigation
            for cut in range(len(path) - 1, 0, -1):
                prefix = ".".join(path[:cut])
                if prefix in binding.locals_by_path:
                    rest = path[cut:]
                    return f"_gp({binding.locals_by_path[prefix]}, {rest!r})"
            if binding.whole_local is not None:
                return f"_gp({binding.whole_local}, {path!r})"
            raise CodegenError(
                f"scan for {base.name!r} did not extract path {dotted!r} "
                f"(has {sorted(binding.locals_by_path)})"
            )
        return f"_gp({binding.local}, {path!r})"
    # projection off an arbitrary expression (record literal, subquery, ...)
    inner = compile_expr(base, ctx)
    return f"_gp({inner}, {path!r})"


def _is_simple_operand(expr: A.Expr, compiled: str) -> bool:
    """Cheap + pure: safe to mention more than once in generated code."""
    if isinstance(expr, A.Const):
        return True
    return compiled.isidentifier()


def _compile_binop(expr: A.BinOp, ctx: ExprContext) -> str:
    left = compile_expr(expr.left, ctx)
    right = compile_expr(expr.right, ctx)
    op = expr.op
    if op == "=":
        return f"({left} == {right})"
    if op == "!=":
        return f"({left} != {right})"
    if op in _GUARDED_CMP:
        # Null-guarded ordering: when both operands are simple (a local or a
        # literal) the guard inlines — no helper call per row in scan loops.
        if isinstance(expr.left, A.Const) and expr.left.value is None:
            return "False"
        if isinstance(expr.right, A.Const) and expr.right.value is None:
            return "False"
        if _is_simple_operand(expr.left, left) and \
                _is_simple_operand(expr.right, right):
            guards = []
            if not isinstance(expr.left, A.Const):
                guards.append(f"{left} is not None")
            if not isinstance(expr.right, A.Const):
                guards.append(f"{right} is not None")
            guards.append(f"{left} {op} {right}")
            return "(" + " and ".join(guards) + ")"
        return f"{_GUARDED_CMP[op]}({left}, {right})"
    if op in _DIRECT_BINOPS:
        return f"({left} {_DIRECT_BINOPS[op]} {right})"
    if op == "in":
        return f"({left} in {right})"
    if op == "like":
        return f"_like({left}, {right})"
    raise CodegenError(f"cannot compile operator {op!r}")


def _compile_call(expr: A.Call, ctx: ExprContext) -> str:
    args = ", ".join(compile_expr(a, ctx) for a in expr.args)
    if expr.name in _BUILTIN_COMPILE:
        return f"{_BUILTIN_COMPILE[expr.name]}({args})"
    if expr.name in _PLAIN_FUNCS:
        return f"{_PLAIN_FUNCS[expr.name]}({args})"
    if expr.name in _MATH_FUNCS:
        return f"{_MATH_FUNCS[expr.name]}({args})"
    raise CodegenError(f"unknown builtin {expr.name!r}")


# ---------------------------------------------------------------------------
# Correlated subqueries (nested comprehensions in heads/predicates)
# ---------------------------------------------------------------------------


def _compile_subquery(comp: A.Comprehension, ctx: ExprContext) -> str:
    """Emit a helper function for a nested comprehension; return its call.

    The helper interprets generators over catalog sources via the runtime's
    generic row iterator and over path expressions via local loops — the
    "naive correlated subplan" evaluation strategy. Outer locals used by the
    subquery are passed as parameters.
    """
    free = A.free_vars(comp)
    outer_vars = sorted(v for v in free if v in ctx.bindings)
    params: list[str] = []
    inner_bindings: dict[str, Binding] = {}
    for v in outer_vars:
        binding = ctx.bindings[v]
        if isinstance(binding, ObjectBinding):
            params.append(binding.local)
            inner_bindings[v] = binding
        else:
            if binding.whole_local is not None:
                params.append(binding.whole_local)
            params.extend(binding.locals_by_path.values())
            inner_bindings[v] = binding

    name = f"_subq{len(ctx.subqueries)}"
    sub = _SubqueryEmitter(ctx, inner_bindings)
    body = sub.emit(comp)
    params_sig = ", ".join(["_rt"] + params)
    fn_lines = [f"def {name}({params_sig}):"] + ["    " + ln for ln in body]
    ctx.subqueries.append("\n".join(fn_lines))
    call_args = ", ".join(["_rt"] + params)
    return f"{name}({call_args})"


class _SubqueryEmitter:
    """Emits straightforward loop code for a nested comprehension."""

    def __init__(self, ctx: ExprContext, bindings: dict[str, Binding]):
        self.ctx = ctx
        self.bindings = bindings

    def emit(self, comp: A.Comprehension) -> list[str]:
        lines: list[str] = []
        mono = comp.monoid
        lines.append(f"_m = _rt.monoid({mono.name!r}, {mono.params!r})")
        lines.append("_acc = _m.zero()")
        inner_ctx = ExprContext(
            bindings=dict(self.bindings),
            subqueries=self.ctx.subqueries,
            counter=self.ctx.counter + 1000,
            source_names=self.ctx.source_names,
        )
        depth = 0
        body: list[str] = []

        def pad() -> str:
            return "    " * depth

        for q in comp.qualifiers:
            if isinstance(q, A.Generator):
                local = f"_s_{q.var}"
                if isinstance(q.source, A.Var) and q.source.name in self.ctx.source_names:
                    body.append(
                        f"{pad()}for {local} in _rt.iter_source({q.source.name!r}):"
                    )
                else:
                    src = compile_expr(q.source, inner_ctx)
                    body.append(f"{pad()}for {local} in ({src} or ()):")
                inner_ctx.bindings[q.var] = ObjectBinding(local)
                depth += 1
            elif isinstance(q, A.Filter):
                body.append(f"{pad()}if {compile_expr(q.pred, inner_ctx)}:")
                depth += 1
            elif isinstance(q, A.Bind):
                local = f"_s_{q.var}"
                body.append(f"{pad()}{local} = {compile_expr(q.expr, inner_ctx)}")
                inner_ctx.bindings[q.var] = ObjectBinding(local)
        head = compile_expr(comp.head, inner_ctx)
        body.append(f"{pad()}_acc = _m.merge(_acc, _m.lift({head}))")
        lines.extend(body)
        lines.append("return _m.finalize(_acc)")
        self.ctx.counter = inner_ctx.counter
        return lines
