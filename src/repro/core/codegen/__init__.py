"""JIT code generation: calculus/plan → specialised Python source."""

from .compiler import CompiledQuery, QueryCompiler
from .exprs import ExprContext, ObjectBinding, ScalarBinding, compile_expr
from .helpers import HELPERS

__all__ = ["CompiledQuery", "ExprContext", "HELPERS", "ObjectBinding",
           "QueryCompiler", "ScalarBinding", "compile_expr"]
