"""JIT query compiler: physical plan → specialised Python source → function.

This is the Python analogue of ViDa's LLVM code generation (paper §4): one
fused, push-style (produce/consume, a la HyPer) function is generated *per
query*, with

- scan loops specialised to each source's format and chosen access path,
- *vectorized* scans: raw sources stream in as columnar chunks (tokenized
  and converted batch-at-a-time by the runtime's column kernels), and the
  generated loop binds locals straight off the column lists with C-level
  ``zip`` iteration — converter and null-token dispatch is hoisted out of
  the inner loop entirely,
- predicates, join probes and accumulator updates inlined in the loop body —
  no operator boundaries, no per-tuple interpretation,
- cache population piggybacked on raw scans as whole-column ``extend``s
  (one call per chunk, not one append per row), and
- "general-purpose checks stripped": populate code, whole-element binding
  and predicate tests are emitted only when the planner asked for them.

The generated module source is kept on the result object for inspection
(``QueryResult.code``) — the moral equivalent of dumping the LLVM IR.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass

from ...errors import CodegenError
from ...mcc import ast as A
from ..physical import (
    PhysExprScan,
    PhysFilter,
    PhysHashJoin,
    PhysNest,
    PhysNLJoin,
    PhysNode,
    PhysReduce,
    PhysScan,
    PhysUnnest,
    parallel_driver,
)
from .exprs import Binding, ExprContext, ObjectBinding, ScalarBinding, compile_expr
from .helpers import HELPERS


@dataclass
class CompiledQuery:
    """A compiled query: callable + its generated source for inspection."""

    source: str
    fn: object
    plan: PhysReduce

    def __call__(self, runtime):
        return self.fn(runtime)


class CodeWriter:
    def __init__(self, indent: int = 1):
        self.lines: list[str] = []
        self.indent = indent

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    @contextmanager
    def block(self, header: str):
        self.emit(header)
        self.indent += 1
        try:
            yield
        finally:
            self.indent -= 1

    def text(self) -> str:
        return "\n".join(self.lines)


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in name)


# ---------------------------------------------------------------------------
# Morsel-parallel regions
# ---------------------------------------------------------------------------
#
# When the planner marks a scan ``parallel=N`` the generated code wraps that
# scan's chunk loop in a *morsel worker*: a nested function whose first
# statements re-initialise every accumulator it writes (the assignments make
# them worker-locals — the worker is reentrant, sharing only read-only state
# like hash tables and helper bindings through its closure). The coordinator
# asks the runtime for splits, fans the worker out over the scheduler, and
# merges the returned partials *in morsel order*, so parallel results are
# bit-identical to the serial loop.


class _FoldRegion:
    """Root-reduce parallel region: workers fold partial accumulators; the
    coordinator merges them through the output monoid's merge."""

    def __init__(self, monoid_name: str, generic: bool):
        self.name = monoid_name if not generic else None

    def result_vars(self) -> list[str]:
        if self.name == "avg":
            return ["_sum", "_cnt"]
        if self.name in ("bag", "list", "set"):
            return ["_out"]
        return ["_acc"]

    def emit_init(self, w: CodeWriter) -> None:
        _emit_fold_init(w, self.name)

    def emit_outer_init(self, w: CodeWriter) -> None:
        _emit_fold_init(w, self.name)

    def emit_merge(self, w: CodeWriter, part: str) -> None:
        name = self.name
        if name in ("sum", "count"):
            w.emit(f"_acc += {part}[0]")
        elif name == "prod":
            w.emit(f"_acc *= {part}[0]")
        elif name in ("max", "min"):
            op = ">" if name == "max" else "<"
            w.emit(f"_h = {part}[0]")
            with w.block(f"if _h is not None and (_acc is None or _h {op} _acc):"):
                w.emit("_acc = _h")
        elif name == "avg":
            w.emit(f"_sum += {part}[0]")
            w.emit(f"_cnt += {part}[1]")
        elif name == "any":
            w.emit(f"_acc = _acc or {part}[0]")
        elif name == "all":
            w.emit(f"_acc = _acc and {part}[0]")
        elif name in ("bag", "list"):
            w.emit(f"_out.extend({part}[0])")
        elif name == "set":
            # re-dedup across ordered partials: first occurrence wins, same
            # as the serial scan order
            with w.block(f"for _h in {part}[0]:"):
                w.emit("_k = _hashable(_h)")
                with w.block("if _k not in _seen:"):
                    w.emit("_seen.add(_k)")
                    w.emit("_out.append(_h)")
        else:
            w.emit(f"_acc = _M.merge(_acc, {part}[0])")


class _BuildRegion:
    """Hash-join build parallel region: workers build partial tables over
    their morsels; the coordinator merges them per key, extending row lists
    in morsel order (identical to serial insertion order)."""

    def __init__(self, ht: str):
        self.ht = ht

    def result_vars(self) -> list[str]:
        return [self.ht]

    def emit_init(self, w: CodeWriter) -> None:
        w.emit(f"{self.ht} = {{}}")

    def emit_outer_init(self, w: CodeWriter) -> None:
        pass  # the outer table was initialised before the worker definition

    def emit_merge(self, w: CodeWriter, part: str) -> None:
        with w.block(f"for _k, _rows in {part}[0].items():"):
            w.emit(f"_b = {self.ht}.get(_k)")
            with w.block("if _b is None:"):
                w.emit(f"{self.ht}[_k] = _rows")
            with w.block("else:"):
                w.emit("_b.extend(_rows)")


def _emit_fold_init(w: CodeWriter, name: str | None) -> None:
    """Accumulator initialisation for the root fold (shared by the serial
    path, the morsel workers, and the coordinator's merge prologue)."""
    if name in ("sum", "count"):
        w.emit("_acc = 0")
    elif name == "prod":
        w.emit("_acc = 1")
    elif name in ("max", "min"):
        w.emit("_acc = None")
    elif name == "avg":
        w.emit("_sum = 0.0")
        w.emit("_cnt = 0")
    elif name == "any":
        w.emit("_acc = False")
    elif name == "all":
        w.emit("_acc = True")
    elif name in ("bag", "list"):
        w.emit("_out = []")
    elif name == "set":
        w.emit("_out = []")
        w.emit("_seen = set()")
    else:  # generic monoid fold; ``_M`` is bound by the reduce emitter
        w.emit("_acc = _M.zero()")


class QueryCompiler:
    """Compiles one physical plan into a Python function ``fn(runtime)``."""

    def __init__(self, catalog):
        self.catalog = catalog

    def compile(self, plan: PhysReduce) -> CompiledQuery:
        self.ctx = ExprContext(source_names=self.catalog.names())
        self.w = CodeWriter(indent=1)
        self._counter = 0
        self._finalizers: list[str] = []  # emitted at function end (indent 1)
        #: (monoid name, head expr) when the root fold fuses into chunk kernels
        self._fold: tuple | None = None
        #: id(PhysScan) → parallel region for morsel-sharded scans
        self._par_regions: dict[int, object] = {}

        self._emit_reduce(plan)

        prelude = CodeWriter(indent=1)
        for helper_name in sorted(HELPERS):
            prelude.emit(f"{helper_name} = _H[{helper_name!r}]")

        parts: list[str] = []
        parts.extend(self.ctx.subqueries)
        parts.append("def _vida_query(_rt):")
        parts.append(prelude.text())
        parts.append(self.w.text())
        source = "\n".join(parts)

        globals_ns: dict = {
            "_H": HELPERS,
            "_m_sqrt": math.sqrt,
            "_m_exp": math.exp,
            "_m_log": math.log,
        }
        # Subquery functions resolve helpers via module globals; the main
        # function shadows them with locals in its prelude for speed.
        globals_ns.update(HELPERS)
        try:
            code = compile(source, "<vida-jit>", "exec")
        except SyntaxError as exc:  # pragma: no cover - codegen bug guard
            raise CodegenError(f"generated code failed to compile: {exc}\n{source}") from exc
        exec(code, globals_ns)
        return CompiledQuery(source, globals_ns["_vida_query"], plan)

    # -- id helpers -----------------------------------------------------------

    def _next(self, prefix: str) -> str:
        self._counter += 1
        return f"_{prefix}{self._counter}"

    # -- reduce (root) -----------------------------------------------------------

    def _emit_reduce(self, node: PhysReduce) -> None:
        w = self.w
        mono = node.monoid
        name = mono.name

        specialized = name in (
            "sum", "count", "prod", "max", "min", "avg", "any", "all",
            "bag", "list", "set",
        )
        fold_name = name if specialized else None
        if not specialized:
            # generic monoid object: bound once at the coordinator level so
            # morsel workers share it read-only through their closure
            w.emit(f"_M = _rt.monoid({mono.name!r}, {mono.params!r})")

        driver = parallel_driver(node)
        if driver is not None and driver.parallel > 1:
            # accumulator init moves into the morsel worker; the merge
            # prologue re-initialises the coordinator's copy
            self._par_regions[id(driver)] = _FoldRegion(name, not specialized)
        else:
            _emit_fold_init(w, fold_name)

        def consume() -> None:
            head = compile_expr(node.head, self.ctx)
            if name == "sum":
                w.emit(f"_h = {head}")
                with w.block("if _h is not None:"):
                    w.emit("_acc += _h")
            elif name == "count":
                w.emit("_acc += 1")
            elif name == "prod":
                w.emit(f"_h = {head}")
                with w.block("if _h is not None:"):
                    w.emit("_acc *= _h")
            elif name == "max":
                w.emit(f"_h = {head}")
                with w.block("if _h is not None and (_acc is None or _h > _acc):"):
                    w.emit("_acc = _h")
            elif name == "min":
                w.emit(f"_h = {head}")
                with w.block("if _h is not None and (_acc is None or _h < _acc):"):
                    w.emit("_acc = _h")
            elif name == "avg":
                w.emit(f"_h = {head}")
                with w.block("if _h is not None:"):
                    w.emit("_sum += _h")
                    w.emit("_cnt += 1")
            elif name == "any":
                w.emit(f"_acc = _acc or bool({head})")
            elif name == "all":
                w.emit(f"_acc = _acc and bool({head})")
            elif name in ("bag", "list"):
                w.emit(f"_out.append({head})")
            elif name == "set":
                w.emit(f"_h = {head}")
                w.emit("_k = _hashable(_h)")
                with w.block("if _k not in _seen:"):
                    w.emit("_seen.add(_k)")
                    w.emit("_out.append(_h)")
            else:
                w.emit(f"_acc = _M.merge(_acc, _M.lift({head}))")

        # When the root fold consumes a chunked scan directly, the whole
        # reduce vectorizes: one comprehension kernel per chunk instead of a
        # Python-level loop iteration per row (paper §4's "no per-tuple
        # interpretation", batch edition).
        if isinstance(node.child, PhysScan) and name in (
            "count", "sum", "avg", "bag", "list", "max", "min"
        ):
            self._fold = (name, node.head)
        self._emit_node(node.child, consume)
        self._fold = None

        for line in self._finalizers:
            w.emit(line)

        if name in ("bag", "list", "set"):
            w.emit("return _out")
        elif name == "avg":
            w.emit("return (_sum / _cnt) if _cnt else None")
        elif name in ("sum", "count", "prod", "max", "min", "any", "all"):
            w.emit("return _acc")
        else:
            w.emit("return _M.finalize(_acc)")

    # -- plan dispatch -----------------------------------------------------------

    def _emit_node(self, node: PhysNode, consume) -> None:
        if isinstance(node, PhysScan):
            self._emit_scan(node, consume)
        elif isinstance(node, PhysExprScan):
            self._emit_expr_scan(node, consume)
        elif isinstance(node, PhysFilter):
            self._emit_filter(node, consume)
        elif isinstance(node, PhysHashJoin):
            self._emit_hash_join(node, consume)
        elif isinstance(node, PhysNLJoin):
            self._emit_nl_join(node, consume)
        elif isinstance(node, PhysUnnest):
            self._emit_unnest(node, consume)
        elif isinstance(node, PhysNest):
            self._emit_nest(node, consume)
        else:
            raise CodegenError(f"cannot emit {type(node).__name__}")

    def _emit_pred_then(self, pred: A.Expr | None, consume) -> None:
        if pred is None or (isinstance(pred, A.Const) and pred.value is True):
            consume()
            return
        with self.w.block(f"if {compile_expr(pred, self.ctx)}:"):
            consume()

    # -- scans -----------------------------------------------------------

    def _emit_scan(self, node: PhysScan, consume) -> None:
        entry = self.catalog.get(node.source)
        fmt = entry.format
        if node.access == "cache":
            self._emit_cache_scan(node, consume)
        elif fmt == "memory" or node.access == "memory":
            self._emit_memory_scan(node, consume)
        elif fmt == "csv":
            self._emit_csv_scan(node, entry, consume)
        elif fmt == "json":
            self._emit_json_scan(node, consume)
        elif fmt == "array":
            self._emit_array_scan(node, entry, consume)
        elif fmt == "xls":
            self._emit_xls_scan(node, entry, consume)
        elif fmt == "dbms":
            self._emit_dbms_scan(node, consume)
        else:
            raise CodegenError(f"no scan emitter for format {fmt!r}")

    def _emit_dbms_scan(self, node: PhysScan, consume) -> None:
        """Scan a DBMS source over the chunk protocol; index lookups (pushed
        down by the planner) stay row-at-a-time."""
        from ...warehouse.docstore import DocStore

        entry = self.catalog.get(node.source)
        var = _sanitize(node.var)
        # Document stores return nested records; keep them whole so path
        # navigation works. Tabular stores take the projection pushdown.
        whole = node.bind_whole or isinstance(entry.plugin.store, DocStore)
        fields: tuple = () if whole else node.fields
        if node.index_eq is not None:
            local = f"_{var}_obj"
            self.ctx.bindings[node.var] = ObjectBinding(local)
            call = (f"_rt.dbms_rows({node.source!r}, {fields!r}, "
                    f"{node.index_eq!r})")
            with self.w.block(f"for {local} in {call}:"):
                self._emit_pred_then(node.pred, consume)
            return
        call = (f"_rt.dbms_chunks({node.source!r}, {fields!r}, "
                f"batch_size={node.batch_size}, whole={whole!r})")
        ch = self._next("ch")
        if whole or not fields:
            local = f"_{var}_obj"
            self.ctx.bindings[node.var] = ObjectBinding(local)
            with self.w.block(f"for {ch} in {call}:"):
                self._emit_chunk_loop(ch, [], local, node.pred, consume)
            return
        locals_by_path = {f: f"_{var}_{_sanitize(f)}" for f in fields}
        self.ctx.bindings[node.var] = ScalarBinding(locals_by_path)
        names = [locals_by_path[f] for f in fields]
        with self.w.block(f"for {ch} in {call}:"):
            self._emit_chunk_loop(ch, names, None, node.pred, consume)

    def _emit_memory_scan(self, node: PhysScan, consume) -> None:
        local = f"_{_sanitize(node.var)}_obj"
        self.ctx.bindings[node.var] = ObjectBinding(local)
        with self.w.block(f"for {local} in _rt.memory({node.source!r}):"):
            self._emit_pred_then(node.pred, consume)

    def _emit_chunk_loop(self, ch: str, names: list[str], whole_local: str | None,
                         pred, consume, cols_expr: str | None = None) -> None:
        """Emit the per-chunk row loop binding extracted locals / elements.

        ``names`` are the locals aligned with the chunk's leading columns;
        ``whole_local`` binds the whole element from ``chunk.whole``. The
        iteration itself is a C-level ``zip`` over column lists — the
        vectorized replacement for one runtime call per row.
        """
        cols_expr = cols_expr or f"{ch}.columns"
        if self._fold is not None:
            self._emit_fold_kernel(ch, names, whole_local, pred, cols_expr)
            return
        if names and whole_local:
            if len(names) == 1:
                header = (f"for {names[0]}, {whole_local} in "
                          f"zip({ch}.columns[0], {ch}.whole):")
            else:
                header = (f"for ({', '.join(names)}), {whole_local} in "
                          f"zip(zip(*{cols_expr}), {ch}.whole):")
        elif names:
            if len(names) == 1:
                header = f"for {names[0]} in {ch}.columns[0]:"
            else:
                header = f"for {', '.join(names)} in zip(*{cols_expr}):"
        elif whole_local:
            header = f"for {whole_local} in {ch}.whole:"
        else:
            header = f"for _ in range({ch}.length):"
        with self.w.block(header):
            self._emit_pred_then(pred, consume)

    def _emit_fold_kernel(self, ch: str, names: list[str],
                          whole_local: str | None, pred,
                          cols_expr: str) -> None:
        """Vectorized root fold: one comprehension per chunk.

        Emitted instead of the row loop when the reduce sits directly on a
        chunked scan; filter predicate and head evaluation run inside a
        single list comprehension/`sum`/`max` per chunk.
        """
        w = self.w
        name, head_expr = self._fold
        if names and whole_local:
            if len(names) == 1:
                tgt = f"{names[0]}, {whole_local}"
                it = f"zip({ch}.columns[0], {ch}.whole)"
            else:
                tgt = f"({', '.join(names)}), {whole_local}"
                it = f"zip(zip(*{cols_expr}), {ch}.whole)"
        elif names:
            if len(names) == 1:
                tgt = names[0]
                it = f"{ch}.columns[0]"
            else:
                tgt = ", ".join(names)
                it = f"zip(*{cols_expr})"
        elif whole_local:
            tgt = whole_local
            it = f"{ch}.whole"
        else:
            tgt = "_"
            it = f"range({ch}.length)"
        cond = ""
        if pred is not None and not (isinstance(pred, A.Const) and pred.value is True):
            cond = f" if {compile_expr(pred, self.ctx)}"
        if name == "count":
            if cond:
                w.emit(f"_acc += sum(1 for {tgt} in {it}{cond})")
            else:
                w.emit(f"_acc += {ch}.length")
            return
        head = compile_expr(head_expr, self.ctx)
        comp = f"[{head} for {tgt} in {it}{cond}]"
        if name in ("bag", "list"):
            w.emit(f"_out.extend({comp})")
            return
        hs = self._next("hs")
        if name == "sum":
            w.emit(f"_acc += sum(_h for _h in {comp} if _h is not None)")
        elif name == "avg":
            w.emit(f"{hs} = [_h for _h in {comp} if _h is not None]")
            w.emit(f"_sum += sum({hs})")
            w.emit(f"_cnt += len({hs})")
        elif name in ("max", "min"):
            better = ">" if name == "max" else "<"
            w.emit(f"{hs} = [_h for _h in {comp} if _h is not None]")
            with w.block(f"if {hs}:"):
                w.emit(f"_m = {name}({hs})")
                with w.block(f"if _acc is None or _m {better} _acc:"):
                    w.emit("_acc = _m")
        else:  # pragma: no cover - guarded by the fusible-monoid list
            raise CodegenError(f"no fold kernel for monoid {name!r}")

    def _populate_extends(self, ch: str, node: PhysScan, chunk_fields: tuple,
                          pop_lists: dict[str, str]) -> None:
        """Populate lists take whole chunk columns (one extend per batch)."""
        for f in node.populate:
            if f == "*":
                continue
            try:
                idx = chunk_fields.index(f)
            except ValueError:
                raise CodegenError(
                    f"populate field {f!r} not extracted by scan of "
                    f"{node.source!r} (has {chunk_fields})"
                ) from None
            self.w.emit(f"{pop_lists[f]}.extend({ch}.columns[{idx}])")

    def _emit_cache_scan(self, node: PhysScan, consume) -> None:
        w = self.w
        var = _sanitize(node.var)
        call = (f"_rt.cache_chunks({node.source!r}, {node.fields!r}, "
                f"whole={node.bind_whole!r})")
        if node.bind_whole:
            local = f"_{var}_obj"
            self.ctx.bindings[node.var] = ObjectBinding(local)
            names: list[str] = []
            whole_local: str | None = local
        else:
            locals_by_path = {f: f"_{var}_{_sanitize(f)}" for f in node.fields}
            self.ctx.bindings[node.var] = ScalarBinding(locals_by_path)
            names = [locals_by_path[f] for f in node.fields]
            whole_local = None
        region = self._par_regions.get(id(node))
        if region is not None:
            self._emit_parallel_scan(region, node, call, names, whole_local,
                                     {}, tuple(node.fields), consume)
            return
        ch = self._next("ch")
        with w.block(f"for {ch} in {call}:"):
            self._emit_chunk_loop(ch, names, whole_local, node.pred, consume)

    def _emit_chunked_scan(self, node: PhysScan, call: str, names: list[str],
                           whole_local: str | None, pop_lists: dict[str, str],
                           chunk_fields: tuple, consume,
                           whole_pop_local: str | None = None) -> None:
        """Shared tail of every chunked scan emitter: the per-chunk loop
        with populate extends, column-local binding and the row loop (or
        fused fold kernel). Morsel-sharded scans wrap the loop in a worker
        function instead."""
        region = self._par_regions.get(id(node))
        if region is not None:
            self._emit_parallel_scan(region, node, call, names, whole_local,
                                     pop_lists, chunk_fields, consume,
                                     whole_pop_local)
            return
        ch = self._next("ch")
        cols_expr = f"{ch}.columns[:{len(names)}]" \
            if len(chunk_fields) > len(names) else None
        with self.w.block(f"for {ch} in {call}:"):
            self._populate_extends(ch, node, chunk_fields, pop_lists)
            if whole_pop_local:
                self.w.emit(f"{whole_pop_local}.extend({ch}.whole)")
            self._emit_chunk_loop(ch, names, whole_local, node.pred, consume,
                                  cols_expr)

    def _emit_parallel_scan(self, region, node: PhysScan, call: str,
                            names: list[str], whole_local: str | None,
                            pop_lists: dict[str, str], chunk_fields: tuple,
                            consume, whole_pop_local: str | None = None) -> None:
        """Morsel-sharded scan: worker def + split fan-out + ordered merge.

        The worker re-initialises every accumulator it writes (making them
        worker-locals — it shares only read-only state through its closure)
        and runs the identical chunk loop over its morsel. The coordinator
        charges file-level stats once, runs the scheduler, and merges
        partial accumulators and cache-population columns in morsel order.
        """
        w = self.w
        assert call.endswith(")")
        call = call[:-1] + ", split=_split)"
        pop_vars = list(pop_lists.values())
        if whole_pop_local:
            pop_vars.append(whole_pop_local)
        ret_vars = list(region.result_vars())
        worker = self._next("mw")
        with w.block(f"def {worker}(_split):"):
            region.emit_init(w)
            for lst in pop_vars:
                w.emit(f"{lst} = []")
            ch = self._next("ch")
            cols_expr = f"{ch}.columns[:{len(names)}]" \
                if len(chunk_fields) > len(names) else None
            with w.block(f"for {ch} in {call}:"):
                self._populate_extends(ch, node, chunk_fields, pop_lists)
                if whole_pop_local:
                    w.emit(f"{whole_pop_local}.extend({ch}.whole)")
                self._emit_chunk_loop(ch, names, whole_local, node.pred,
                                      consume, cols_expr)
            returns = ret_vars + pop_vars
            trailing = "," if len(returns) == 1 else ""
            w.emit(f"return ({', '.join(returns)}{trailing})")
        if node.access != "cache":
            w.emit(f"_rt.account_raw({node.source!r})")
        splits = self._next("sp")
        w.emit(
            f"{splits} = _rt.scan_splits({node.source!r}, {node.parallel}, "
            f"access={node.access!r}, fields={node.fields!r}, "
            f"whole={node.bind_whole!r})"
        )
        parts = self._next("pt")
        w.emit(f"{parts} = _rt.run_morsels({worker}, {splits}, {node.parallel})")
        region.emit_outer_init(w)
        part = self._next("p")
        with w.block(f"for {part} in {parts}:"):
            region.emit_merge(w, part)
            for i, lst in enumerate(pop_vars):
                w.emit(f"{lst}.extend({part}[{len(ret_vars) + i}])")
        if node.access != "cache":
            # merge sharded auxiliary-structure partials (positional maps)
            w.emit(f"_rt.finish_scan({node.source!r}, {splits})")

    def _emit_csv_scan(self, node: PhysScan, entry, consume) -> None:
        entry.plugin.field_indexes(list(node.fields))  # validate columns early
        var = _sanitize(node.var)
        pop_lists = self._emit_populate_prelude(node, var)
        locals_by_path = {f: f"_{var}_{_sanitize(f)}" for f in node.fields}
        binding = ScalarBinding(dict(locals_by_path))
        if node.bind_whole:
            binding.whole_local = f"_{var}_obj"
        self.ctx.bindings[node.var] = binding
        names = [locals_by_path[f] for f in node.fields]
        chunk_fields = node.chunk_fields()
        call = (f"_rt.csv_chunks({node.source!r}, {chunk_fields!r}, "
                f"access={node.access!r}, batch_size={node.batch_size}, "
                f"whole={node.bind_whole!r})")
        self._emit_chunked_scan(node, call, names, binding.whole_local,
                                pop_lists, chunk_fields, consume)
        self._emit_populate_finalizer(node, pop_lists)

    def _emit_json_scan(self, node: PhysScan, consume) -> None:
        w = self.w
        var = _sanitize(node.var)
        local = f"_{var}_obj"

        scalar_pop = tuple(f for f in node.populate if f != "*")
        pop_lists: dict[str, str] = {}
        for f in scalar_pop:
            lst = f"_pop_{var}_{_sanitize(f)}"
            pop_lists[f] = lst
            w.emit(f"{lst} = []")
        populate_whole = self._next("popw") if node.populate_layout in (
            "objects", "bson", "json_text", "positions"
        ) and node.populate == ("*",) else None
        if populate_whole:
            w.emit(f"{populate_whole} = []")

        bind_whole = node.bind_whole or not node.fields
        if bind_whole:
            self.ctx.bindings[node.var] = ObjectBinding(local)
            names: list[str] = []
            whole_local = local
            chunk_fields: tuple = scalar_pop
        else:
            scalar_paths = {f: f"_{var}_{_sanitize(f)}" for f in node.fields}
            self.ctx.bindings[node.var] = ScalarBinding(dict(scalar_paths))
            names = [scalar_paths[f] for f in node.fields]
            whole_local = None
            chunk_fields = node.chunk_fields()

        call = (f"_rt.json_chunks({node.source!r}, {chunk_fields!r}, "
                f"batch_size={node.batch_size}, whole={bind_whole!r})")
        self._emit_chunked_scan(node, call, names, whole_local, pop_lists,
                                chunk_fields, consume,
                                whole_pop_local=populate_whole)

        if scalar_pop:
            lists = ", ".join(pop_lists[f] for f in scalar_pop)
            trailing = "," if len(scalar_pop) == 1 else ""
            self._finalizers.append(
                f"_rt.admit_columns({node.source!r}, {scalar_pop!r}, ({lists}{trailing}))"
            )
        if populate_whole:
            self._finalizers.append(
                f"_rt.admit_elements({node.source!r}, {node.populate_layout!r}, "
                f"{populate_whole})"
            )

    def _emit_array_scan(self, node: PhysScan, entry, consume) -> None:
        plugin = entry.plugin
        var = _sanitize(node.var)
        names_all = list(plugin.dim_names) + [n for n, _t in plugin.header.fields]
        locals_by_path = {}
        for f in node.fields:
            if f not in names_all:
                raise CodegenError(
                    f"array source {node.source!r} has no component {f!r}"
                )
            locals_by_path[f] = f"_{var}_{_sanitize(f)}"
        binding = ScalarBinding(dict(locals_by_path))
        if node.bind_whole:
            binding.whole_local = f"_{var}_obj"
        self.ctx.bindings[node.var] = binding
        pop_lists = self._emit_populate_prelude(node, var)
        names = [locals_by_path[f] for f in node.fields]
        chunk_fields = node.chunk_fields()
        call = (f"_rt.array_chunks({node.source!r}, {chunk_fields!r}, "
                f"batch_size={node.batch_size}, whole={node.bind_whole!r})")
        self._emit_chunked_scan(node, call, names, binding.whole_local,
                                pop_lists, chunk_fields, consume)
        self._emit_populate_finalizer(node, pop_lists)

    def _emit_xls_scan(self, node: PhysScan, entry, consume) -> None:
        var = _sanitize(node.var)
        locals_by_path = {f: f"_{var}_{_sanitize(f)}" for f in node.fields}
        binding = ScalarBinding(dict(locals_by_path))
        if node.bind_whole:
            binding.whole_local = f"_{var}_obj"
        self.ctx.bindings[node.var] = binding
        pop_lists = self._emit_populate_prelude(node, var)
        names = [locals_by_path[f] for f in node.fields]
        chunk_fields = node.chunk_fields()
        call = (f"_rt.xls_chunks({node.source!r}, {chunk_fields!r}, "
                f"batch_size={node.batch_size}, whole={node.bind_whole!r})")
        self._emit_chunked_scan(node, call, names, binding.whole_local,
                                pop_lists, chunk_fields, consume)
        self._emit_populate_finalizer(node, pop_lists)

    def _emit_populate_prelude(self, node: PhysScan, var: str) -> dict[str, str]:
        pop_lists: dict[str, str] = {}
        for f in node.populate:
            lst = f"_pop_{var}_{_sanitize(f)}"
            pop_lists[f] = lst
            self.w.emit(f"{lst} = []")
        return pop_lists

    def _emit_populate_finalizer(self, node: PhysScan, pop_lists: dict) -> None:
        if not node.populate:
            return
        lists = ", ".join(pop_lists[f] for f in node.populate)
        trailing = "," if len(node.populate) == 1 else ""
        self._finalizers.append(
            f"_rt.admit_columns({node.source!r}, {tuple(node.populate)!r}, "
            f"({lists}{trailing}))"
        )

    def _emit_expr_scan(self, node: PhysExprScan, consume) -> None:
        local = f"_{_sanitize(node.var)}_obj"
        src = compile_expr(node.expr, self.ctx)
        self.ctx.bindings[node.var] = ObjectBinding(local)
        with self.w.block(f"for {local} in ({src} or ()):"):
            self._emit_pred_then(node.pred, consume)

    # -- non-leaf operators -----------------------------------------------------------

    def _emit_filter(self, node: PhysFilter, consume) -> None:
        def inner():
            self._emit_pred_then(node.pred, consume)

        self._emit_node(node.child, inner)

    def _binding_locals(self, variables) -> list[str]:
        """Deterministic flat list of the locals carrying given vars' data."""
        out: list[str] = []
        for var in variables:
            binding = self.ctx.bindings.get(var)
            if binding is None:
                raise CodegenError(f"variable {var!r} has no binding at join time")
            if isinstance(binding, ObjectBinding):
                out.append(binding.local)
            else:
                if binding.whole_local:
                    out.append(binding.whole_local)
                out.extend(binding.locals_by_path[p] for p in sorted(binding.locals_by_path))
        return out

    def _join_key(self, keys: tuple) -> str:
        """Hash-table key expression: bare value for single-key joins (no
        per-row tuple allocation), a tuple otherwise."""
        if len(keys) == 1:
            return compile_expr(keys[0], self.ctx)
        return "(" + ", ".join(compile_expr(k, self.ctx) for k in keys) + ")"

    def _emit_hash_join(self, node: PhysHashJoin, consume) -> None:
        w = self.w
        ht = self._next("ht")
        w.emit(f"{ht} = {{}}")
        if isinstance(node.build, PhysScan) and node.build.parallel > 1:
            # morsel-sharded build: workers fill partial tables over their
            # morsels, merged per key in morsel order by the coordinator
            self._par_regions[id(node.build)] = _BuildRegion(ht)

        def build_consume():
            locals_list = self._binding_locals(node.build.bound_vars())
            row = ", ".join(locals_list) + ("," if len(locals_list) == 1 else "")
            w.emit(f"_k = {self._join_key(node.build_keys)}")
            w.emit(f"_b = {ht}.get(_k)")
            with w.block("if _b is None:"):
                w.emit(f"{ht}[_k] = [({row})]")
            with w.block("else:"):
                w.emit(f"_b.append(({row}))")

        self._emit_node(node.build, build_consume)
        build_locals = self._binding_locals(node.build.bound_vars())

        def probe_consume():
            matches = self._next("mt")
            w.emit(f"{matches} = {ht}.get({self._join_key(node.probe_keys)})")
            with w.block(f"if {matches} is not None:"):
                row_var = self._next("r")
                with w.block(f"for {row_var} in {matches}:"):
                    for i, name in enumerate(build_locals):
                        w.emit(f"{name} = {row_var}[{i}]")
                    self._emit_pred_then(node.residual, consume)

        self._emit_node(node.probe, probe_consume)

    def _emit_nl_join(self, node: PhysNLJoin, consume) -> None:
        w = self.w
        inner_rows = self._next("nl")
        w.emit(f"{inner_rows} = []")

        def inner_consume():
            locals_list = self._binding_locals(node.inner.bound_vars())
            row = ", ".join(locals_list) + ("," if len(locals_list) == 1 else "")
            w.emit(f"{inner_rows}.append(({row}))")

        self._emit_node(node.inner, inner_consume)
        inner_locals = self._binding_locals(node.inner.bound_vars())

        def outer_consume():
            row_var = self._next("r")
            with w.block(f"for {row_var} in {inner_rows}:"):
                for i, name in enumerate(inner_locals):
                    w.emit(f"{name} = {row_var}[{i}]")
                self._emit_pred_then(node.pred, consume)

        self._emit_node(node.outer, outer_consume)

    def _emit_unnest(self, node: PhysUnnest, consume) -> None:
        w = self.w
        local = f"_{_sanitize(node.var)}_obj"

        def inner():
            src = compile_expr(node.path, self.ctx)
            self.ctx.bindings[node.var] = ObjectBinding(local)
            with w.block(f"for {local} in ({src} or ()):"):
                self._emit_pred_then(node.pred, consume)

        self._emit_node(node.child, inner)

    def _emit_nest(self, node: PhysNest, consume) -> None:
        w = self.w
        groups = self._next("grp")
        mono = self._next("gm")
        w.emit(f"{mono} = _rt.monoid({node.monoid.name!r}, {node.monoid.params!r})")
        w.emit(f"{groups} = {{}}")

        def child_consume():
            keys = ", ".join(compile_expr(e, self.ctx) for _n, e in node.keys)
            trailing = "," if len(node.keys) == 1 else ""
            head = compile_expr(node.head, self.ctx)
            w.emit(f"_k = ({keys}{trailing})")
            w.emit(f"_g = {groups}.get(_k)")
            with w.block("if _g is None:"):
                w.emit(f"_g = {mono}.zero()")
            w.emit(f"{groups}[_k] = {mono}.merge(_g, {mono}.lift({head}))")

        self._emit_node(node.child, child_consume)

        local = f"_{_sanitize(node.group_var)}_obj"
        self.ctx.bindings[node.group_var] = ObjectBinding(local)
        with w.block(f"for _k, _g in {groups}.items():"):
            key_items = ", ".join(
                f"{name!r}: _k[{i}]" for i, (name, _e) in enumerate(node.keys)
            )
            w.emit(
                f"{local} = {{{key_items}, {node.agg_name!r}: {mono}.finalize(_g)}}"
            )
            consume()
