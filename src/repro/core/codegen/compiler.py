"""JIT query compiler: physical plan → specialised Python source → function.

This is the Python analogue of ViDa's LLVM code generation (paper §4): one
fused, push-style (produce/consume, a la HyPer) function is generated *per
query*, with

- scan loops specialised to each source's format and chosen access path,
- *vectorized* scans: raw sources stream in as columnar chunks (tokenized
  and converted batch-at-a-time by the runtime's column kernels), and the
  generated loop binds locals straight off the column lists with C-level
  ``zip`` iteration — converter and null-token dispatch is hoisted out of
  the inner loop entirely,
- predicates, join probes and accumulator updates inlined in the loop body —
  no operator boundaries, no per-tuple interpretation,
- cache population piggybacked on raw scans as whole-column ``extend``s
  (one call per chunk, not one append per row), and
- "general-purpose checks stripped": populate code, whole-element binding
  and predicate tests are emitted only when the planner asked for them.

The generated module source is kept on the result object for inspection
(``QueryResult.code``) — the moral equivalent of dumping the LLVM IR.
"""

from __future__ import annotations

import math
import re
from contextlib import contextmanager
from dataclasses import dataclass

from ...errors import CodegenError
from ...mcc import ast as A
from ..physical import (
    PhysExprScan,
    PhysFilter,
    PhysHashJoin,
    PhysNest,
    PhysNLJoin,
    PhysNode,
    PhysReduce,
    PhysScan,
    PhysUnnest,
    chain_nest,
    parallel_driver,
)
from .exprs import Binding, ExprContext, ObjectBinding, ScalarBinding, compile_expr
from .helpers import HELPERS


@dataclass
class CompiledQuery:
    """A compiled query: callable + its generated source for inspection."""

    source: str
    fn: object
    plan: PhysReduce

    def __call__(self, runtime):
        return self.fn(runtime)


class CodeWriter:
    def __init__(self, indent: int = 1):
        self.lines: list[str] = []
        self.indent = indent

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    @contextmanager
    def block(self, header: str):
        self.emit(header)
        self.indent += 1
        try:
            yield
        finally:
            self.indent -= 1

    @contextmanager
    def capture(self, indent: int):
        """Redirect emission into a fresh line buffer (yielded) at the given
        indent; the writer's own lines are untouched. Used to build process
        worker bodies, which must end up as top-level module functions rather
        than closures inside ``_vida_query``."""
        saved_lines, saved_indent = self.lines, self.indent
        self.lines, self.indent = [], indent
        try:
            yield self.lines
        finally:
            self.lines, self.indent = saved_lines, saved_indent

    def text(self) -> str:
        return "\n".join(self.lines)


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in name)


def _is_true(pred) -> bool:
    return pred is None or (isinstance(pred, A.Const) and pred.value is True)


def _name_used(src: str, name: str) -> bool:
    """Does compiled source ``src`` reference the local ``name``?"""
    return re.search(rf"(?<![\w]){re.escape(name)}(?![\w])", src) is not None


def _contains_comprehension(expr) -> bool:
    """Nested comprehensions compile to helper functions taking the outer
    locals as *parameters* — they cannot live inside a kernel that rebinds
    locals to tuple subscripts, so fused join folds must skip them."""
    if expr is None:
        return False
    if isinstance(expr, A.Comprehension):
        return True
    return any(_contains_comprehension(c) for c in expr.children())


class _ChunkCtx:
    """Per-chunk emitted state: the (possibly selection-compacted) column
    list variable, whole-element variable, and surviving-row count."""

    def __init__(self, names: list[str], cols: str | None, total: int,
                 whole: str | None, whole_local: str | None,
                 count: str | None):
        self.names = names          # locals aligned with cols[:len(names)]
        self.cols = cols            # var holding the chunk's column lists
        self.total = total          # how many columns ``cols`` carries
        self.whole = whole          # var holding the whole-element list
        self.whole_local = whole_local
        self.count = count          # var holding the surviving-row count

    def sliced_cols(self) -> str:
        """Column-list expression narrowed to the bound locals."""
        k = len(self.names)
        return self.cols if self.total == k else f"{self.cols}[:{k}]"


def _row_iter(ctx: _ChunkCtx) -> tuple[str, str, bool]:
    """(target, iterable, yields-scalar) for iterating a chunk's rows.

    The iteration is a C-level ``zip`` over column lists; ``scalar`` is True
    when the iterable yields bare values rather than tuples.
    """
    names = ctx.names
    if names and ctx.whole_local:
        if len(names) == 1:
            return (f"{names[0]}, {ctx.whole_local}",
                    f"zip({ctx.cols}[0], {ctx.whole})", False)
        return (f"({', '.join(names)}), {ctx.whole_local}",
                f"zip(zip(*{ctx.sliced_cols()}), {ctx.whole})", False)
    if names:
        if len(names) == 1:
            return names[0], f"{ctx.cols}[0]", True
        return ", ".join(names), f"zip(*{ctx.sliced_cols()})", False
    if ctx.whole_local:
        return ctx.whole_local, ctx.whole, True
    return "_", f"range({ctx.count})", True


# ---------------------------------------------------------------------------
# Morsel-parallel regions
# ---------------------------------------------------------------------------
#
# When the planner marks a scan ``parallel=N`` the generated code wraps that
# scan's chunk loop in a *morsel worker*: a nested function whose first
# statements re-initialise every accumulator it writes (the assignments make
# them worker-locals — the worker is reentrant, sharing only read-only state
# like hash tables and helper bindings through its closure). The coordinator
# asks the runtime for splits, fans the worker out over the scheduler, and
# merges the returned partials *in morsel order*, so parallel results are
# bit-identical to the serial loop.


class _FoldRegion:
    """Root-reduce parallel region: workers fold partial accumulators; the
    coordinator merges them through the output monoid's merge."""

    def __init__(self, monoid_name: str, generic: bool):
        self.name = monoid_name if not generic else None

    def result_vars(self) -> list[str]:
        if self.name == "avg":
            return ["_sum", "_cnt"]
        if self.name in ("bag", "list", "set"):
            return ["_out"]
        return ["_acc"]

    def emit_init(self, w: CodeWriter) -> None:
        _emit_fold_init(w, self.name)

    def emit_outer_init(self, w: CodeWriter) -> None:
        _emit_fold_init(w, self.name)

    def emit_merge(self, w: CodeWriter, part: str) -> None:
        name = self.name
        if name in ("sum", "count"):
            w.emit(f"_acc += {part}[0]")
        elif name == "prod":
            w.emit(f"_acc *= {part}[0]")
        elif name in ("max", "min"):
            op = ">" if name == "max" else "<"
            w.emit(f"_h = {part}[0]")
            with w.block(f"if _h is not None and (_acc is None or _h {op} _acc):"):
                w.emit("_acc = _h")
        elif name == "avg":
            w.emit(f"_sum += {part}[0]")
            w.emit(f"_cnt += {part}[1]")
        elif name == "any":
            w.emit(f"_acc = _acc or {part}[0]")
        elif name == "all":
            w.emit(f"_acc = _acc and {part}[0]")
        elif name in ("bag", "list"):
            w.emit(f"_out.extend({part}[0])")
        elif name == "set":
            # re-dedup across ordered partials: first occurrence wins, same
            # as the serial scan order
            with w.block(f"for _h in {part}[0]:"):
                w.emit("_k = _hashable(_h)")
                with w.block("if _k not in _seen:"):
                    w.emit("_seen.add(_k)")
                    w.emit("_out.append(_h)")
        else:
            w.emit(f"_acc = _M.merge(_acc, {part}[0])")


class _BuildRegion:
    """Hash-join build parallel region: workers build partial tables over
    their morsels; the coordinator merges them per key, extending row lists
    in morsel order (identical to serial insertion order)."""

    def __init__(self, ht: str):
        self.ht = ht

    def result_vars(self) -> list[str]:
        return [self.ht]

    def emit_init(self, w: CodeWriter) -> None:
        w.emit(f"{self.ht} = {{}}")

    def emit_outer_init(self, w: CodeWriter) -> None:
        pass  # the outer table was initialised before the worker definition

    def emit_merge(self, w: CodeWriter, part: str) -> None:
        with w.block(f"for _k, _rows in {part}[0].items():"):
            w.emit(f"_b = {self.ht}.get(_k)")
            with w.block("if _b is None:"):
                w.emit(f"{self.ht}[_k] = _rows")
            with w.block("else:"):
                w.emit("_b.extend(_rows)")


class _NestRegion:
    """Nest (group-by) parallel region: workers build per-key partial
    accumulators over their morsels; the coordinator merges them per key
    through the group monoid, in morsel order. First occurrence fixes a
    key's position, so group order is identical to the serial scan."""

    def __init__(self, groups: str, mono: str):
        self.groups = groups
        self.mono = mono

    def result_vars(self) -> list[str]:
        return [self.groups]

    def emit_init(self, w: CodeWriter) -> None:
        w.emit(f"{self.groups} = {{}}")

    def emit_outer_init(self, w: CodeWriter) -> None:
        pass  # the coordinator dict was initialised before the worker

    def emit_merge(self, w: CodeWriter, part: str) -> None:
        with w.block(f"for _k, _g in {part}[0].items():"):
            w.emit(f"_b = {self.groups}.get(_k)")
            with w.block("if _b is None:"):
                w.emit(f"{self.groups}[_k] = _g")
            with w.block("else:"):
                w.emit(f"{self.groups}[_k] = {self.mono}.merge(_b, _g)")


def _emit_fold_init(w: CodeWriter, name: str | None) -> None:
    """Accumulator initialisation for the root fold (shared by the serial
    path, the morsel workers, and the coordinator's merge prologue)."""
    if name in ("sum", "count"):
        w.emit("_acc = 0")
    elif name == "prod":
        w.emit("_acc = 1")
    elif name in ("max", "min"):
        w.emit("_acc = None")
    elif name == "avg":
        w.emit("_sum = 0.0")
        w.emit("_cnt = 0")
    elif name == "any":
        w.emit("_acc = False")
    elif name == "all":
        w.emit("_acc = True")
    elif name in ("bag", "list"):
        w.emit("_out = []")
    elif name == "set":
        w.emit("_out = []")
        w.emit("_seen = set()")
    else:  # generic monoid fold; ``_M`` is bound by the reduce emitter
        w.emit("_acc = _M.zero()")


class _BuildSink:
    """Vectorized hash-join build side: one fused key+row kernel per chunk
    (a comprehension evaluating the build key and materialising the row
    tuple per surviving row) feeding a tight bulk dict-insert loop."""

    def __init__(self, ht: str, node: PhysHashJoin):
        self.ht = ht
        self.node = node

    def emit(self, c: "QueryCompiler", ctx: _ChunkCtx) -> None:
        w = c.w
        locals_list = c._binding_locals(self.node.build.bound_vars())
        row = ", ".join(locals_list) + ("," if len(locals_list) == 1 else "")
        key = c._join_key(self.node.build_keys)
        tgt, it, _scalar = _row_iter(ctx)
        kb = c._next("kb")
        w.emit(f"{kb} = [({key}, ({row})) for {tgt} in {it}]")
        hg = c._next("hg")
        w.emit(f"{hg} = {self.ht}.get")
        with w.block(f"for _k, _r in {kb}:"):
            w.emit(f"_b = {hg}(_k)")
            with w.block("if _b is None:"):
                w.emit(f"{self.ht}[_k] = [_r]")
            with w.block("else:"):
                w.emit("_b.append(_r)")


class _ProbeSink:
    """Vectorized hash-join probe side: a batched key-lookup kernel emits a
    matched-selection vector per chunk; surviving probe rows are compacted
    with per-column kernels, and either the root fold fuses over them or the
    downstream consumer runs row-at-a-time over matches only."""

    def __init__(self, ht: str, node: PhysHashJoin, build_locals: list[str],
                 consume, fold: tuple | None):
        self.ht = ht
        self.node = node
        self.build_locals = build_locals
        self.consume = consume
        self.fold = fold

    def emit(self, c: "QueryCompiler", ctx: _ChunkCtx) -> None:
        w = c.w
        key = c._join_key(self.node.probe_keys)
        tgt, it, _scalar = _row_iter(ctx)
        kp = c._next("kp")
        ms = c._next("ms")
        w.emit(f"{kp} = [{key} for {tgt} in {it}]")
        w.emit(f"{ms} = [_i for _i, _k in enumerate({kp}) if _k in {self.ht}]")
        with w.block(f"if not {ms}:"):
            w.emit("continue")
        mk = c._next("mk")
        w.emit(f"{mk} = [{kp}[_i] for _i in {ms}]")
        c._emit_narrow(ctx, ms)
        tgt, it, scalar = _row_iter(ctx)
        joined_tgt = f"_k, {tgt}" if scalar else f"_k, ({tgt})"
        joined_it = f"zip({mk}, {it})"
        if self.fold is not None:
            self._emit_fused_fold(c, joined_tgt, joined_it, mk)
            return
        rv = c._next("r")
        with w.block(f"for {joined_tgt} in {joined_it}:"):
            with w.block(f"for {rv} in {self.ht}[_k]:"):
                for i, name in enumerate(self.build_locals):
                    w.emit(f"{name} = {rv}[{i}]")
                c._emit_pred_then(self.node.residual, self.consume)

    def _emit_fused_fold(self, c: "QueryCompiler", joined_tgt: str,
                         joined_it: str, mk: str) -> None:
        """Root fold fused over the surviving (matched) join rows: one
        comprehension per chunk spanning probe matches × build rows."""
        w = c.w
        name, head_expr = self.fold
        residual = self.node.residual
        if name == "count" and _is_true(residual):
            w.emit(f"_acc += sum(len({self.ht}[_k]) for _k in {mk})")
            return
        # build-side locals live in hash-table row tuples inside the
        # comprehension: rebind them to subscripts of the row variable
        saved: dict[str, object] = {}
        pos = {n: i for i, n in enumerate(self.build_locals)}
        for var in self.node.build.bound_vars():
            binding = c.ctx.bindings[var]
            saved[var] = binding
            if isinstance(binding, ObjectBinding):
                c.ctx.bindings[var] = ObjectBinding(f"_r[{pos[binding.local]}]")
            else:
                c.ctx.bindings[var] = ScalarBinding(
                    {p: f"_r[{pos[l]}]"
                     for p, l in binding.locals_by_path.items()},
                    whole_local=(f"_r[{pos[binding.whole_local]}]"
                                 if binding.whole_local else None),
                )
        try:
            cond = ""
            if not _is_true(residual):
                cond = f" if {compile_expr(residual, c.ctx)}"
            inner = f"for {joined_tgt} in {joined_it} for _r in {self.ht}[_k]{cond}"
            if name == "count":
                w.emit(f"_acc += sum(1 {inner})")
                return
            head = compile_expr(head_expr, c.ctx)
            c._emit_fold_tail(name, f"[{head} {inner}]")
        finally:
            c.ctx.bindings.update(saved)


class QueryCompiler:
    """Compiles one physical plan into a Python function ``fn(runtime)``.

    ``vector_filters`` (default) evaluates scan predicates as per-chunk
    selection-vector kernels and vectorizes hash-join build/probe; disabling
    it restores row-at-a-time predicate tests and per-row join dispatch
    (kept for differential testing and benchmarking the batch win).
    """

    def __init__(self, catalog, vector_filters: bool = True):
        self.catalog = catalog
        self.vector_filters = vector_filters

    def compile(self, plan: PhysReduce) -> CompiledQuery:
        self.ctx = ExprContext(source_names=self.catalog.names())
        self.w = CodeWriter(indent=1)
        self._counter = 0
        self._finalizers: list[str] = []  # emitted at function end (indent 1)
        #: (monoid name, head expr) when the root fold fuses into chunk kernels
        self._fold: tuple | None = None
        #: chunk-level consumer (join build/probe sink) replacing the row loop
        self._chunk_sink: object | None = None
        #: id(PhysScan) → parallel region for morsel-sharded scans
        self._par_regions: dict[int, object] = {}
        #: top-level worker function sources for process-backed scans
        self._proc_workers: list[str] = []
        #: deferred emission hook run at the top of the next worker body
        #: (selection-pushdown kernels must live inside process workers)
        self._worker_prelude = None
        #: the PhysNest acting as the parallel shard point (bottom-most on
        #: the driver chain) and the driver scan feeding it
        self._nest_parallel: PhysNest | None = None
        self._nest_driver: PhysScan | None = None

        self._emit_reduce(plan)

        prelude = CodeWriter(indent=1)
        for helper_name in sorted(HELPERS):
            prelude.emit(f"{helper_name} = _H[{helper_name!r}]")

        parts: list[str] = []
        parts.extend(self.ctx.subqueries)
        parts.extend(self._proc_workers)
        parts.append("def _vida_query(_rt):")
        parts.append(prelude.text())
        parts.append(self.w.text())
        source = "\n".join(parts)

        globals_ns: dict = {
            "_H": HELPERS,
            "_m_sqrt": math.sqrt,
            "_m_exp": math.exp,
            "_m_log": math.log,
        }
        # Subquery functions resolve helpers via module globals; the main
        # function shadows them with locals in its prelude for speed.
        globals_ns.update(HELPERS)
        try:
            code = compile(source, "<vida-jit>", "exec")
        except SyntaxError as exc:  # pragma: no cover - codegen bug guard
            raise CodegenError(f"generated code failed to compile: {exc}\n{source}") from exc
        exec(code, globals_ns)
        # The coordinator ships this very module source to process workers
        # (resolved as a module global at call time, never in the child).
        globals_ns["__vida_module_source__"] = source
        return CompiledQuery(source, globals_ns["_vida_query"], plan)

    # -- id helpers -----------------------------------------------------------

    def _next(self, prefix: str) -> str:
        self._counter += 1
        return f"_{prefix}{self._counter}"

    # -- reduce (root) -----------------------------------------------------------

    def _emit_reduce(self, node: PhysReduce) -> None:
        w = self.w
        mono = node.monoid
        name = mono.name

        specialized = name in (
            "sum", "count", "prod", "max", "min", "avg", "any", "all",
            "bag", "list", "set",
        )
        fold_name = name if specialized else None
        if not specialized:
            # generic monoid object: bound once at the coordinator level so
            # morsel workers share it read-only through their closure
            w.emit(f"_M = _rt.monoid({mono.name!r}, {mono.params!r})")

        driver = parallel_driver(node)
        if driver is not None and driver.parallel > 1:
            nest = chain_nest(node)
            if nest is None:
                # accumulator init moves into the morsel worker; the merge
                # prologue re-initialises the coordinator's copy
                self._par_regions[id(driver)] = _FoldRegion(name, not specialized)
            else:
                # the shard point is the bottom-most nest: workers build
                # per-key group partials, and everything above the nest —
                # including this root fold — runs serially at the
                # coordinator over the merged groups
                self._nest_parallel = nest
                self._nest_driver = driver
                _emit_fold_init(w, fold_name)
        else:
            _emit_fold_init(w, fold_name)

        def consume() -> None:
            head = compile_expr(node.head, self.ctx)
            if name == "sum":
                w.emit(f"_h = {head}")
                with w.block("if _h is not None:"):
                    w.emit("_acc += _h")
            elif name == "count":
                w.emit("_acc += 1")
            elif name == "prod":
                w.emit(f"_h = {head}")
                with w.block("if _h is not None:"):
                    w.emit("_acc *= _h")
            elif name == "max":
                w.emit(f"_h = {head}")
                with w.block("if _h is not None and (_acc is None or _h > _acc):"):
                    w.emit("_acc = _h")
            elif name == "min":
                w.emit(f"_h = {head}")
                with w.block("if _h is not None and (_acc is None or _h < _acc):"):
                    w.emit("_acc = _h")
            elif name == "avg":
                w.emit(f"_h = {head}")
                with w.block("if _h is not None:"):
                    w.emit("_sum += _h")
                    w.emit("_cnt += 1")
            elif name == "any":
                w.emit(f"_acc = _acc or bool({head})")
            elif name == "all":
                w.emit(f"_acc = _acc and bool({head})")
            elif name in ("bag", "list"):
                w.emit(f"_out.append({head})")
            elif name == "set":
                w.emit(f"_h = {head}")
                w.emit("_k = _hashable(_h)")
                with w.block("if _k not in _seen:"):
                    w.emit("_seen.add(_k)")
                    w.emit("_out.append(_h)")
            else:
                w.emit(f"_acc = _M.merge(_acc, _M.lift({head}))")

        # When the root fold consumes a chunked scan directly, the whole
        # reduce vectorizes: one comprehension kernel per chunk instead of a
        # Python-level loop iteration per row (paper §4's "no per-tuple
        # interpretation", batch edition). The same fusion applies through a
        # hash join whose probe is a chunked scan: the fold comprehension
        # then spans the matched-selection survivors × build rows.
        fusible = name in ("count", "sum", "avg", "bag", "list", "max", "min")
        if fusible:
            if isinstance(node.child, PhysScan):
                self._fold = (name, node.head)
            elif isinstance(node.child, PhysHashJoin) \
                    and self._sinkable(node.child.probe) \
                    and not _contains_comprehension(node.head) \
                    and not _contains_comprehension(node.child.residual):
                self._fold = (name, node.head)
        self._emit_node(node.child, consume)
        self._fold = None

        for line in self._finalizers:
            w.emit(line)

        if name in ("bag", "list", "set"):
            w.emit("return _out")
        elif name == "avg":
            w.emit("return (_sum / _cnt) if _cnt else None")
        elif name in ("sum", "count", "prod", "max", "min", "any", "all"):
            w.emit("return _acc")
        else:
            w.emit("return _M.finalize(_acc)")

    # -- plan dispatch -----------------------------------------------------------

    def _emit_node(self, node: PhysNode, consume) -> None:
        if isinstance(node, PhysScan):
            self._emit_scan(node, consume)
        elif isinstance(node, PhysExprScan):
            self._emit_expr_scan(node, consume)
        elif isinstance(node, PhysFilter):
            self._emit_filter(node, consume)
        elif isinstance(node, PhysHashJoin):
            self._emit_hash_join(node, consume)
        elif isinstance(node, PhysNLJoin):
            self._emit_nl_join(node, consume)
        elif isinstance(node, PhysUnnest):
            self._emit_unnest(node, consume)
        elif isinstance(node, PhysNest):
            self._emit_nest(node, consume)
        else:
            raise CodegenError(f"cannot emit {type(node).__name__}")

    def _emit_pred_then(self, pred: A.Expr | None, consume) -> None:
        if pred is None or (isinstance(pred, A.Const) and pred.value is True):
            consume()
            return
        with self.w.block(f"if {compile_expr(pred, self.ctx)}:"):
            consume()

    # -- scans -----------------------------------------------------------

    def _emit_scan(self, node: PhysScan, consume) -> None:
        entry = self.catalog.get(node.source)
        fmt = entry.format
        if node.access == "cache":
            self._emit_cache_scan(node, consume)
        elif fmt == "memory" or node.access == "memory":
            self._emit_memory_scan(node, consume)
        elif fmt == "csv":
            self._emit_csv_scan(node, entry, consume)
        elif fmt == "json":
            self._emit_json_scan(node, consume)
        elif fmt == "array":
            self._emit_array_scan(node, entry, consume)
        elif fmt == "xls":
            self._emit_xls_scan(node, entry, consume)
        elif fmt == "dbms":
            self._emit_dbms_scan(node, consume)
        else:
            raise CodegenError(f"no scan emitter for format {fmt!r}")

    def _emit_dbms_scan(self, node: PhysScan, consume) -> None:
        """Scan a DBMS source over the chunk protocol; index lookups (pushed
        down by the planner) stay row-at-a-time."""
        from ...warehouse.docstore import DocStore

        entry = self.catalog.get(node.source)
        var = _sanitize(node.var)
        # Document stores return nested records; keep them whole so path
        # navigation works. Tabular stores take the projection pushdown.
        whole = node.bind_whole or isinstance(entry.plugin.store, DocStore)
        fields: tuple = () if whole else node.fields
        if node.index_eq is not None:
            local = f"_{var}_obj"
            self.ctx.bindings[node.var] = ObjectBinding(local)
            call = (f"_rt.dbms_rows({node.source!r}, {fields!r}, "
                    f"{node.index_eq!r})")
            with self.w.block(f"for {local} in {call}:"):
                self._emit_pred_then(node.pred, consume)
            return
        call = (f"_rt.dbms_chunks({node.source!r}, {fields!r}, "
                f"batch_size={node.batch_size}, whole={whole!r})")
        ch = self._next("ch")
        if whole or not fields:
            local = f"_{var}_obj"
            self.ctx.bindings[node.var] = ObjectBinding(local)
            with self.w.block(f"for {ch} in {call}:"):
                self._emit_chunk_body(ch, [], local, node.pred, consume)
            return
        locals_by_path = {f: f"_{var}_{_sanitize(f)}" for f in fields}
        self.ctx.bindings[node.var] = ScalarBinding(locals_by_path)
        names = [locals_by_path[f] for f in fields]
        with self.w.block(f"for {ch} in {call}:"):
            self._emit_chunk_body(ch, names, None, node.pred, consume,
                                  chunk_fields=tuple(fields))

    def _emit_memory_scan(self, node: PhysScan, consume) -> None:
        local = f"_{_sanitize(node.var)}_obj"
        self.ctx.bindings[node.var] = ObjectBinding(local)
        with self.w.block(f"for {local} in _rt.memory({node.source!r}):"):
            self._emit_pred_then(node.pred, consume)

    def _sinkable(self, node) -> bool:
        """A bare chunked scan whose chunk loop can host a join sink."""
        return (self.vector_filters and isinstance(node, PhysScan)
                and node.chunked() and bool(node.fields or node.bind_whole))

    def _emit_chunk_body(self, ch: str, names: list[str],
                         whole_local: str | None, pred, consume,
                         chunk_fields: tuple = (), node: PhysScan | None = None,
                         pop_lists: dict[str, str] | None = None,
                         whole_pop_local: str | None = None) -> None:
        """Emit one chunk's processing inside the scan's chunk loop.

        Stages, all vectorized per chunk:

        1. *selection prologue* — a pending ``Chunk.selection`` (cleaning
           drops) short-circuits when empty, otherwise compacts the consumed
           columns/whole list with per-column kernels, so uncompacted chunks
           can never leak dropped rows;
        2. *cache population* — whole-column extends of the cleaning
           survivors (never pred-filtered rows: the cache stores the source,
           not this query's filter);
        3. *predicate kernel* — the pushed-down predicate narrows a fresh
           selection vector in one comprehension; empty short-circuits the
           batch and survivors compact once per column;
        4. *dispatch* — fused root-fold kernel, join build/probe sink, or
           the plain row loop over the surviving rows.
        """
        w = self.w
        if _is_true(pred):
            pred = None
        ncols = len(names)
        total = max(ncols, len(chunk_fields))
        fold = self._fold
        sink = self._chunk_sink
        use_whole = whole_local is not None or whole_pop_local is not None
        need_n = (not names and whole_local is None) or (
            fold is not None and fold[0] == "count")
        cols_var = whole_var = count_var = None
        if total:
            cols_var = self._next("cc")
            w.emit(f"{cols_var} = {ch}.columns")
        if use_whole:
            whole_var = self._next("cw")
            w.emit(f"{whole_var} = {ch}.whole")
        if need_n:
            count_var = self._next("cn")
            w.emit(f"{count_var} = {ch}.length")
        sel = self._next("sl")
        w.emit(f"{sel} = {ch}.selection")
        with w.block(f"if {sel} is not None:"):
            with w.block(f"if not {sel}:"):
                w.emit("continue")
            if cols_var:
                w.emit(f"{cols_var} = [[_c[_i] for _i in {sel}] "
                       f"for _c in {cols_var}]")
            if whole_var:
                w.emit(f"{whole_var} = [{whole_var}[_i] for _i in {sel}]")
            if count_var:
                w.emit(f"{count_var} = len({sel})")
        if pop_lists and node is not None:
            for f in node.populate:
                if f == "*":
                    continue
                try:
                    idx = chunk_fields.index(f)
                except ValueError:
                    raise CodegenError(
                        f"populate field {f!r} not extracted by scan of "
                        f"{node.source!r} (has {chunk_fields})"
                    ) from None
                w.emit(f"{pop_lists[f]}.extend({cols_var}[{idx}])")
        if whole_pop_local:
            w.emit(f"{whole_pop_local}.extend({whole_var})")
        ctx = _ChunkCtx(names, cols_var, total, whole_var, whole_local,
                        count_var)
        row_pred = pred
        if pred is not None and fold is None and self.vector_filters:
            if self._emit_pred_kernel(ctx, pred):
                row_pred = None
        if fold is not None:
            self._emit_fold_kernel(ctx, pred)
            return
        if sink is not None and row_pred is None:
            sink.emit(self, ctx)
            return
        tgt, it, _scalar = _row_iter(ctx)
        with w.block(f"for {tgt} in {it}:"):
            self._emit_pred_then(row_pred, consume)

    def _emit_pred_kernel(self, ctx: _ChunkCtx, pred) -> bool:
        """Vectorized filter: one comprehension evaluating the predicate
        over exactly the columns it touches, producing a selection vector.
        Empty vectors short-circuit the batch; survivors compact via
        per-column kernels. Returns False for row-independent predicates
        (nothing to vectorize over) — the caller keeps the row-loop test."""
        w = self.w
        src = compile_expr(pred, self.ctx)
        used = [i for i, n in enumerate(ctx.names) if _name_used(src, n)]
        use_w = ctx.whole_local is not None and _name_used(src, ctx.whole_local)
        if not used and not use_w:
            if ctx.names:
                used = list(range(len(ctx.names)))
            elif ctx.whole_local is not None:
                use_w = True
            else:
                return False
        targets = [ctx.names[i] for i in used]
        sources = [f"{ctx.cols}[{i}]" for i in used]
        if use_w:
            targets.append(ctx.whole_local)
            sources.append(ctx.whole)
        sel = self._next("sl")
        if len(sources) == 1:
            w.emit(f"{sel} = [_i for _i, {targets[0]} in "
                   f"enumerate({sources[0]}) if {src}]")
        else:
            w.emit(f"{sel} = [_i for _i, ({', '.join(targets)}) in "
                   f"enumerate(zip({', '.join(sources)})) if {src}]")
        with w.block(f"if not {sel}:"):
            w.emit("continue")
        self._emit_narrow(ctx, sel)
        return True

    def _emit_narrow(self, ctx: _ChunkCtx, sel: str) -> None:
        """Compact a chunk context to the rows a selection vector names."""
        w = self.w
        k = len(ctx.names)
        if ctx.cols is not None and k:
            w.emit(f"{ctx.cols} = [[_c[_i] for _i in {sel}] "
                   f"for _c in {ctx.sliced_cols()}]")
            ctx.total = k
        if ctx.whole is not None:
            w.emit(f"{ctx.whole} = [{ctx.whole}[_i] for _i in {sel}]")
        if ctx.count is not None:
            w.emit(f"{ctx.count} = len({sel})")

    def _emit_fold_kernel(self, ctx: _ChunkCtx, pred) -> None:
        """Vectorized root fold: one comprehension per chunk.

        Emitted instead of the row loop when the reduce sits directly on a
        chunked scan; filter predicate and head evaluation run inside a
        single list comprehension/`sum`/`max` per chunk (the predicate stays
        fused here — a separate selection pass would cost a second kernel).
        """
        w = self.w
        name, head_expr = self._fold
        tgt, it, _scalar = _row_iter(ctx)
        cond = ""
        if not _is_true(pred):
            cond = f" if {compile_expr(pred, self.ctx)}"
        if name == "count":
            if cond:
                w.emit(f"_acc += sum(1 for {tgt} in {it}{cond})")
            else:
                w.emit(f"_acc += {ctx.count}")
            return
        head = compile_expr(head_expr, self.ctx)
        self._emit_fold_tail(name, f"[{head} for {tgt} in {it}{cond}]")

    def _emit_fold_tail(self, name: str, comp: str) -> None:
        """Merge one chunk-kernel comprehension into the fold accumulator."""
        w = self.w
        if name in ("bag", "list"):
            w.emit(f"_out.extend({comp})")
            return
        hs = self._next("hs")
        if name == "sum":
            w.emit(f"_acc += sum(_h for _h in {comp} if _h is not None)")
        elif name == "avg":
            w.emit(f"{hs} = [_h for _h in {comp} if _h is not None]")
            w.emit(f"_sum += sum({hs})")
            w.emit(f"_cnt += len({hs})")
        elif name in ("max", "min"):
            better = ">" if name == "max" else "<"
            w.emit(f"{hs} = [_h for _h in {comp} if _h is not None]")
            with w.block(f"if {hs}:"):
                w.emit(f"_m = {name}({hs})")
                with w.block(f"if _acc is None or _m {better} _acc:"):
                    w.emit("_acc = _m")
        else:  # pragma: no cover - guarded by the fusible-monoid list
            raise CodegenError(f"no fold kernel for monoid {name!r}")

    def _emit_cache_scan(self, node: PhysScan, consume) -> None:
        w = self.w
        var = _sanitize(node.var)
        call = (f"_rt.cache_chunks({node.source!r}, {node.fields!r}, "
                f"whole={node.bind_whole!r})")
        if node.bind_whole:
            local = f"_{var}_obj"
            self.ctx.bindings[node.var] = ObjectBinding(local)
            names: list[str] = []
            whole_local: str | None = local
            chunk_fields: tuple = ()
        else:
            locals_by_path = {f: f"_{var}_{_sanitize(f)}" for f in node.fields}
            self.ctx.bindings[node.var] = ScalarBinding(locals_by_path)
            names = [locals_by_path[f] for f in node.fields]
            whole_local = None
            chunk_fields = tuple(node.fields)
        region = self._par_regions.get(id(node))
        if region is not None:
            self._emit_parallel_scan(region, node, call, names, whole_local,
                                     {}, chunk_fields, consume)
            return
        ch = self._next("ch")
        with w.block(f"for {ch} in {call}:"):
            self._emit_chunk_body(ch, names, whole_local, node.pred, consume,
                                  chunk_fields=chunk_fields)

    _NODE_PRED = object()  # sentinel: "use node.pred" (None is meaningful)

    def _emit_chunked_scan(self, node: PhysScan, call: str, names: list[str],
                           whole_local: str | None, pop_lists: dict[str, str],
                           chunk_fields: tuple, consume,
                           whole_pop_local: str | None = None,
                           pred=_NODE_PRED) -> None:
        """Shared tail of every chunked scan emitter: the per-chunk loop
        with populate extends, column-local binding and the row loop (or
        fused fold kernel). Morsel-sharded scans wrap the loop in a worker
        function instead. ``pred`` overrides the scan predicate (None when
        selection pushdown already filtered inside the plugin)."""
        if pred is self._NODE_PRED:
            pred = node.pred
        region = self._par_regions.get(id(node))
        if region is not None:
            self._emit_parallel_scan(region, node, call, names, whole_local,
                                     pop_lists, chunk_fields, consume,
                                     whole_pop_local, pred=pred)
            return
        ch = self._next("ch")
        with self.w.block(f"for {ch} in {call}:"):
            self._emit_chunk_body(ch, names, whole_local, pred, consume,
                                  chunk_fields=chunk_fields, node=node,
                                  pop_lists=pop_lists,
                                  whole_pop_local=whole_pop_local)

    def _emit_parallel_scan(self, region, node: PhysScan, call: str,
                            names: list[str], whole_local: str | None,
                            pop_lists: dict[str, str], chunk_fields: tuple,
                            consume, whole_pop_local: str | None = None,
                            pred=_NODE_PRED) -> None:
        """Morsel-sharded scan: worker def + split fan-out + ordered merge.

        The worker re-initialises every accumulator it writes (making them
        worker-locals — it shares only read-only state through its closure)
        and runs the identical chunk loop over its morsel. The coordinator
        charges file-level stats once, runs the scheduler, and merges
        partial accumulators and cache-population columns in morsel order.
        """
        w = self.w
        if pred is self._NODE_PRED:
            pred = node.pred
        assert call.endswith(")")
        call = call[:-1] + ", split=_split)"
        pop_vars = list(pop_lists.values())
        if whole_pop_local:
            pop_vars.append(whole_pop_local)
        ret_vars = list(region.result_vars())
        process = node.backend == "process"
        worker = self._next("mw")

        def emit_worker_body() -> None:
            region.emit_init(w)
            for lst in pop_vars:
                w.emit(f"{lst} = []")
            prelude_thunk = self._worker_prelude
            if prelude_thunk is not None:
                self._worker_prelude = None
                prelude_thunk()
            ch = self._next("ch")
            with w.block(f"for {ch} in {call}:"):
                self._emit_chunk_body(ch, names, whole_local, pred,
                                      consume, chunk_fields=chunk_fields,
                                      node=node, pop_lists=pop_lists,
                                      whole_pop_local=whole_pop_local)
            returns = ret_vars + pop_vars
            trailing = "," if len(returns) == 1 else ""
            w.emit(f"return ({', '.join(returns)}{trailing})")

        shared_names: list[str] = []
        if process:
            # process workers cannot be closures: capture the body, scan it
            # for the coordinator-built read-only state it references (hash
            # tables, NL-join rows, monoids), and emit it as a top-level
            # function taking that state through an explicit ``_shared``
            # dict rehydrated child-side from the kernel spec
            with w.capture(indent=1) as body_lines:
                emit_worker_body()
            body = "\n".join(body_lines)
            local = set(ret_vars) | set(pop_vars)
            shared_names = sorted(
                set(re.findall(r"\b(?:_ht\d+|_nl\d+|_gm\d+|_M)\b", body))
                - local
            )
            header = [f"def {worker}(_rt, _shared, _split):"]
            header.extend(f"    {n} = _shared[{n!r}]" for n in shared_names)
            self._proc_workers.append("\n".join(header) + "\n" + body)
        else:
            with w.block(f"def {worker}(_split):"):
                emit_worker_body()
        if node.access != "cache":
            w.emit(f"_rt.account_raw({node.source!r})")
        # bag/list driver folds are LIMIT-countable: the runtime may
        # over-partition their splits and stop consuming morsels early
        limited = isinstance(region, _FoldRegion) and \
            region.name in ("bag", "list")
        splits = self._next("sp")
        w.emit(
            f"{splits} = _rt.scan_splits({node.source!r}, {node.parallel}, "
            f"access={node.access!r}, fields={node.fields!r}, "
            f"whole={node.bind_whole!r}, limited={limited!r})"
        )
        parts = self._next("pt")
        if process:
            shared_var = self._next("sh")
            items = ", ".join(f"{n!r}: {n}" for n in shared_names)
            w.emit(f"{shared_var} = {{{items}}}")
            w.emit(f"{parts} = _rt.run_morsels_spec(__vida_module_source__, "
                   f"{worker!r}, {shared_var}, {splits}, {node.parallel}, "
                   f"limited={limited!r})")
        else:
            w.emit(f"{parts} = _rt.run_morsels({worker}, {splits}, "
                   f"{node.parallel}, limited={limited!r})")
        region.emit_outer_init(w)
        part = self._next("p")
        with w.block(f"for {part} in {parts}:"):
            region.emit_merge(w, part)
            for i, lst in enumerate(pop_vars):
                w.emit(f"{lst}.extend({part}[{len(ret_vars) + i}])")
        if node.access != "cache":
            # merge sharded auxiliary-structure partials (positional maps)
            w.emit(f"_rt.finish_scan({node.source!r}, {splits})")

    def _emit_csv_scan(self, node: PhysScan, entry, consume) -> None:
        entry.plugin.field_indexes(list(node.fields))  # validate columns early
        var = _sanitize(node.var)
        pop_lists = self._emit_populate_prelude(node, var)
        locals_by_path = {f: f"_{var}_{_sanitize(f)}" for f in node.fields}
        binding = ScalarBinding(dict(locals_by_path))
        if node.bind_whole:
            binding.whole_local = f"_{var}_obj"
        self.ctx.bindings[node.var] = binding
        names = [locals_by_path[f] for f in node.fields]
        chunk_fields = node.chunk_fields()
        pred = node.pred
        if node.access == "index":
            # value-index access path: candidate rows through the JIT index,
            # holes scanned in place; the original predicate stays as a
            # vectorized recheck so partial-coverage indexes remain exact
            call = (f"_rt.index_chunks({node.source!r}, {chunk_fields!r}, "
                    f"batch_size={node.batch_size}, "
                    f"whole={node.bind_whole!r}, "
                    f"lookup={node.index_lookup!r}, "
                    f"emit_fields={node.index_emit!r})")
            self._emit_chunked_scan(node, call, names, binding.whole_local,
                                    pop_lists, chunk_fields, consume,
                                    pred=pred)
            self._emit_populate_finalizer(node, pop_lists)
            return
        push = ""
        if node.sel_push and pred is not None:
            pushed = self._pred_pushdown_kernel(node, locals_by_path)
            if pushed is not None:
                kernel, pred_fields, emit_def = pushed
                if (node.backend == "process"
                        and self._par_regions.get(id(node)) is not None):
                    # the kernel must be a worker-local def: the child
                    # executes only module-level code plus the worker body
                    self._worker_prelude = emit_def
                else:
                    emit_def()
                push = f", pred_fields={pred_fields!r}, pred_kernel={kernel}"
                pred = None  # chunks arrive as dense predicate survivors
        emit = f", index_fields={node.index_emit!r}" if node.index_emit else ""
        call = (f"_rt.csv_chunks({node.source!r}, {chunk_fields!r}, "
                f"access={node.access!r}, batch_size={node.batch_size}, "
                f"whole={node.bind_whole!r}{push}{emit})")
        self._emit_chunked_scan(node, call, names, binding.whole_local,
                                pop_lists, chunk_fields, consume, pred=pred)
        self._emit_populate_finalizer(node, pop_lists)

    def _pred_pushdown_kernel(self, node: PhysScan,
                              locals_by_path: dict[str, str]):
        """Selection pushdown (late materialization): the predicate becomes
        a standalone kernel function over its columns; the plugin runs it
        right after navigating those columns and materialises the remaining
        columns only for the surviving row indexes. Returns ``(name, fields,
        emit_def)`` — the definition is emitted by the caller, either in
        place (thread/serial) or deferred into the worker body (process)."""
        src = compile_expr(node.pred, self.ctx)
        used = [f for f in node.fields if _name_used(src, locals_by_path[f])]
        if not used:
            return None
        kernel = self._next("pk")
        params = [f"_pc{i}" for i in range(len(used))]
        targets = [locals_by_path[f] for f in used]

        def emit_def() -> None:
            w = self.w
            with w.block(f"def {kernel}({', '.join(params)}):"):
                if len(params) == 1:
                    w.emit(f"return [_i for _i, {targets[0]} in "
                           f"enumerate({params[0]}) if {src}]")
                else:
                    w.emit(f"return [_i for _i, ({', '.join(targets)}) in "
                           f"enumerate(zip({', '.join(params)})) if {src}]")

        return kernel, tuple(used), emit_def

    def _emit_json_scan(self, node: PhysScan, consume) -> None:
        w = self.w
        var = _sanitize(node.var)
        local = f"_{var}_obj"

        scalar_pop = tuple(f for f in node.populate if f != "*")
        pop_lists: dict[str, str] = {}
        for f in scalar_pop:
            lst = f"_pop_{var}_{_sanitize(f)}"
            pop_lists[f] = lst
            w.emit(f"{lst} = []")
        populate_whole = self._next("popw") if node.populate_layout in (
            "objects", "bson", "json_text", "positions"
        ) and node.populate == ("*",) else None
        if populate_whole:
            w.emit(f"{populate_whole} = []")

        bind_whole = node.bind_whole or not node.fields
        if bind_whole:
            self.ctx.bindings[node.var] = ObjectBinding(local)
            names: list[str] = []
            whole_local = local
            chunk_fields: tuple = scalar_pop
        else:
            scalar_paths = {f: f"_{var}_{_sanitize(f)}" for f in node.fields}
            self.ctx.bindings[node.var] = ScalarBinding(dict(scalar_paths))
            names = [scalar_paths[f] for f in node.fields]
            whole_local = None
            chunk_fields = node.chunk_fields()

        if node.access == "index":
            call = (f"_rt.index_chunks({node.source!r}, {chunk_fields!r}, "
                    f"batch_size={node.batch_size}, whole={bind_whole!r}, "
                    f"lookup={node.index_lookup!r}, "
                    f"emit_fields={node.index_emit!r})")
        else:
            emit = (f", index_fields={node.index_emit!r}"
                    if node.index_emit else "")
            call = (f"_rt.json_chunks({node.source!r}, {chunk_fields!r}, "
                    f"batch_size={node.batch_size}, whole={bind_whole!r}"
                    f"{emit})")
        self._emit_chunked_scan(node, call, names, whole_local, pop_lists,
                                chunk_fields, consume,
                                whole_pop_local=populate_whole)

        if scalar_pop:
            lists = ", ".join(pop_lists[f] for f in scalar_pop)
            trailing = "," if len(scalar_pop) == 1 else ""
            self._finalizers.append(
                f"_rt.admit_columns({node.source!r}, {scalar_pop!r}, ({lists}{trailing}))"
            )
        if populate_whole:
            self._finalizers.append(
                f"_rt.admit_elements({node.source!r}, {node.populate_layout!r}, "
                f"{populate_whole})"
            )

    def _emit_array_scan(self, node: PhysScan, entry, consume) -> None:
        plugin = entry.plugin
        var = _sanitize(node.var)
        names_all = list(plugin.dim_names) + [n for n, _t in plugin.header.fields]
        locals_by_path = {}
        for f in node.fields:
            if f not in names_all:
                raise CodegenError(
                    f"array source {node.source!r} has no component {f!r}"
                )
            locals_by_path[f] = f"_{var}_{_sanitize(f)}"
        binding = ScalarBinding(dict(locals_by_path))
        if node.bind_whole:
            binding.whole_local = f"_{var}_obj"
        self.ctx.bindings[node.var] = binding
        pop_lists = self._emit_populate_prelude(node, var)
        names = [locals_by_path[f] for f in node.fields]
        chunk_fields = node.chunk_fields()
        call = (f"_rt.array_chunks({node.source!r}, {chunk_fields!r}, "
                f"batch_size={node.batch_size}, whole={node.bind_whole!r})")
        self._emit_chunked_scan(node, call, names, binding.whole_local,
                                pop_lists, chunk_fields, consume)
        self._emit_populate_finalizer(node, pop_lists)

    def _emit_xls_scan(self, node: PhysScan, entry, consume) -> None:
        var = _sanitize(node.var)
        locals_by_path = {f: f"_{var}_{_sanitize(f)}" for f in node.fields}
        binding = ScalarBinding(dict(locals_by_path))
        if node.bind_whole:
            binding.whole_local = f"_{var}_obj"
        self.ctx.bindings[node.var] = binding
        pop_lists = self._emit_populate_prelude(node, var)
        names = [locals_by_path[f] for f in node.fields]
        chunk_fields = node.chunk_fields()
        call = (f"_rt.xls_chunks({node.source!r}, {chunk_fields!r}, "
                f"batch_size={node.batch_size}, whole={node.bind_whole!r})")
        self._emit_chunked_scan(node, call, names, binding.whole_local,
                                pop_lists, chunk_fields, consume)
        self._emit_populate_finalizer(node, pop_lists)

    def _emit_populate_prelude(self, node: PhysScan, var: str) -> dict[str, str]:
        pop_lists: dict[str, str] = {}
        for f in node.populate:
            lst = f"_pop_{var}_{_sanitize(f)}"
            pop_lists[f] = lst
            self.w.emit(f"{lst} = []")
        return pop_lists

    def _emit_populate_finalizer(self, node: PhysScan, pop_lists: dict) -> None:
        if not node.populate:
            return
        lists = ", ".join(pop_lists[f] for f in node.populate)
        trailing = "," if len(node.populate) == 1 else ""
        self._finalizers.append(
            f"_rt.admit_columns({node.source!r}, {tuple(node.populate)!r}, "
            f"({lists}{trailing}))"
        )

    def _emit_expr_scan(self, node: PhysExprScan, consume) -> None:
        local = f"_{_sanitize(node.var)}_obj"
        src = compile_expr(node.expr, self.ctx)
        self.ctx.bindings[node.var] = ObjectBinding(local)
        with self.w.block(f"for {local} in ({src} or ()):"):
            self._emit_pred_then(node.pred, consume)

    # -- non-leaf operators -----------------------------------------------------------

    def _emit_filter(self, node: PhysFilter, consume) -> None:
        def inner():
            self._emit_pred_then(node.pred, consume)

        self._emit_node(node.child, inner)

    def _binding_locals(self, variables) -> list[str]:
        """Deterministic flat list of the locals carrying given vars' data."""
        out: list[str] = []
        for var in variables:
            binding = self.ctx.bindings.get(var)
            if binding is None:
                raise CodegenError(f"variable {var!r} has no binding at join time")
            if isinstance(binding, ObjectBinding):
                out.append(binding.local)
            else:
                if binding.whole_local:
                    out.append(binding.whole_local)
                out.extend(binding.locals_by_path[p] for p in sorted(binding.locals_by_path))
        return out

    def _join_key(self, keys: tuple) -> str:
        """Hash-table key expression: bare value for single-key joins (no
        per-row tuple allocation), a tuple otherwise."""
        if len(keys) == 1:
            return compile_expr(keys[0], self.ctx)
        return "(" + ", ".join(compile_expr(k, self.ctx) for k in keys) + ")"

    def _emit_hash_join(self, node: PhysHashJoin, consume) -> None:
        w = self.w
        # a root fold aimed at this join's output fuses into the probe sink;
        # it must never leak into the build/probe scan emitters themselves
        fold = self._fold
        self._fold = None
        ht = self._next("ht")
        w.emit(f"{ht} = {{}}")
        if isinstance(node.build, PhysScan) and node.build.parallel > 1:
            # morsel-sharded build: workers fill partial tables over their
            # morsels, merged per key in morsel order by the coordinator
            self._par_regions[id(node.build)] = _BuildRegion(ht)

        if self._sinkable(node.build):
            # vectorized build: key-column kernel + bulk dict inserts
            self._chunk_sink = _BuildSink(ht, node)
            try:
                self._emit_node(node.build, None)
            finally:
                self._chunk_sink = None
        else:
            def build_consume():
                locals_list = self._binding_locals(node.build.bound_vars())
                row = ", ".join(locals_list) + ("," if len(locals_list) == 1 else "")
                w.emit(f"_k = {self._join_key(node.build_keys)}")
                w.emit(f"_b = {ht}.get(_k)")
                with w.block("if _b is None:"):
                    w.emit(f"{ht}[_k] = [({row})]")
                with w.block("else:"):
                    w.emit(f"_b.append(({row}))")

            self._emit_node(node.build, build_consume)
        build_locals = self._binding_locals(node.build.bound_vars())

        if self._sinkable(node.probe):
            # vectorized probe: batched key lookups → matched-selection
            # vector; the fused root fold (if any) folds the survivors
            self._chunk_sink = _ProbeSink(ht, node, build_locals, consume,
                                          fold)
            try:
                self._emit_node(node.probe, consume)
            finally:
                self._chunk_sink = None
            return

        def probe_consume():
            matches = self._next("mt")
            w.emit(f"{matches} = {ht}.get({self._join_key(node.probe_keys)})")
            with w.block(f"if {matches} is not None:"):
                row_var = self._next("r")
                with w.block(f"for {row_var} in {matches}:"):
                    for i, name in enumerate(build_locals):
                        w.emit(f"{name} = {row_var}[{i}]")
                    self._emit_pred_then(node.residual, consume)

        self._emit_node(node.probe, probe_consume)

    def _emit_nl_join(self, node: PhysNLJoin, consume) -> None:
        w = self.w
        inner_rows = self._next("nl")
        w.emit(f"{inner_rows} = []")

        def inner_consume():
            locals_list = self._binding_locals(node.inner.bound_vars())
            row = ", ".join(locals_list) + ("," if len(locals_list) == 1 else "")
            w.emit(f"{inner_rows}.append(({row}))")

        self._emit_node(node.inner, inner_consume)
        inner_locals = self._binding_locals(node.inner.bound_vars())

        def outer_consume():
            row_var = self._next("r")
            with w.block(f"for {row_var} in {inner_rows}:"):
                for i, name in enumerate(inner_locals):
                    w.emit(f"{name} = {row_var}[{i}]")
                self._emit_pred_then(node.pred, consume)

        self._emit_node(node.outer, outer_consume)

    def _emit_unnest(self, node: PhysUnnest, consume) -> None:
        w = self.w
        local = f"_{_sanitize(node.var)}_obj"

        def inner():
            src = compile_expr(node.path, self.ctx)
            self.ctx.bindings[node.var] = ObjectBinding(local)
            with w.block(f"for {local} in ({src} or ()):"):
                self._emit_pred_then(node.pred, consume)

        self._emit_node(node.child, inner)

    def _emit_nest(self, node: PhysNest, consume) -> None:
        w = self.w
        groups = self._next("grp")
        mono = self._next("gm")
        w.emit(f"{mono} = _rt.monoid({node.monoid.name!r}, {node.monoid.params!r})")
        w.emit(f"{groups} = {{}}")
        if node is self._nest_parallel:
            # the driver scan's worker accumulates into a worker-local copy
            # of ``groups``; the coordinator merges per key in morsel order
            self._par_regions[id(self._nest_driver)] = _NestRegion(groups, mono)

        def child_consume():
            keys = ", ".join(compile_expr(e, self.ctx) for _n, e in node.keys)
            trailing = "," if len(node.keys) == 1 else ""
            head = compile_expr(node.head, self.ctx)
            w.emit(f"_k = ({keys}{trailing})")
            w.emit(f"_g = {groups}.get(_k)")
            with w.block("if _g is None:"):
                w.emit(f"_g = {mono}.zero()")
            w.emit(f"{groups}[_k] = {mono}.merge(_g, {mono}.lift({head}))")

        self._emit_node(node.child, child_consume)

        local = f"_{_sanitize(node.group_var)}_obj"
        self.ctx.bindings[node.group_var] = ObjectBinding(local)
        with w.block(f"for _k, _g in {groups}.items():"):
            key_items = ", ".join(
                f"{name!r}: _k[{i}]" for i, (name, _e) in enumerate(node.keys)
            )
            w.emit(
                f"{local} = {{{key_items}, {node.agg_name!r}: {mono}.finalize(_g)}}"
            )
            consume()
