"""Columnar batch ("chunk") protocol shared by every scan path.

ViDa's generated code eliminates per-tuple interpretation (paper §4); the
Python reproduction additionally has to fight Python's own per-row
interpretation tax at the plugin → runtime → engine boundary. The fix is the
classic complement of JIT compilation: vectorized (batch-at-a-time)
execution. Format plugins tokenize/convert a fixed-size batch of rows into
column lists with tight per-column kernels (list comprehensions run at C
speed), and both engines iterate those columns with ``zip`` instead of
making a Python-level call per row.

A :class:`Chunk` is the unit that crosses the boundary:

- ``fields``  — the dotted paths the columns are aligned with,
- ``columns`` — one Python list per field, all the same length,
- ``whole``   — optionally, the whole elements (row dicts / parsed JSON
  objects) for scans that must bind the full record,
- ``selection`` — optional selection vector: indexes of surviving rows
  after a batch-level filter (cleaning skips, predicate kernels); chunks
  travel *uncompacted* and every consumer honours the vector —
  :meth:`iter_rows`/:meth:`iter_whole` yield only surviving rows,
  :meth:`compact` materialises a dense chunk, and an empty vector means
  the whole batch was filtered out (consumers short-circuit).

Cache hits are served as *zero-copy* chunk views: a cached columnar entry's
lists are wrapped in a single Chunk without copying a value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

#: default rows-per-chunk when the planner has no better information
DEFAULT_BATCH_SIZE = 1024


@dataclass
class Chunk:
    """One columnar batch of rows flowing through the scan pipeline."""

    fields: tuple[str, ...]
    columns: tuple[list, ...]
    length: int
    whole: list | None = None
    selection: list[int] | None = None
    #: physical rows the producer scanned for this batch when that exceeds
    #: ``length`` — set by selection-pushdown scans that materialise only
    #: predicate survivors (late materialization); used for raw-row stats
    scanned: int | None = None

    @classmethod
    def from_columns(
        cls,
        fields: Sequence[str],
        columns: Sequence[list],
        whole: list | None = None,
    ) -> "Chunk":
        fields = tuple(fields)
        columns = tuple(columns)
        if columns:
            length = len(columns[0])
            for col in columns[1:]:
                if len(col) != length:
                    raise ValueError(
                        f"ragged chunk: column lengths {[len(c) for c in columns]}"
                    )
        elif whole is not None:
            length = len(whole)
        else:
            length = 0
        if whole is not None and columns and len(whole) != length:
            raise ValueError(
                f"whole-element list of {len(whole)} rows misaligned with "
                f"columns of {length}"
            )
        return cls(fields, columns, length, whole)

    @classmethod
    def from_rows(cls, fields: Sequence[str], rows: Iterable[tuple]) -> "Chunk":
        """Columnarize an iterable of aligned row tuples.

        Every row must carry exactly ``len(fields)`` values: ``zip(*rows)``
        truncates to the shortest row, so ragged input is rejected up front
        with the same ``ValueError`` contract as :meth:`from_columns`.
        """
        fields = tuple(fields)
        rows = list(rows)
        if not rows:
            return cls(fields, tuple([] for _ in fields), 0)
        width = len(fields)
        for i, row in enumerate(rows):
            if len(row) != width:
                raise ValueError(
                    f"ragged chunk: row {i} has {len(row)} values for "
                    f"{width} fields"
                )
        columns = tuple(list(col) for col in zip(*rows))
        return cls(fields, columns, len(rows))

    def column(self, name: str) -> list:
        try:
            return self.columns[self.fields.index(name)]
        except ValueError:
            raise KeyError(f"chunk has no column {name!r}; has {self.fields}") from None

    @property
    def selected_length(self) -> int:
        """Number of surviving rows (``length`` when nothing was filtered)."""
        return self.length if self.selection is None else len(self.selection)

    def iter_rows(self) -> Iterator[tuple]:
        """Yield aligned value tuples of *surviving* rows.

        A pending ``selection`` vector is honoured: filtered-out rows never
        surface. Dense chunks iterate with C-level ``zip``.
        """
        sel = self.selection
        if not self.columns:
            count = self.length if sel is None else len(sel)
            return iter(() for _ in range(count))
        if sel is not None:
            cols = self.columns
            if len(cols) == 1:
                col = cols[0]
                return ((col[i],) for i in sel)
            return (tuple(col[i] for col in cols) for i in sel)
        if len(self.columns) == 1:
            return ((v,) for v in self.columns[0])
        return zip(*self.columns)

    def rows(self) -> list[tuple]:
        return list(self.iter_rows())

    def iter_whole(self) -> Iterator:
        """Yield surviving whole elements (selection-aware)."""
        if self.whole is None:
            return iter(())
        if self.selection is None:
            return iter(self.whole)
        whole = self.whole
        return (whole[i] for i in self.selection)

    def selected_columns(self) -> tuple[list, ...]:
        """Column lists holding only surviving rows (per-column kernels)."""
        sel = self.selection
        if sel is None:
            return self.columns
        return tuple([col[i] for i in sel] for col in self.columns)

    def take(self, indexes: Sequence[int]) -> "Chunk":
        """A new dense chunk holding only the rows at ``indexes`` (in order).

        Refuses uncompacted chunks: positional indexes are ambiguous while a
        selection vector is pending (physical vs surviving row numbering) —
        :meth:`compact` first.
        """
        if self.selection is not None:
            raise ValueError(
                "take() on an uncompacted chunk: a selection vector is "
                "pending; call compact() first"
            )
        return self._gather(indexes)

    def _gather(self, indexes: Sequence[int]) -> "Chunk":
        columns = tuple([col[i] for i in indexes] for col in self.columns)
        whole = [self.whole[i] for i in indexes] if self.whole is not None else None
        return Chunk(self.fields, columns, len(indexes), whole)

    def compact(self) -> "Chunk":
        """Apply the selection vector, if any, returning a dense chunk."""
        if self.selection is None:
            return self
        return self._gather(self.selection)

    def __len__(self) -> int:
        return self.length


@dataclass(frozen=True)
class Morsel:
    """One independently scannable range of a source (parallel scan unit).

    ``kind`` tells the plugin how to interpret ``lo``/``hi``:

    - ``"all"``      — the whole source (unsplittable fallback; a single
      worker runs the full scan),
    - ``"bytes"``    — a raw byte range ``[lo, hi)``; the reader aligns
      itself to record boundaries (CSV cold scans),
    - ``"rows"``     — a row-index range ``[lo, hi)`` (CSV warm scans via
      the positional map, cache row-range chunk views),
    - ``"spans"``    — a semi-index span range ``[lo, hi)`` (JSON),
    - ``"elements"`` — a linear element range ``[lo, hi)`` (binary arrays).

    ``start_row`` carries the global index of the first record when the
    split kind knows it (row/span/element ranges); byte splits leave it
    None and downstream row numbering is morsel-local.
    """

    kind: str
    lo: int = 0
    hi: int = 0
    start_row: int | None = None


#: the degenerate single-morsel plan for unsplittable sources
MORSEL_ALL = Morsel("all")


def split_ranges(count: int, parts: int, kind: str,
                 row_aligned: bool = True) -> list[Morsel]:
    """Tile ``[0, count)`` into at most ``parts`` contiguous morsels.

    Ranges differ in size by at most one; empty ranges are never emitted.
    ``row_aligned`` kinds record the global start index on each morsel.
    """
    if parts <= 1 or count <= 1:
        return [Morsel(kind, 0, count, start_row=0 if row_aligned else None)]
    parts = min(parts, count)
    base, extra = divmod(count, parts)
    morsels: list[Morsel] = []
    lo = 0
    for i in range(parts):
        hi = lo + base + (1 if i < extra else 0)
        morsels.append(Morsel(kind, lo, hi,
                              start_row=lo if row_aligned else None))
        lo = hi
    return morsels


def chunked(items: Iterable, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list]:
    """Greedily batch any iterable into lists of ``batch_size`` items."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    batch: list = []
    append = batch.append
    for item in items:
        append(item)
        if len(batch) >= batch_size:
            yield batch
            batch = []
            append = batch.append
    if batch:
        yield batch
