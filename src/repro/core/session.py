"""The ViDa session: the library's main entry point.

"Data analysts build databases by launching queries, instead of building
databases to launch queries" (paper §1.2). A :class:`ViDa` session is such a
just-in-time database: register raw files (no loading, no transformation),
then query them in comprehension syntax or SQL. Auxiliary structures
(positional maps, semi-indexes) and data caches build themselves as a side
effect of query execution and amortise across the workload.

A session is a thin per-tenant view over an
:class:`~repro.core.engine.EngineContext`, which owns everything that is a
property of the *data* (catalog, cache, positional maps, value indexes, JIT
compile cache, worker pool). A standalone ``ViDa()`` creates a private
context; passing ``context=`` shares one across many sessions, so one
tenant's cold scan warms every other tenant's queries::

    from repro import EngineContext, ViDa

    ctx = EngineContext()
    db_a, db_b = ViDa(context=ctx), ViDa(context=ctx)
    db_a.register_csv("Patients", "patients.csv")
    db_a.query("for { p <- Patients, p.age > 60 } yield count 1")  # cold
    db_b.query("for { p <- Patients, p.age > 30 } yield count 1")  # warm

Example::

    from repro import ViDa

    db = ViDa()
    db.register_csv("Patients", "patients.csv")
    db.register_json("BrainRegions", "brainregions.json")
    result = db.query('''
        for { p <- Patients, b <- BrainRegions, p.id = b.id, p.age > 60 }
        yield bag (id := p.id, vol := b.volume)
    ''')
    print(result.value, result.stats.cache_only)
"""

from __future__ import annotations

import json as _json
import threading
import time
import weakref
from dataclasses import dataclass

from ..caching import AdmissionPolicy, DataCache
from ..errors import GenerationError, ViDaError
from ..formats.jsonfmt import bson as _bson
from ..mcc import ast as A
from ..mcc.algebra import explain as explain_algebra
from ..mcc.normalize import normalize
from ..mcc.parser import parse
from ..mcc.translate import referenced_sources, translate
from ..mcc.typecheck import typecheck
from .engine import EngineContext, QuotaCacheView
from .executor.runtime import QueryRuntime
from .executor.static_engine import eval_expr
from .optimizer.planner import PlanDecisions, Planner
from .physical import explain_physical


@dataclass
class QueryStats:
    """Timing and execution statistics of one query."""

    parse_ms: float = 0.0
    typecheck_ms: float = 0.0
    normalize_ms: float = 0.0
    plan_ms: float = 0.0
    codegen_ms: float = 0.0
    execute_ms: float = 0.0
    total_ms: float = 0.0
    engine: str = "jit"
    raw_rows: int = 0
    cache_rows: int = 0
    raw_bytes: int = 0
    cache_only: bool = False
    cleaned_rows: int = 0
    skipped_rows: int = 0
    #: morsels a parallel LIMIT cut short (early-termination observability)
    morsels_cancelled: int = 0
    #: rows newly added to JIT value indexes as scan byproducts
    index_builds: int = 0
    #: scans answered through a value-index access path
    index_hits: int = 0
    #: rows fetched via index candidate lists (vs. full-scan raw_rows)
    index_rows_served: int = 0
    #: physical plan reused from the prepared-statement cache (same text,
    #: same plan epoch — planning was skipped entirely)
    plan_cached: bool = False
    #: planner's total cost estimate for the chosen plan, in cost units
    est_cost_units: float = 0.0
    #: the estimate converted to milliseconds through the calibrated
    #: unit_ms — comparable against execute_ms to judge the model
    est_ms: float = 0.0


@dataclass
class QueryResult:
    """Query output plus everything needed to understand how it ran."""

    value: object
    stats: QueryStats
    decisions: PlanDecisions | None = None
    plan_text: str = ""
    code: str = ""

    def __iter__(self):
        if isinstance(self.value, list):
            return iter(self.value)
        raise TypeError("scalar query result is not iterable")


def _release_context(engine: EngineContext, owned: bool) -> None:
    """Module-level session finalizer: detach from the shared context (the
    last session out shuts the worker pool) and close a private one."""
    engine.detach()
    if owned:
        engine.close()


class ViDa:
    """A just-in-time virtual database over raw files (one tenant session)."""

    def __init__(
        self,
        cache_budget_bytes: int | None = None,
        admission_policy: AdmissionPolicy | None = None,
        default_engine: str = "jit",
        enable_cache: bool = True,
        enable_posmap: bool = True,
        batch_size: int | None = None,
        parallelism: int = 1,
        backend: str = "thread",
        vector_filters: bool = True,
        enable_indexes: bool = True,
        adaptive_stats: bool = True,
        context: EngineContext | None = None,
        cache_write_quota_bytes: int | None = None,
        retain_generations: int | None = None,
    ):
        if default_engine not in ("jit", "static", "auto"):
            raise ViDaError(
                f"unknown engine {default_engine!r} (jit | static | auto)"
            )
        if batch_size is not None and batch_size < 1:
            raise ViDaError(f"batch_size must be >= 1, got {batch_size}")
        if parallelism < 1:
            raise ViDaError(f"parallelism must be >= 1, got {parallelism}")
        if backend not in ("thread", "process", "serial"):
            raise ViDaError(
                f"unknown backend {backend!r} (thread | process | serial)"
            )
        if context is not None and (cache_budget_bytes is not None
                                    or admission_policy is not None):
            raise ViDaError(
                "cache_budget_bytes / admission_policy belong to the "
                "EngineContext — configure them where the context is built"
            )
        if context is not None and retain_generations is not None:
            raise ViDaError(
                "retain_generations belongs to the EngineContext — "
                "configure it where the context is built"
            )
        self._owns_context = context is None
        if context is None:
            from .generations import DEFAULT_RETAIN_GENERATIONS

            context = EngineContext(
                cache_budget_bytes if cache_budget_bytes is not None
                else 256 << 20,
                admission_policy,
                retain_generations=retain_generations
                if retain_generations is not None
                else DEFAULT_RETAIN_GENERATIONS,
            )
        context.attach()
        #: the shared :class:`~repro.core.engine.EngineContext` this session
        #: is a tenant of (private when constructed without ``context=``)
        self._engine = context
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _release_context, context, self._owns_context
        )
        #: per-tenant cache-write quota: admissions beyond this many bytes
        #: are refused (reads always pass through) — None means unmetered
        self._quota_view = (
            QuotaCacheView(context.cache, cache_write_quota_bytes)
            if cache_write_quota_bytes is not None else None
        )
        self.default_engine = default_engine
        self.enable_cache = enable_cache
        self.enable_posmap = enable_posmap
        #: fixed rows-per-chunk for vectorized scans (None = planner's choice)
        self.batch_size = batch_size
        #: morsel worker budget for parallel scans (1 = serial, the default;
        #: the planner still decides per scan whether sharding pays off)
        self.parallelism = parallelism
        #: morsel substrate: "thread" (default), "process" (kernel specs over
        #: a session-lifetime worker-process pool — true multicore on stock
        #: CPython), or "serial" (force every scan serial, the differential
        #: baseline). The planner still falls back per scan via the cost
        #: model and kernel-spec shippability gates.
        self.backend = backend
        #: selection-vector filter kernels + vectorized join build/probe in
        #: generated code (True); False keeps row-at-a-time evaluation — the
        #: differential baseline bench_filtered_scan measures against
        self.vector_filters = vector_filters
        #: JIT secondary indexes: value-based access paths built as scan
        #: byproducts (arXiv 1901.07627 extends the paper's positional maps
        #: to value indexes the same just-in-time way). False disables both
        #: emission and index access paths — the differential baseline.
        self.enable_indexes = enable_indexes
        #: statistics-driven adaptive optimization: collect table stats as
        #: scan byproducts, feed them into selectivity estimation and join
        #: ordering, and recalibrate cost constants from measured scan
        #: times. False is the differential baseline: no collection, greedy
        #: syntax-driven join order, hand-calibrated constants only.
        self.adaptive_stats = adaptive_stats
        self.cleaning: dict[str, object] = {}
        self.devices: dict[str, object] = {}
        self.query_log: list[QueryStats] = []
        # prepared-statement cache: query text →
        # [parsed, normalized, plan_epoch, plan, decisions]. The ASTs are
        # pure functions of the text, so their reuse is always safe; the
        # physical plan is only reused while the plan epoch (catalog shape,
        # file generations, table statistics, cost calibration, session
        # knobs) is unchanged — a plan built before stats arrived or before
        # a file mutated is replanned, never served stale. LRU-bounded
        # alongside the JIT compile cache; the lock keeps the pop/re-insert
        # LRU dance atomic when a tenant pipelines concurrent queries
        # through one session.
        self._prepared: dict[str, list] = {}
        self._max_prepared = 256
        self._prepared_lock = threading.Lock()

    # -- shared engine state (delegates to the context) -----------------------

    @property
    def engine_context(self) -> EngineContext:
        """The :class:`EngineContext` this session shares state through."""
        return self._engine

    @property
    def catalog(self):
        return self._engine.catalog

    @property
    def cache(self):
        """The shared data cache — through the tenant's write-metering
        quota view when the session was opened with one."""
        return self._quota_view if self._quota_view is not None \
            else self._engine.cache

    @property
    def indexes(self):
        return self._engine.indexes

    @property
    def _jit(self):
        return self._engine.jit

    @property
    def _static(self):
        return self._engine.static

    # -- registration (delegates to the catalog) ------------------------------

    def register_csv(self, name, path, **kwargs):
        return self.catalog.register_csv(name, path, **kwargs)

    def register_json(self, name, path):
        return self.catalog.register_json(name, path)

    def register_array(self, name, path, dim_names=None):
        return self.catalog.register_array(name, path, dim_names)

    def register_xls(self, name, path, sheet=None):
        return self.catalog.register_xls(name, path, sheet)

    def register_memory(self, name, data, elem_type=None):
        return self.catalog.register_memory(name, data, elem_type)

    def register_dbms(self, name, store, table):
        return self.catalog.register_dbms(name, store, table)

    def register_auto(self, name, path):
        return self.catalog.register_auto(name, path)

    def set_cleaning(self, source: str, policy) -> None:
        """Attach a scan-time cleaning policy to a source (paper §7)."""
        self.catalog.get(source)  # validate
        self.cleaning[source] = policy

    def set_device(self, source: str, device) -> None:
        """Charge raw accesses of ``source`` to a simulated device ('*' = all)."""
        self.devices[source] = device

    # -- querying -----------------------------------------------------------

    def query(
        self,
        text_or_expr,
        engine: str | None = None,
        output: str = "python",
        limit: int | None = None,
        as_of: dict[str, int] | None = None,
    ) -> QueryResult:
        """Run a comprehension-syntax query (or a pre-built AST).

        ``engine`` overrides the session default ('jit' or 'static');
        ``output`` shapes collection results: python | records | tuples |
        columns | json | bson. ``limit`` truncates a collection result
        *before* shaping, so every output shape honours it. ``as_of``
        (source name → generation token) time-travels the named sources
        to a retained generation; an unknown or evicted generation raises
        :class:`~repro.errors.GenerationError`.
        """
        if self._closed:
            raise ViDaError(
                "session is closed — open a new ViDa against the engine "
                "context to keep querying"
            )
        engine = engine or self.default_engine
        stats = QueryStats(engine=engine)
        self._engine.count(queries=1)
        t_start = time.perf_counter()

        with self._prepared_lock:
            prepared = self._prepared.pop(text_or_expr, None) \
                if isinstance(text_or_expr, str) else None
        if prepared is not None:
            with self._prepared_lock:
                self._prepared[text_or_expr] = prepared  # LRU move-to-end
            expr, norm = prepared[0], prepared[1]
            t0 = time.perf_counter()
            typecheck(expr, self.catalog.type_env())
            stats.typecheck_ms = (time.perf_counter() - t0) * 1e3
        else:
            t0 = time.perf_counter()
            expr = parse(text_or_expr) if isinstance(text_or_expr, str) \
                else text_or_expr
            stats.parse_ms = (time.perf_counter() - t0) * 1e3

            t0 = time.perf_counter()
            typecheck(expr, self.catalog.type_env())
            stats.typecheck_ms = (time.perf_counter() - t0) * 1e3

            t0 = time.perf_counter()
            norm = normalize(expr)
            stats.normalize_ms = (time.perf_counter() - t0) * 1e3
            if isinstance(text_or_expr, str):
                prepared = [expr, norm, None, None, None]
                with self._prepared_lock:
                    if len(self._prepared) >= self._max_prepared:
                        self._prepared.pop(next(iter(self._prepared)))
                    self._prepared[text_or_expr] = prepared

        # freshness: a mutated file either delta-extends its auxiliary
        # structures (append classification) or drops them, snapshotting
        # the superseded generation into its bounded history either way
        for src in referenced_sources(norm, self.catalog.names()):
            self._engine.refresh_source(src)

        # AS OF: resolve generation pins against the history. Pinning the
        # live generation is the identity; anything else must be retained,
        # and holds a refcount for the query's duration so retention
        # cannot evict the snapshot mid-flight.
        pins: dict[str, object] = {}
        acquired: list[tuple] = []
        if as_of:
            for src, gen in as_of.items():
                entry = self.catalog.get(src)
                if gen == entry.generation:
                    continue
                snap = entry.history.acquire(gen)
                if snap is None:
                    retained = ", ".join(
                        str(g) for g in entry.history.generations()) or "none"
                    raise GenerationError(
                        f"source {src!r} has no retained generation {gen} "
                        f"(live: {entry.generation}; retained: {retained})"
                    )
                pins[src] = snap
                acquired.append((entry.history, snap))
        try:
            row_limit = limit if isinstance(limit, int) and limit >= 0 else None
            runtime = QueryRuntime(self.catalog, self.cache if self.enable_cache
                                   else DataCache(0), self.cleaning, self.devices,
                                   row_limit=row_limit,
                                   process_pool=self._worker_pool(),
                                   indexes=self.indexes if self.enable_indexes
                                   else None,
                                   engine=self._engine,
                                   table_stats=self._engine.table_stats
                                   if self.adaptive_stats else None,
                                   as_of=pins)

            if not isinstance(norm, A.Comprehension):
                # Merge-of-comprehensions / constant expressions: interpret.
                if engine == "auto":
                    stats.engine = engine = "static"
                t0 = time.perf_counter()
                value = eval_expr(norm, {}, runtime)
                stats.execute_ms = (time.perf_counter() - t0) * 1e3
                stats.total_ms = (time.perf_counter() - t_start) * 1e3
                self._fill_exec_stats(stats, runtime)
                self.query_log.append(stats)
                value = self._apply_limit(value, limit)
                return QueryResult(self._shape_output(value, output), stats)

            t0 = time.perf_counter()
            epoch = self._plan_epoch()
            # a pinned query never reuses or feeds the prepared-plan cache:
            # its plan is specialised to the snapshot, not the live source
            if prepared is not None and not pins and prepared[3] is not None \
                    and prepared[2] == epoch:
                plan, decisions = prepared[3], prepared[4].clone()
                stats.plan_cached = True
            else:
                algebra = translate(norm, self.catalog.names())
                plan, decisions = self._planner(pins).plan(algebra)
                if prepared is not None and not pins:
                    with self._prepared_lock:
                        prepared[2], prepared[3] = epoch, plan
                        prepared[4] = decisions.clone()
            stats.plan_ms = (time.perf_counter() - t0) * 1e3
            stats.est_cost_units = decisions.total_est_cost

            if engine == "auto":
                stats.engine = engine = self._resolve_engine(plan, decisions)

            code = ""
            t0 = time.perf_counter()
            if engine == "jit":
                compiled = self._jit.compile(plan,
                                             vector_filters=self.vector_filters)
                code = compiled.source
                stats.codegen_ms = (time.perf_counter() - t0) * 1e3
                t0 = time.perf_counter()
                value = compiled(runtime)
            else:
                value = self._static.execute(plan, runtime)
            stats.execute_ms = (time.perf_counter() - t0) * 1e3
            stats.total_ms = (time.perf_counter() - t_start) * 1e3
            self._fill_exec_stats(stats, runtime)
            if self.adaptive_stats:
                # convert the estimate to ms *before* folding this query's
                # timings in, so est vs. measured reflects the model that
                # actually planned the query
                stats.est_ms = self._engine.calibration.estimated_ms(
                    decisions.total_est_cost)
                if runtime.scan_timings:
                    self._engine.calibration.observe(runtime.scan_timings)
            self.query_log.append(stats)

            value = self._apply_limit(value, limit)
            return QueryResult(
                self._shape_output(value, output), stats, decisions,
                explain_physical(plan), code,
            )
        finally:
            for history, snap in acquired:
                history.release(snap)

    def explain(self, text_or_expr) -> str:
        """Logical + physical EXPLAIN of a query, without running it."""
        expr = parse(text_or_expr) if isinstance(text_or_expr, str) else text_or_expr
        typecheck(expr, self.catalog.type_env())
        norm = normalize(expr)
        if not isinstance(norm, A.Comprehension):
            from ..mcc.pretty import pretty

            return f"InterpretedExpression[{pretty(norm)}]"
        algebra = translate(norm, self.catalog.names())
        plan, decisions = self._planner().plan(algebra)
        return (
            "== logical ==\n" + explain_algebra(algebra)
            + "\n== physical ==\n" + explain_physical(plan)
            + "\n== decisions ==\n" + decisions.summary()
        )

    def path(self, query: str, engine: str | None = None,
             output: str = "python") -> QueryResult:
        """Run a PathQL (XPath-flavoured) query over registered sources."""
        from ..languages.pathql import translate_path

        expr = translate_path(query, self.catalog)
        return self.query(expr, engine=engine, output=output)

    def sql(self, statement: str, engine: str | None = None,
            output: str = "python",
            as_of: dict[str, int] | None = None) -> QueryResult:
        """Run a SQL query by translation to the comprehension calculus.

        LIMIT is applied to the raw result rows *before* output shaping, so
        columnar/JSON/BSON outputs honour it too. Generation pins come from
        ``FROM t AS OF GENERATION k`` clauses and/or the ``as_of`` mapping
        (the NDJSON server's per-query field); an in-query clause wins over
        the mapping for the same source.
        """
        from ..languages.sql import parse_sql, translate_sql

        stmt = parse_sql(statement)
        expr = translate_sql(stmt, self.catalog)
        pins = dict(as_of) if as_of else {}
        for ref in (stmt.table, *(j.table for j in stmt.joins)):
            if ref.as_of is not None:
                pins[ref.name] = ref.as_of
        return self.query(expr, engine=engine, output=output,
                          limit=stmt.limit, as_of=pins or None)

    def generations(self, source: str) -> dict:
        """Time-travel introspection: the live generation token of
        ``source`` plus every retained historical generation (oldest
        first) with its classification state."""
        entry = self.catalog.get(source)
        retained = []
        for gen in entry.history.generations():
            snap = entry.history.get(gen)
            if snap is None:
                continue
            retained.append({
                "generation": snap.generation,
                "byte_size": snap.byte_size,
                "row_count": snap.row_count,
                "live_prefix": snap.live,
                "pinned": snap.pinned is not None,
            })
        return {"live": entry.generation, "retained": retained}

    # -- internals -----------------------------------------------------------

    def _planner(self, pinned: dict[str, object] | None = None) -> Planner:
        """A planner seeing this session's configuration and cache state.

        Device-charged sources stay serial (simulated devices account
        per-access state the worker threads would race on); a wildcard
        device pins the whole session serial. ``pinned`` maps sources the
        query time-travels to their generation snapshots.
        """
        parallelism = self.parallelism
        if "*" in self.devices or self.backend == "serial":
            parallelism = 1
        return Planner(self.catalog, self.cache, enable_cache=self.enable_cache,
                       as_of=pinned,
                       enable_posmap=self.enable_posmap,
                       batch_size=self.batch_size,
                       parallelism=parallelism,
                       serial_sources=frozenset(self.devices),
                       cleaning_sources=frozenset(self.cleaning),
                       vector_filters=self.vector_filters,
                       backend=self.backend,
                       cleaning_policies=self.cleaning,
                       indexes=self.indexes if self.enable_indexes else None,
                       stats=self._engine.table_stats
                       if self.adaptive_stats else None,
                       calibration=self._engine.calibration
                       if self.adaptive_stats else None,
                       adaptive=self.adaptive_stats)

    def _plan_epoch(self) -> tuple:
        """Every planner input beyond the query text: the engine-level
        epoch (catalog, generations, stats, calibration, cache movement)
        plus this session's knobs. A prepared plan is reused only while
        this whole tuple is unchanged."""
        return self._engine.plan_epoch() + (
            self.enable_cache, self.enable_posmap, self.batch_size,
            self.parallelism, self.backend, self.vector_filters,
            self.enable_indexes, self.adaptive_stats,
            tuple(sorted(self.cleaning)), tuple(sorted(self.devices)),
        )

    def _resolve_engine(self, plan, decisions: PlanDecisions) -> str:
        """Pick jit vs static for one query (``default_engine="auto"``).

        JIT always wins once its compiled function is cached (the compile
        cost is sunk); otherwise the planner's cost estimate must clear
        the compile-cost threshold, else the static interpreter runs the
        tiny query with zero codegen latency.
        """
        from .optimizer import cost as C

        if self._jit.is_cached(plan, vector_filters=self.vector_filters):
            decisions.engine_choice = "jit (compiled plan cached)"
            return "jit"
        if decisions.total_est_cost >= C.COMPILE_COST:
            decisions.engine_choice = (
                f"jit (est ~{decisions.total_est_cost:.0f}u >= "
                f"compile threshold {C.COMPILE_COST:.0f}u)"
            )
            return "jit"
        decisions.engine_choice = (
            f"static (est ~{decisions.total_est_cost:.0f}u < "
            f"compile threshold {C.COMPILE_COST:.0f}u)"
        )
        return "static"

    def _worker_pool(self):
        """The context's worker-process pool (process backend only); spawned
        lazily on first request, shared by every attached session, reaped
        when the last session detaches."""
        if self.backend != "process" or self.parallelism <= 1:
            return None
        return self._engine.worker_pool(self.parallelism)

    def prestart(self) -> None:
        """Spin worker processes up ahead of the first query, so interpreter
        spawn never lands inside a query (benchmarks call this before
        timing; optional otherwise — the pool spawns lazily)."""
        pool = self._worker_pool()
        if pool is not None:
            pool.prestart()

    def close(self) -> None:
        """Detach this session from the engine context. Idempotent; the
        last session out shuts the shared worker pool, and queries issued
        on a closed session raise :class:`~repro.errors.ViDaError` instead
        of racing torn-down state. The context itself (and everything other
        tenants warmed) survives unless this session owned it privately."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _release_context(self._engine, self._owns_context)

    @property
    def closed(self) -> bool:
        return self._closed

    def _fill_exec_stats(self, stats: QueryStats, runtime: QueryRuntime) -> None:
        es = runtime.stats
        stats.raw_rows = es.raw_rows
        stats.cache_rows = es.cache_rows
        stats.raw_bytes = es.raw_bytes
        stats.cache_only = es.cache_only
        stats.cleaned_rows = es.cleaned_rows
        stats.skipped_rows = es.skipped_rows
        stats.morsels_cancelled = es.morsels_cancelled
        stats.index_builds = es.index_builds
        stats.index_hits = es.index_hits
        stats.index_rows_served = es.index_rows_served

    @staticmethod
    def _apply_limit(value, limit: int | None):
        """Truncate a collection result before shaping (SQL LIMIT)."""
        if limit is not None and isinstance(value, list):
            return value[:limit]
        return value

    @staticmethod
    def _shape_output(value, output: str):
        """Re-shape a collection result ("virtualize" it, paper §3.2)."""
        if output == "python" or not isinstance(value, list):
            return value
        if output == "records":
            return [v if isinstance(v, dict) else {"value": v} for v in value]
        if output == "tuples":
            return [tuple(v.values()) if isinstance(v, dict) else (v,) for v in value]
        if output == "columns":
            if not value:
                return {}
            if not isinstance(value[0], dict):
                return {"value": list(value)}
            return {k: [row.get(k) for row in value] for k in value[0]}
        if output == "json":
            return "\n".join(_json.dumps(v, default=str) for v in value)
        if output == "bson":
            return [_bson.encode(v if isinstance(v, dict) else {"value": v})
                    for v in value]
        raise ViDaError(f"unknown output shape {output!r}")

    # -- workload-level reporting ---------------------------------------------

    def cache_hit_ratio(self) -> float:
        """Fraction of logged queries answered without touching raw files."""
        if not self.query_log:
            return 0.0
        served = sum(1 for s in self.query_log if s.cache_only)
        return served / len(self.query_log)
