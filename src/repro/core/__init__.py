"""ViDa core: catalog, optimizer, JIT/static executors, session facade."""

from .catalog import Catalog, CatalogEntry
from .physical import explain_physical
from .session import QueryResult, QueryStats, ViDa

__all__ = ["Catalog", "CatalogEntry", "QueryResult", "QueryStats", "ViDa",
           "explain_physical"]
