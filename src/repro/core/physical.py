"""Physical query plans and field-usage analysis.

The optimizer lowers the logical algebra into these nodes, making the
raw-data-aware decisions of paper §5 explicit in the plan itself: which
access path each scan uses (cold raw scan, positional-map-navigated warm
scan, cache scan, …), which fields it must extract (projection pushdown —
for raw formats *every extracted field has a real parsing cost*, unlike a
buffer-pool DBMS), which extracted fields to admit to the cache, and how
joins are ordered and executed.

Both executors consume this plan: the JIT compiler emits fused Python code
from it; the static engine interprets it operator-by-operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mcc import ast as A
from ..mcc.monoids import Monoid
from .chunk import DEFAULT_BATCH_SIZE

#: access-path choices for a scan (paper §5 wrapper decisions)
ACCESS_COLD = "cold"        # tokenize everything, build auxiliary structures
ACCESS_WARM = "warm"        # navigate via positional map / semi-index
ACCESS_CACHE = "cache"      # serve from ViDa's data cache
ACCESS_MEMORY = "memory"    # in-memory registered collection
ACCESS_POSITIONS = "positions"  # carry (start,end) spans only (Figure 4d)
ACCESS_INDEX = "index"      # resolve rows via a JIT value index + posmap fetch


@dataclass
class VarUsage:
    """How a plan variable is consumed downstream of its binding."""

    paths: set[tuple[str, ...]] = field(default_factory=set)
    whole: bool = False

    def top_fields(self) -> tuple[str, ...]:
        return tuple(sorted({p[0] for p in self.paths}))

    def dotted_paths(self) -> tuple[str, ...]:
        return tuple(sorted(".".join(p) for p in self.paths))


def collect_usage(expr: A.Expr, acc: dict[str, VarUsage] | None = None) -> dict[str, VarUsage]:
    """Collect per-variable projection paths / whole-value uses in ``expr``.

    A maximal ``Proj`` chain rooted at ``Var(v)`` contributes one dotted
    path; a bare ``Var(v)`` anywhere else marks the whole value as needed.
    Variables bound inside nested comprehensions/lambdas are excluded.
    """
    if acc is None:
        acc = {}
    _collect(expr, acc, shadowed=set())
    return acc


def _collect(expr: A.Expr, acc: dict[str, VarUsage], shadowed: set[str]) -> None:
    if isinstance(expr, A.Var):
        if expr.name not in shadowed:
            acc.setdefault(expr.name, VarUsage()).whole = True
        return
    if isinstance(expr, A.Proj):
        path: list[str] = []
        base = expr
        while isinstance(base, A.Proj):
            path.append(base.attr)
            base = base.expr
        if isinstance(base, A.Var) and base.name not in shadowed:
            acc.setdefault(base.name, VarUsage()).paths.add(tuple(reversed(path)))
            return
        _collect(base, acc, shadowed)
        return
    if isinstance(expr, A.Lambda):
        _collect(expr.body, acc, shadowed | {expr.param})
        return
    if isinstance(expr, A.Comprehension):
        inner_shadow = set(shadowed)
        for q in expr.qualifiers:
            if isinstance(q, A.Generator):
                _collect(q.source, acc, inner_shadow)
                inner_shadow.add(q.var)
            elif isinstance(q, A.Filter):
                _collect(q.pred, acc, inner_shadow)
            elif isinstance(q, A.Bind):
                _collect(q.expr, acc, inner_shadow)
                inner_shadow.add(q.var)
        _collect(expr.head, acc, inner_shadow)
        return
    for child in expr.children():
        _collect(child, acc, shadowed)


# ---------------------------------------------------------------------------
# Physical plan nodes
# ---------------------------------------------------------------------------


class PhysNode:
    def children(self) -> tuple["PhysNode", ...]:
        return ()

    def bound_vars(self) -> tuple[str, ...]:
        out: tuple[str, ...] = ()
        for child in self.children():
            out += child.bound_vars()
        return out


@dataclass
class PhysScan(PhysNode):
    """Scan one catalog source, binding ``var``.

    Attributes:
        fields: dotted paths the scan must extract (projection pushdown).
        access: one of the ACCESS_* constants.
        bind_whole: also bind the full element (records/objects needed whole).
        populate: dotted paths to admit into the data cache during this scan.
        populate_layout: layout for the admitted entry.
        pred: scan-local predicate (single-variable conjuncts pushed down).
        batch_size: rows per chunk on the vectorized scan path (planner pick).
        parallel: degree of parallelism for a morsel-driven scan (planner
            pick; 1 = serial). Only driver scans and direct hash-join build
            scans of splittable formats ever get > 1.
    """

    source: str
    var: str
    format: str
    fields: tuple[str, ...]
    access: str
    bind_whole: bool = False
    populate: tuple[str, ...] = ()
    populate_layout: str = "columns"
    pred: A.Expr | None = None
    #: equality pushed into a DBMS-source index lookup: (field, constant)
    #: or (field, (constants...), "in") for IN-lists
    index_eq: tuple | None = None
    #: ACCESS_INDEX probe spec for a JIT value index — ("eq", field, v),
    #: ("in", field, (vs...)) or ("range", field, lo, hi, lo_incl, hi_incl).
    #: The scan keeps ``pred`` as a recheck, so partial coverage and hash
    #: false positives stay correct.
    index_lookup: tuple | None = None
    #: predicate-conjunct fields whose values the scan should emit as index
    #: byproducts (grows/creates JIT value indexes while scanning)
    index_emit: tuple = ()
    batch_size: int = DEFAULT_BATCH_SIZE
    parallel: int = 1
    #: execution substrate for a parallel scan: "thread" morsel workers share
    #: the interpreter; "process" ships picklable kernel specs to a worker
    #: pool (planner picks it only when estimated work amortizes spawn+IPC)
    backend: str = "thread"
    #: selection pushdown into the scan itself (late materialization): the
    #: plugin evaluates the predicate kernel on the predicate columns and
    #: materialises the remaining columns only for surviving rows. Planner
    #: sets it for warm CSV scans with no cleaning/population/whole-binding.
    sel_push: bool = False
    #: session-level vectorized-filter switch, recorded by the planner so
    #: EXPLAIN reflects the strategy that will actually run
    #: (``ViDa(vector_filters=False)`` compiles row-at-a-time tests)
    vec_filter: bool = True
    #: planner estimates (output rows after pushed predicates, total cost
    #: units) — informational, surfaced by EXPLAIN; 0.0 = not estimated
    est_rows: float = 0.0
    est_cost: float = 0.0
    #: time travel: generation this scan is pinned to (``AS OF GENERATION``),
    #: or None for the live file. Pinned scans run cold+serial with no
    #: byproduct emission or cache population.
    as_of: int | None = None

    def bound_vars(self):
        return (self.var,)

    def chunk_fields(self) -> tuple:
        """Columns a chunked scan must extract: bound fields + populate-only.

        Both engines derive their chunk requests from this, so column
        alignment between generated code and the interpreter cannot drift.
        """
        return tuple(self.fields) + tuple(
            f for f in self.populate if f != "*" and f not in self.fields
        )

    def chunked(self) -> bool:
        """True when this scan moves data over the chunk protocol (and so
        can evaluate its predicate as a selection-vector kernel)."""
        if self.format == "memory" or self.access == ACCESS_MEMORY:
            return False
        if self.format == "dbms" and self.index_eq is not None:
            return False
        return True

    def vectorized_filter(self) -> bool:
        """True when the pushed-down predicate runs as a per-chunk
        selection-vector kernel instead of a per-row test (EXPLAIN's
        ``filter=vec``)."""
        return self.pred is not None and self.chunked() and self.vec_filter


@dataclass
class PhysExprScan(PhysNode):
    """Scan a constant/derived collection expression."""

    expr: A.Expr
    var: str
    pred: A.Expr | None = None

    def bound_vars(self):
        return (self.var,)


@dataclass
class PhysFilter(PhysNode):
    child: PhysNode
    pred: A.Expr

    def children(self):
        return (self.child,)


@dataclass
class PhysHashJoin(PhysNode):
    """Equi hash join; the build side is materialised into a hash table."""

    build: PhysNode
    probe: PhysNode
    build_keys: tuple[A.Expr, ...]
    probe_keys: tuple[A.Expr, ...]
    residual: A.Expr | None = None

    def children(self):
        return (self.build, self.probe)


@dataclass
class PhysNLJoin(PhysNode):
    """Nested-loop join for non-equi predicates (inner side materialised)."""

    outer: PhysNode
    inner: PhysNode
    pred: A.Expr | None = None

    def children(self):
        return (self.outer, self.inner)


@dataclass
class PhysUnnest(PhysNode):
    child: PhysNode
    path: A.Expr
    var: str
    pred: A.Expr | None = None

    def children(self):
        return (self.child,)

    def bound_vars(self):
        return self.child.bound_vars() + (self.var,)


@dataclass
class PhysNest(PhysNode):
    """Hash-based grouping: binds ``group_var`` to ⟨keys..., agg⟩ records."""

    child: PhysNode
    keys: tuple[tuple[str, A.Expr], ...]
    monoid: Monoid
    head: A.Expr
    group_var: str
    agg_name: str = "group"

    def children(self):
        return (self.child,)

    def bound_vars(self):
        return (self.group_var,)


@dataclass
class PhysReduce(PhysNode):
    """Root: fold heads through the output monoid."""

    child: PhysNode
    monoid: Monoid
    head: A.Expr

    def children(self):
        return (self.child,)


def parallel_driver(root: PhysReduce) -> PhysScan | None:
    """The scan driving the plan's outermost loop, if morsel-shardable.

    Both executors' outermost iteration follows the probe/outer/child chain
    from the root reduce; sharding *that* scan across morsels (with every
    worker folding into its own accumulator) is what the parallel strategy
    parallelizes. Grouping ``Nest`` nodes on the chain shard too: workers
    build per-key partial group accumulators over their morsels and the
    coordinator merges per key in morsel order (see ``chain_nest``). Plans
    whose chain ends elsewhere (expression scans) execute serially.
    """
    node: PhysNode = root.child
    while True:
        if isinstance(node, PhysScan):
            return node
        if isinstance(node, PhysFilter):
            node = node.child
        elif isinstance(node, PhysHashJoin):
            node = node.probe
        elif isinstance(node, PhysNLJoin):
            node = node.outer
        elif isinstance(node, (PhysUnnest, PhysNest)):
            node = node.child
        else:
            return None


def chain_nest(root: PhysReduce) -> PhysNest | None:
    """The grouping node at which a parallel plan shards, if any.

    Morsel workers iterate *below* this node and return per-key group
    partials; everything above it (including any outer Nest) runs at the
    coordinator over the merged groups. That makes the **bottom-most** Nest
    on the driver chain the only sound shard point: a Nest inside a worker
    would finalize groups over a single morsel's rows.
    """
    node: PhysNode = root.child
    found: PhysNest | None = None
    while True:
        if isinstance(node, PhysNest):
            found = node
            node = node.child
        elif isinstance(node, PhysFilter):
            node = node.child
        elif isinstance(node, PhysHashJoin):
            node = node.probe
        elif isinstance(node, PhysNLJoin):
            node = node.outer
        elif isinstance(node, PhysUnnest):
            node = node.child
        else:
            return found


def plan_scans(node: PhysNode) -> list[PhysScan]:
    """All PhysScan leaves of a plan (pre-order)."""
    out: list[PhysScan] = []
    stack = [node]
    while stack:
        n = stack.pop()
        if isinstance(n, PhysScan):
            out.append(n)
        stack.extend(reversed(n.children()))
    return out


def explain_physical(node: PhysNode, indent: int = 0) -> str:
    """Readable physical-plan rendering (EXPLAIN output)."""
    from ..mcc.pretty import pretty

    pad = "  " * indent
    if isinstance(node, PhysScan):
        if node.access == ACCESS_INDEX and node.index_lookup is not None:
            extras = [f"access=index[{node.index_lookup[1]}]"]
        else:
            extras = [f"access={node.access}"]
        if node.access in (ACCESS_COLD, ACCESS_WARM) and node.format in (
            "csv", "json", "array", "xls"
        ):
            extras.append(f"batch={node.batch_size}")
        if node.parallel > 1:
            if node.backend != "thread":
                extras.append(f"parallel={node.parallel}/{node.backend}")
            else:
                extras.append(f"parallel={node.parallel}")
        if node.fields:
            extras.append(f"fields=[{', '.join(node.fields)}]")
        if node.bind_whole:
            extras.append("whole")
        if node.populate:
            extras.append(f"populate=[{', '.join(node.populate)}]->{node.populate_layout}")
        if node.pred is not None:
            extras.append(f"pred={pretty(node.pred)}")
            if node.sel_push:
                extras.append("filter=vec+push")
            else:
                extras.append(
                    "filter=vec" if node.vectorized_filter() else "filter=row"
                )
        if node.index_eq is not None:
            if len(node.index_eq) == 3 and node.index_eq[2] == "in":
                extras.append(
                    f"index[{node.index_eq[0]} in {node.index_eq[1]!r}]"
                )
            else:
                extras.append(f"index[{node.index_eq[0]}={node.index_eq[1]!r}]")
        if node.index_emit:
            extras.append(f"index-emit=[{', '.join(node.index_emit)}]")
        if node.as_of is not None:
            extras.append(f"generation={node.as_of}")
        if node.est_rows or node.est_cost:
            extras.append(
                f"est_rows=~{node.est_rows:.0f} est_cost=~{node.est_cost:.0f}"
            )
        return f"{pad}Scan({node.source} as {node.var}; {', '.join(extras)})"
    if isinstance(node, PhysExprScan):
        s = f"{pad}ExprScan({pretty(node.expr)} as {node.var}"
        if node.pred is not None:
            s += f"; pred={pretty(node.pred)}"
        return s + ")"
    if isinstance(node, PhysFilter):
        return f"{pad}Filter[{pretty(node.pred)}]\n" + explain_physical(node.child, indent + 1)
    if isinstance(node, PhysHashJoin):
        keys = ", ".join(
            f"{pretty(b)}={pretty(p)}" for b, p in zip(node.build_keys, node.probe_keys)
        )
        s = f"{pad}HashJoin[{keys}]"
        if node.residual is not None:
            s += f" residual[{pretty(node.residual)}]"
        return (
            s + "\n" + explain_physical(node.build, indent + 1)
            + "\n" + explain_physical(node.probe, indent + 1)
        )
    if isinstance(node, PhysNLJoin):
        pred = pretty(node.pred) if node.pred is not None else "true"
        return (
            f"{pad}NLJoin[{pred}]\n"
            + explain_physical(node.outer, indent + 1)
            + "\n" + explain_physical(node.inner, indent + 1)
        )
    if isinstance(node, PhysUnnest):
        s = f"{pad}Unnest[{pretty(node.path)} as {node.var}"
        if node.pred is not None:
            s += f"; pred={pretty(node.pred)}"
        return s + "]\n" + explain_physical(node.child, indent + 1)
    if isinstance(node, PhysNest):
        keys = ", ".join(f"{n}={pretty(e)}" for n, e in node.keys)
        return (
            f"{pad}Nest[{keys}; {node.monoid.name} {pretty(node.head)} as {node.group_var}]\n"
            + explain_physical(node.child, indent + 1)
        )
    if isinstance(node, PhysReduce):
        return (
            f"{pad}Reduce[{node.monoid.name} {pretty(node.head)}]\n"
            + explain_physical(node.child, indent + 1)
        )
    raise TypeError(f"cannot explain {type(node).__name__}")
