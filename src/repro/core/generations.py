"""Per-source generation history: snapshot pinning for time travel.

Raw files evolve underneath a virtualization engine. PR 8/9 made the
*invalidation* of auxiliary state race-safe via generation tokens; this
module retains a bounded history of observed generations so queries can
pin one (``SELECT ... FROM t AS OF GENERATION k``) and append-mostly
files can refresh in O(delta) instead of rebuilding.

Two snapshot flavours, by how the mutation that superseded a generation
was classified (``EngineContext.refresh_source``):

- **live-prefix** (``live=True``): every later mutation was an append, so
  the generation's content survives verbatim as the first ``byte_size``
  bytes (CSV) / first N semi-index spans (JSON) of the live file. Such a
  snapshot pins *no* data — the runtime serves it by slicing live state,
  which is why an arbitrarily long append history costs O(1) memory.
- **pinned** (``live=False``): a non-append mutation destroyed the old
  bytes. At that moment every live-prefix snapshot in the history is
  handed one shared :class:`PinnedState` holding *references* to the
  cache entries and table stats observed just before the rewrite
  (``DataCache.invalidate_source`` unlinks entries but never mutates the
  :class:`~repro.caching.layouts.CachedData` objects, so the references
  stay intact at zero copy cost). A pinned snapshot is servable only for
  fields some pinned entry covers, sliced down to the snapshot's own row
  count; anything else raises :class:`~repro.errors.GenerationError`.

Retention is LRU with refcounts: ``ViDa(retain_generations=N)`` bounds
the history per source, in-flight ``AS OF`` queries hold a refcount so
the generation they pinned cannot be evicted under them, and eviction
skips referenced snapshots (temporarily exceeding the bound rather than
breaking a running query).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..storage.io import FileFingerprint

#: default bounded history depth per source (overridable per context via
#: ``EngineContext(retain_generations=N)`` / ``ViDa(retain_generations=N)``)
DEFAULT_RETAIN_GENERATIONS = 4


@dataclass
class PinnedState:
    """State rescued from the live registries just before a rewrite.

    Shared by every live-prefix snapshot that the rewrite froze: each
    serves by slicing an entry down to its own ``row_count``, which is
    only sound for entries whose ``count`` equals ``total_rows`` — the
    live row count at pin time (entries with a different count were
    produced under cleaning/limits and are not prefix-addressable).
    """

    #: references to CachedData-bearing cache entries observed at pin time
    cached: list = field(default_factory=list)
    #: the live TableStats at pin time (None if none were collected)
    stats: object | None = None
    #: live row count at pin time (None when no complete structure knew it)
    total_rows: int | None = None


@dataclass
class GenerationSnapshot:
    """One retained ``(generation, fingerprint, byte_size, snapshot)``."""

    generation: int
    fingerprint: FileFingerprint
    byte_size: int
    #: rows/objects the source held at this generation (None when no
    #: complete posmap/semi-index observed it — then only live-prefix CSV
    #: byte-slicing can serve it)
    row_count: int | None = None
    #: True while every later mutation was an append (content is a live
    #: byte-prefix); flipped False, with ``pinned`` attached, on rewrite
    live: bool = True
    pinned: PinnedState | None = None
    #: in-flight AS OF queries holding this snapshot (guards eviction)
    refcount: int = 0


class GenerationHistory:
    """Bounded, refcounted, insertion-ordered history of one source."""

    def __init__(self, capacity: int = DEFAULT_RETAIN_GENERATIONS):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._snapshots: dict[int, GenerationSnapshot] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._snapshots)

    def generations(self) -> tuple[int, ...]:
        """Retained generation tokens, oldest first."""
        with self._lock:
            return tuple(self._snapshots)

    def add(self, snapshot: GenerationSnapshot) -> None:
        """Retain ``snapshot``, evicting oldest *unreferenced* snapshots
        beyond ``capacity`` (a referenced one outlives the bound until
        its pinning query releases it)."""
        with self._lock:
            self._snapshots[snapshot.generation] = snapshot
            excess = len(self._snapshots) - self.capacity
            if excess > 0:
                for gen in [g for g, s in self._snapshots.items()
                            if s.refcount == 0][:excess]:
                    del self._snapshots[gen]

    def get(self, generation: int) -> GenerationSnapshot | None:
        with self._lock:
            return self._snapshots.get(generation)

    def acquire(self, generation: int) -> GenerationSnapshot | None:
        """Look up and refcount a snapshot (AS OF query start)."""
        with self._lock:
            snap = self._snapshots.get(generation)
            if snap is not None:
                snap.refcount += 1
            return snap

    def release(self, snapshot: GenerationSnapshot) -> None:
        with self._lock:
            if snapshot.refcount > 0:
                snapshot.refcount -= 1
            if len(self._snapshots) > self.capacity:
                excess = len(self._snapshots) - self.capacity
                for gen in [g for g, s in self._snapshots.items()
                            if s.refcount == 0][:excess]:
                    del self._snapshots[gen]

    def pin_all(self, pinned: PinnedState) -> None:
        """A non-append mutation happened: freeze every still-live
        snapshot onto the shared pinned state (their prefix bytes are
        gone; only rescued cache entries can serve them now)."""
        with self._lock:
            for snap in self._snapshots.values():
                if snap.live:
                    snap.live = False
                    snap.pinned = pinned

    def clear(self) -> None:
        with self._lock:
            self._snapshots.clear()
