"""Bottom-up join-order enumeration over statistics (adaptive planner).

Replaces syntax-driven greedy ordering with a left-deep dynamic program
over the plan's ``_Unit`` building blocks, costed with the C_out metric:

    cost(S ∪ {u}) = cost(S) + scan_cost(u) + |S ⋈ u|

i.e. every intermediate row produced is a unit of downstream work, so the
enumerator minimises the total volume of tuples flowing through the plan
— the standard System-R-family objective, cheap enough here because ViDa
queries join a handful of raw files, not dozens of tables.

Join edges carry statistics-derived selectivities (``1 / max(ndv_left,
ndv_right)`` for equi-joins, from the KMV sketches); unit-less pairs fall
back to row-count heuristics in the planner. A missing edge means a cross
join and costs the full row product — the DP avoids those naturally
without a connectivity restriction.

Cutoffs: the DP enumerates up to :data:`MAX_DP_UNITS` relations (left-deep
subsets: n·2ⁿ states, trivial at 8); larger queries keep the greedy
ordering, whose result is still re-costed through :func:`estimate_cards`
so EXPLAIN always shows cardinality estimates. Dependent unnests only
enter once their source variables are bound, and expand rows by the same
``UNNEST_FANOUT`` the tree builder assumes.

All tie-breaks are deterministic (cost, then variable-name order), so
equal-cost plans never flap between runs.
"""

from __future__ import annotations

#: left-deep DP cutoff: beyond this many units the greedy order stands
MAX_DP_UNITS = 8

#: assumed rows produced per input row by a dependent unnest (matches the
#: tree builder's plan_rows bookkeeping)
UNNEST_FANOUT = 5.0


def edge_key(v1: str, v2: str) -> frozenset:
    return frozenset((v1, v2))


def _step_rows(rows_so_far: float, u, bound: set, edges: dict) -> float:
    """Estimated output rows after joining ``u`` into a prefix with
    ``rows_so_far`` rows binding ``bound`` variables."""
    if u.kind == "unnest":
        return rows_so_far * UNNEST_FANOUT
    sel = 1.0
    hit = False
    for v in bound:
        s = edges.get(edge_key(v, u.var))
        if s is not None:
            sel *= s
            hit = True
    if not hit:
        return rows_so_far * u.est_rows  # cross join: full product
    return max(1.0, rows_so_far * u.est_rows * sel)


def estimate_cards(ordered: list, edges: dict) -> list[float]:
    """Per-step cardinality estimates for a given unit order (the numbers
    EXPLAIN shows next to the join order)."""
    cards: list[float] = []
    rows = 1.0
    bound: set = set()
    for i, u in enumerate(ordered):
        if i == 0:
            rows = u.est_rows if u.kind != "unnest" else UNNEST_FANOUT
        else:
            rows = _step_rows(rows, u, bound, edges)
        bound.add(u.var)
        cards.append(rows)
    return cards


def enumerate_order(units: list, edges: dict) -> list | None:
    """Left-deep DP join order minimising C_out; None when out of range.

    ``units`` must carry ``var``, ``kind``, ``deps``, ``est_rows`` and
    ``est_cost``; ``edges`` maps ``edge_key(v1, v2)`` to an equi-join
    selectivity. Unnest dependency order is respected (a dependent unit
    only extends prefixes that bind all its sources).
    """
    n = len(units)
    if n < 2 or n > MAX_DP_UNITS:
        return None

    # dp[mask] = (cost, rows, order) — the cheapest left-deep prefix
    # covering exactly the units in `mask`
    dp: dict[int, tuple[float, float, tuple]] = {}
    var_of = [u.var for u in units]

    for i, u in enumerate(units):
        if u.deps:
            continue  # an unnest cannot drive the plan
        start_rows = u.est_rows if u.kind != "unnest" else UNNEST_FANOUT
        dp[1 << i] = (u.est_cost + start_rows, start_rows, (i,))

    # every proper subset of a mask is numerically smaller, so ascending
    # mask order visits prefixes before their extensions
    for mask in range(1, 1 << n):
        state = dp.get(mask)
        if state is None:
            continue
        cost, rows, order = state
        bound = {var_of[i] for i in order}
        for j, u in enumerate(units):
            bit = 1 << j
            if mask & bit:
                continue
            if not (u.deps <= bound):
                continue
            new_rows = _step_rows(rows, u, bound, edges)
            new_cost = cost + u.est_cost + new_rows
            new_order = order + (j,)
            prev = dp.get(mask | bit)
            if prev is None or (new_cost, tuple(var_of[i] for i in new_order)) \
                    < (prev[0], tuple(var_of[i] for i in prev[2])):
                dp[mask | bit] = (new_cost, new_rows, new_order)

    full = (1 << n) - 1
    best = dp.get(full)
    if best is None:
        return None  # unsatisfiable deps (cycle) — let the greedy path raise
    return [units[i] for i in best[2]]
