"""Cost model with per-format wrappers (paper §5, "Perils of Classical
Optimization on Raw Data").

"For operators accessing raw data the cost per attribute fetched may vary
between attributes due to the effort needed to navigate in the file. …
ViDa uses a wrapper per file format, similar to Garlic; the wrapper takes
into account any auxiliary structures present and normalizes access costs
for the attributes requested."

Costs are in abstract units of "one attribute fetched from a warm DBMS
buffer pool" (the paper's ``const_cost``). A CSV file with no positional
index is estimated at ``3 × const_cost`` per tuple — the paper's own
example figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...mcc import ast as A

#: cost per (tuple, attribute) relative to a loaded DBMS, by access path
CONST_COST = 1.0
COST_FACTORS = {
    ("csv", "cold"): 3.0,      # tokenize + parse + convert (paper's example)
    ("csv", "warm"): 1.3,      # positional-map navigation + convert
    ("json", "cold"): 5.0,     # object parse dominates
    ("json", "warm"): 2.2,     # semi-index jump + parse of needed objects
    ("json", "positions"): 0.2,  # carry spans only
    ("array", "cold"): 0.9,    # fixed-width binary decode
    ("array", "warm"): 0.9,
    ("xls", "cold"): 1.8,      # tagged-cell decode
    ("xls", "warm"): 1.8,
    ("memory", "memory"): 0.2,
    ("cache", "cache"): 0.3,   # columnar cache iteration
    ("dbms", "warm"): 1.0,
}

#: default predicate selectivities by comparison operator
SELECTIVITY = {"=": 0.1, "!=": 0.9, "<": 0.3, "<=": 0.3, ">": 0.3, ">=": 0.3,
               "like": 0.25, "in": 0.2}

#: bounds for the vectorized scan pipeline's rows-per-chunk choice
MIN_BATCH_SIZE = 64
MAX_BATCH_SIZE = 4096
#: soft cap on materialised values per chunk (rows × extracted fields)
TARGET_CHUNK_VALUES = 32768

# The batch pipeline has two separately measurable cost components that the
# original model blended into one per-value figure:
#
# - **per-chunk dispatch** — one generator resume + Chunk construction +
#   engine loop setup per batch, *independent of batch width*;
# - **per-value conversion** — tokenize/parse/convert work that scales with
#   rows × extracted fields (the COST_FACTORS table, per access path).
#
# Measured on the HBP benchmark datasets a chunk handoff costs roughly the
# same as converting ~40 warm-DBMS attributes, and a morsel (worker
# dispatch + split alignment + partial merge) roughly ~250.
CHUNK_DISPATCH_COST = 40.0
MORSEL_SETUP_COST = 250.0
#: keep per-chunk dispatch under this fraction of a chunk's conversion work
DISPATCH_OVERHEAD_BUDGET = 0.02
#: a morsel must carry at least this multiple of its setup cost in work
MORSEL_MIN_WORK_FACTOR = 8.0

# JIT value-index access path (paper §2.1 extended per arXiv 1901.07627).
# An index probe resolves candidate row ids through the hash table/sorted
# run, each candidate is fetched positionally (posmap seek + convert — a
# random read, charged well above a streaming warm fetch), and any rows the
# index hasn't covered yet are scanned with the full predicate. Below
# MIN_INDEX_COVERAGE the uncovered scan dominates and byproduct emission is
# still growing the index, so the planner keeps the plain chunked scan.
INDEX_PROBE_COST = 25.0
INDEX_FETCH_COST = 4.0
MIN_INDEX_COVERAGE = 0.5

# Process-backend fixed costs, in the same abstract units. Like JIT compile
# time, process fan-out is a fixed tax that only pays off above a work
# threshold: the first use of the session pool spawns fresh interpreters
# (amortised across the session but still charged to be conservative), and
# every parallel scan pickles a kernel spec out and a column-batch partial
# back per morsel.
PROCESS_SPAWN_COST = 30000.0
PROCESS_MORSEL_IPC_COST = 1500.0

#: estimated work (abstract units) below which generating + exec-compiling
#: a query module costs more than it saves over the static interpreter —
#: the per-query engine-selection threshold ("An Empirical Analysis of
#: Just-in-Time Compilation in Modern Databases": compile time only pays
#: off above a size threshold). A session-cached compile is always free.
COMPILE_COST = 2500.0


def choose_batch_size(rows: int, nfields: int = 1, fmt: str = "csv",
                      access: str = "cold", calibration=None) -> int:
    """Pick a power-of-two rows-per-chunk for a scan.

    The floor amortises per-chunk dispatch: a batch must carry enough
    conversion work (``batch × fields × per-value cost``) that
    ``CHUNK_DISPATCH_COST`` stays under ``DISPATCH_OVERHEAD_BUDGET`` of it.
    The ceiling keeps a chunk's materialised values cache-friendly
    (``TARGET_CHUNK_VALUES``), so wide extractions get shallower batches;
    tiny sources don't plan a batch far beyond their estimated row count.
    """
    nfields = max(1, nfields)
    per_value = access_factor(fmt, access, calibration)
    amortising = CHUNK_DISPATCH_COST / (
        DISPATCH_OVERHEAD_BUDGET * nfields * per_value
    )
    ceiling = min(max(1.0, TARGET_CHUNK_VALUES / nfields), MAX_BATCH_SIZE)
    # dispatch amortisation may override the value ceiling, never MAX
    target = min(max(amortising, ceiling), MAX_BATCH_SIZE)
    size = MIN_BATCH_SIZE
    while size * 2 <= target:
        size *= 2
    while size > MIN_BATCH_SIZE and size >= 2 * max(1, rows):
        size //= 2
    return size


def choose_parallelism(requested: int, rows: int, nfields: int,
                       fmt: str, access: str, calibration=None) -> int:
    """Degree of parallelism for one scan, capped by worthwhile work.

    Each morsel pays ``MORSEL_SETUP_COST`` (worker dispatch, split
    alignment, partial-result merge), so the chosen DoP never slices the
    scan's estimated conversion work — ``rows × fields × per-value cost``,
    which is what makes cold scans parallelise earlier than warm or cached
    ones — into shares worth less than ``MORSEL_MIN_WORK_FACTOR`` × that
    setup cost.
    """
    if requested <= 1 or rows < 2:
        return 1
    work = rows * max(1, nfields) * access_factor(fmt, access, calibration)
    worthwhile = int(work // (MORSEL_MIN_WORK_FACTOR * MORSEL_SETUP_COST))
    return max(1, min(requested, worthwhile))


def choose_backend(requested: str, rows: int, nfields: int,
                   fmt: str, access: str, dop: int, calibration=None) -> str:
    """Execution substrate for one parallel scan: ``process`` only when the
    estimated conversion work amortizes the backend's fixed costs.

    Two gates, both in abstract attribute-fetch units: the scan's total work
    must cover the (session-amortised) spawn cost, and each worker's share
    must be worth ``MORSEL_MIN_WORK_FACTOR`` × the per-morsel IPC cost of
    shipping a spec out and a pickled partial back. Otherwise thread morsels
    win — their dispatch is three orders of magnitude cheaper.
    """
    if requested != "process" or dop <= 1:
        return "thread"
    work = rows * max(1, nfields) * access_factor(fmt, access, calibration)
    if work < PROCESS_SPAWN_COST:
        return "thread"
    if work / dop < MORSEL_MIN_WORK_FACTOR * PROCESS_MORSEL_IPC_COST:
        return "thread"
    return "process"


def access_factor(fmt: str, access: str, calibration=None) -> float:
    """Normalized per-attribute fetch cost for a (format, access-path) pair.

    With a :class:`~repro.stats.CostCalibration` the measured-runtime
    calibrated factor is used instead of the hand-tuned table. A pair
    neither knows falls back to ``2.0`` — callers should check
    :func:`factor_known` and surface the miscalibration rather than let
    the default pass silently.
    """
    if calibration is not None:
        f = calibration.factor(fmt, access)
        if f is not None:
            return f * CONST_COST
    return COST_FACTORS.get((fmt, access), 2.0) * CONST_COST


def factor_known(fmt: str, access: str, calibration=None) -> bool:
    """True when the cost model actually knows this (format, access) pair
    (as opposed to silently serving the 2.0 default)."""
    if calibration is not None and calibration.factor(fmt, access) is not None:
        return True
    return (fmt, access) in COST_FACTORS


def predicate_selectivity(pred: A.Expr) -> float:
    """Crude textbook selectivity estimate for a predicate expression."""
    if isinstance(pred, A.Const):
        return 1.0 if pred.value else 0.0
    if isinstance(pred, A.BinOp):
        if pred.op == "and":
            return predicate_selectivity(pred.left) * predicate_selectivity(pred.right)
        if pred.op == "or":
            a = predicate_selectivity(pred.left)
            b = predicate_selectivity(pred.right)
            return min(1.0, a + b - a * b)
        if pred.op in SELECTIVITY:
            return SELECTIVITY[pred.op]
    if isinstance(pred, A.UnOp) and pred.op == "not":
        return 1.0 - predicate_selectivity(pred.expr)
    return 0.5


@dataclass(frozen=True)
class ScanEstimate:
    """Planner-facing estimate for scanning one source.

    Conversion cost (per row × attribute) and batch dispatch cost (per
    chunk) are carried separately; ``batch_size=0`` marks a row-at-a-time
    access path with no chunk handoffs to charge.
    """

    rows: int
    cost_per_row: float
    selectivity: float
    batch_size: int = 0

    @property
    def conversion_cost(self) -> float:
        return self.rows * self.cost_per_row

    @property
    def dispatch_cost(self) -> float:
        if self.batch_size <= 0 or self.rows <= 0:
            return 0.0
        chunks = -(-self.rows // self.batch_size)  # ceil division
        return chunks * CHUNK_DISPATCH_COST

    @property
    def total_cost(self) -> float:
        return self.conversion_cost + self.dispatch_cost

    @property
    def output_rows(self) -> float:
        return self.rows * self.selectivity


def estimate_scan(
    fmt: str,
    access: str,
    rows: int,
    nfields: int,
    preds: list[A.Expr],
    batch_size: int = 0,
    calibration=None,
    selectivity: float | None = None,
) -> ScanEstimate:
    """Estimate a scan: conversion scales with extracted attribute count,
    dispatch with the number of chunks the chosen batch size implies.

    ``selectivity`` overrides the textbook per-operator guesses with a
    statistics-derived estimate (min/max interpolation, NDV) when the
    adaptive planner has one; ``calibration`` substitutes measured
    per-(format, access) factors for the hand-tuned table."""
    if selectivity is None:
        selectivity = 1.0
        for p in preds:
            selectivity *= predicate_selectivity(p)
    per_row = access_factor(fmt, access, calibration) * max(1, nfields)
    return ScanEstimate(rows=rows, cost_per_row=per_row,
                        selectivity=selectivity, batch_size=batch_size)


def estimate_index_scan(
    fmt: str,
    rows: int,
    nfields: int,
    coverage: float,
    selectivity: float,
) -> float:
    """Cost of serving a scan through a value index: probe + positional
    fetch of the estimated matches within covered rows + a warm scan of
    the uncovered remainder."""
    nfields = max(1, nfields)
    matches = rows * coverage * selectivity
    uncovered = rows * (1.0 - coverage)
    return (INDEX_PROBE_COST
            + matches * INDEX_FETCH_COST * nfields
            + uncovered * access_factor(fmt, "warm") * nfields)


def source_row_estimate(entry) -> int:
    """Cardinality estimate for a catalog entry (cheap; exact when an
    auxiliary structure already knows)."""
    if entry.data is not None:
        return len(entry.data)
    plugin = entry.plugin
    fmt = entry.format
    if fmt == "csv":
        if plugin.posmap.complete:
            return len(plugin.posmap.row_offsets)
        # avoid a full pass at planning time: size / assumed 80-byte rows
        import os

        try:
            return max(1, os.stat(plugin.path).st_size // 80)
        except OSError:
            return 1000
    if fmt == "json":
        if plugin.has_semi_index():
            return plugin.object_count()
        import os

        try:
            return max(1, os.stat(plugin.path).st_size // 200)
        except OSError:
            return 1000
    if fmt == "array":
        return plugin.header.element_count
    if fmt == "xls":
        sheet = entry.description.options.get("sheet")
        return plugin.sheets[sheet].nrows if sheet in plugin.sheets else 1000
    if fmt == "dbms":
        return plugin.row_count()
    return 1000
