"""Physical planner: logical algebra → physical plan (paper §5).

Decisions made here, all specific to querying *raw* data:

1. **Access-path selection per source** — serve from ViDa's cache when a
   cached entry covers the needed fields; otherwise scan raw, navigating
   with the positional map / semi-index when one exists ("warm"), else a
   cold scan that builds it ("the optimizer invokes the appropriate wrapper,
   which takes into account any auxiliary structures present and normalizes
   access costs").
2. **Projection pushdown into the raw parser** — each scan extracts only the
   attribute paths the query touches, because for raw formats every fetched
   attribute has a real tokenize/parse/convert cost (§5).
3. **Cache population** — cold/warm scans piggyback columnar materialisation
   of the extracted scalar fields; whole nested objects are admitted in the
   layout the admission policy picks (objects/BSON), or not at all when
   they would pollute the cache (§5).
4. **Join order and algorithm** — greedy cheapest-first ordering using the
   per-format wrapper cost estimates; equi-predicates become hash joins
   (build side = smaller estimated input), everything else nested loops.
5. **Predicate placement** — single-source conjuncts are pushed into the
   scan loop; join-pair equalities become hash keys; the rest evaluate as
   residual filters at the earliest point all their variables are bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...caching import DataCache
from ...caching.policy import DEFAULT_POLICY, AdmissionPolicy
from ...errors import PlanningError
from ...mcc import ast as A
from ...mcc.algebra import (
    AlgNode,
    ExprScanOp,
    JoinOp,
    NestOp,
    ReduceOp,
    ScanOp,
    SelectOp,
    UnnestOp,
)
from ..physical import (
    PhysExprScan,
    PhysFilter,
    PhysHashJoin,
    PhysNest,
    PhysNLJoin,
    PhysNode,
    PhysReduce,
    PhysScan,
    VarUsage,
    collect_usage,
)
from . import cost as C


@dataclass
class PlanDecisions:
    """A record of the optimizer's raw-data-aware choices (for EXPLAIN/tests)."""

    access: dict[str, str] = field(default_factory=dict)       # var → access path
    join_order: list[str] = field(default_factory=list)         # vars, build→probe
    populate: dict[str, tuple] = field(default_factory=dict)    # var → cached fields
    batch: dict[str, int] = field(default_factory=dict)         # var → rows per chunk
    parallel: dict[str, int] = field(default_factory=dict)      # var → morsel DoP
    #: var → execution substrate for its parallel scan (thread | process)
    parallel_backend: dict[str, str] = field(default_factory=dict)
    filters: dict[str, str] = field(default_factory=dict)       # var → vec | row
    cache_served: bool = False
    notes: list[str] = field(default_factory=list)
    #: var → estimated input rows for its scan (post-pushdown output rows)
    est_rows: dict[str, float] = field(default_factory=dict)
    #: var → estimated scan cost (abstract attribute-fetch units)
    est_cost: dict[str, float] = field(default_factory=dict)
    #: estimated intermediate cardinality after each join-order step
    #: (aligned with ``join_order``; adaptive planner only)
    join_cards: list[float] = field(default_factory=list)
    #: whole-plan estimated cost (scan costs + intermediate tuple volume) —
    #: the number per-query engine selection compares against COMPILE_COST
    total_est_cost: float = 0.0
    #: per-query engine decision ("jit" | "static") with its reason, set by
    #: the session when default_engine="auto"
    engine_choice: str = ""

    def clone(self) -> "PlanDecisions":
        """Independent copy for prepared-plan reuse: per-execution fields
        (notes, engine_choice) must not accrete across executions."""
        return PlanDecisions(
            access=dict(self.access), join_order=list(self.join_order),
            populate=dict(self.populate), batch=dict(self.batch),
            parallel=dict(self.parallel),
            parallel_backend=dict(self.parallel_backend),
            filters=dict(self.filters), cache_served=self.cache_served,
            notes=list(self.notes), est_rows=dict(self.est_rows),
            est_cost=dict(self.est_cost), join_cards=list(self.join_cards),
            total_est_cost=self.total_est_cost,
            engine_choice=self.engine_choice,
        )

    def summary(self) -> str:
        parts = [f"{v}:{a}" for v, a in self.access.items()]
        if self.join_cards and len(self.join_cards) == len(self.join_order):
            order = " -> ".join(
                f"{v}(~{int(c)})"
                for v, c in zip(self.join_order, self.join_cards)
            )
        else:
            order = " -> ".join(self.join_order)
        out = (
            f"access[{', '.join(parts)}] order[{order}]"
            + (" cache-served" if self.cache_served else "")
        )
        if self.est_rows:
            out += " est[" + ", ".join(
                f"{v}:{int(r)}r@{int(self.est_cost.get(v, 0))}u"
                for v, r in self.est_rows.items()) + "]"
        if self.total_est_cost:
            out += f" total_cost~{int(self.total_est_cost)}u"
        if self.engine_choice:
            out += f" engine[{self.engine_choice}]"
        if self.batch:
            out += " batch[" + ", ".join(
                f"{v}:{b}" for v, b in self.batch.items()) + "]"
        if self.parallel:
            out += " parallel[" + ", ".join(
                f"{v}:{n}" + (
                    f"/{self.parallel_backend[v]}"
                    if self.parallel_backend.get(v, "thread") != "thread" else ""
                )
                for v, n in self.parallel.items()) + "]"
        if self.filters:
            out += " filter[" + ", ".join(
                f"{v}:{k}" for v, k in self.filters.items()) + "]"
        for note in self.notes:
            out += f"\n  note: {note}"
        return out


@dataclass
class _Unit:
    """One plan building block: a scan-like leaf or a dependent unnest."""

    kind: str            # scan | expr | unnest | nest
    var: str
    node: AlgNode
    deps: frozenset = frozenset()
    pushed: list = field(default_factory=list)
    est_rows: float = 1000.0
    est_cost: float = 1000.0
    access: str = "cold"
    fields: tuple = ()
    whole: bool = False
    populate: tuple = ()
    populate_layout: str = "columns"
    batch_size: int = C.MAX_BATCH_SIZE
    #: ACCESS_INDEX probe spec when the access-path chooser picked an index
    index_lookup: tuple | None = None
    #: conjunct fields the scan should emit value-index byproducts for
    index_emit: tuple = ()


class Planner:
    def __init__(
        self,
        catalog,
        cache: DataCache | None = None,
        policy: AdmissionPolicy | None = None,
        enable_cache: bool = True,
        enable_posmap: bool = True,
        batch_size: int | None = None,
        parallelism: int = 1,
        serial_sources: frozenset | set | None = None,
        cleaning_sources: frozenset | set | None = None,
        vector_filters: bool = True,
        backend: str = "thread",
        cleaning_policies: dict | None = None,
        indexes=None,
        stats=None,
        calibration=None,
        adaptive: bool = False,
        as_of: dict | None = None,
    ):
        self.catalog = catalog
        self.cache = cache if cache is not None else DataCache()
        self.policy = policy or DEFAULT_POLICY
        self.enable_cache = enable_cache
        self.enable_posmap = enable_posmap
        #: fixed rows-per-chunk override (None = cost-model choice per scan)
        self.batch_size = batch_size
        #: session-level morsel worker budget (1 = serial, the safe default)
        self.parallelism = parallelism
        #: sources that must stay serial (e.g. charged to a simulated device)
        self.serial_sources = frozenset(serial_sources or ())
        #: sources with a scan-time cleaning policy (no selection pushdown:
        #: the predicate must see repaired values, so filters stay in-engine)
        self.cleaning_sources = frozenset(cleaning_sources or ())
        #: selection-vector execution on (session flag); gates sel_push
        self.vector_filters = vector_filters
        #: session-requested morsel substrate ("thread" | "process"); the
        #: per-scan choice still runs through the cost model and the
        #: kernel-spec shippability gates
        self.backend = backend
        #: live cleaning-policy objects (for the picklability gate); the
        #: frozenset above remains the sel_push gate
        self.cleaning_policies = cleaning_policies or {}
        #: session :class:`~repro.indexing.IndexRegistry`, or None when JIT
        #: value indexes are disabled; drives both access-path selection
        #: (access=index) and byproduct-emission marking
        self.indexes = indexes
        #: shared :class:`~repro.stats.StatsRegistry` (JIT table statistics)
        self.stats = stats
        #: shared :class:`~repro.stats.CostCalibration` — measured-runtime
        #: calibrated cost constants; None keeps the hand-tuned table
        self.calibration = calibration
        #: statistics-driven planning on: exact row counts, min/max + NDV
        #: selectivities, and DP join-order enumeration replace the
        #: syntax-order greedy heuristics
        self.adaptive = adaptive
        #: time travel: source → pinned GenerationSnapshot. Pinned scans are
        #: forced cold + serial with population, selection pushdown and
        #: index access all off — live auxiliaries describe the live
        #: generation, and a pinned query must neither use nor grow them
        self.as_of = as_of or {}

    # -- public -----------------------------------------------------------

    def plan(self, root: ReduceOp) -> tuple[PhysReduce, PlanDecisions]:
        decisions = PlanDecisions()
        child = self._plan_subtree(root.child, decisions, extra_exprs=[root.head])
        plan = PhysReduce(child, root.monoid, root.head)
        decisions.cache_served = all(
            a in ("cache", "memory") for a in decisions.access.values()
        ) and bool(decisions.access)
        if self.parallelism > 1:
            self._choose_parallel(plan, decisions)
        return plan, decisions

    # -- morsel parallelism -----------------------------------------------------

    #: formats whose plugins expose splittable scan ranges
    _SPLITTABLE = ("csv", "json", "array")

    def _choose_parallel(self, plan: PhysReduce, decisions: PlanDecisions) -> None:
        """Assign a degree of parallelism to morsel-shardable scans.

        Two shapes shard: the plan's *driver* scan (the outermost loop —
        every worker folds the root monoid, or the chain's grouping Nest,
        into its own partial) and direct hash-join *build* scans (workers
        build partial tables, merged per key). Everything else stays serial;
        DoP per scan comes from the cost model so small or warm scans don't
        pay morsel setup. With a process-backend session, each parallel scan
        additionally picks its substrate: process morsels only when the
        whole plan is kernel-spec shippable and the work amortizes
        spawn + per-morsel IPC.
        """
        from ..physical import PhysHashJoin, parallel_driver, plan_scans

        candidates: list[PhysScan] = []
        driver = parallel_driver(plan)
        if driver is not None:
            candidates.append(driver)
        stack: list = [plan.child]
        while stack:
            node = stack.pop()
            if isinstance(node, PhysHashJoin) and isinstance(node.build, PhysScan):
                candidates.append(node.build)
            stack.extend(node.children())
        blocker = None
        if self.backend == "process":
            blocker = self._process_blocker(plan)
        for scan in candidates:
            dop = self._scan_parallelism(scan)
            if dop > 1:
                scan.parallel = dop
                decisions.parallel[scan.var] = dop
                backend = "thread"
                if self.backend == "process":
                    if blocker is not None:
                        decisions.notes.append(
                            f"{scan.var}: {blocker}; thread morsels"
                        )
                    else:
                        backend = self._scan_backend(scan, dop, decisions)
                scan.backend = backend
                decisions.parallel_backend[scan.var] = backend
        if self.backend == "process":
            for scan in plan_scans(plan):
                if scan.parallel > 1:
                    continue
                if scan.format == "dbms" or scan.source in self.serial_sources:
                    kind = "dbms source" if scan.format == "dbms" \
                        else "device-charged source"
                    decisions.notes.append(
                        f"{scan.var}: process backend unavailable "
                        f"({kind} {scan.source!r} is not picklable); runs serial"
                    )

    def _scan_backend(self, scan: PhysScan, dop: int,
                      decisions: PlanDecisions) -> str:
        """Substrate for one shippable parallel scan, via the cost model."""
        if scan.access == "cache":
            # cache entries live in the parent; shipping them defeats the cache
            decisions.notes.append(
                f"{scan.var}: cache scan stays on thread morsels"
            )
            return "thread"
        entry = self.catalog.get(scan.source)
        rows = self._row_estimate(entry)
        chosen = C.choose_backend(
            "process", rows, len(scan.chunk_fields()) or 1,
            scan.format, scan.access, dop,
            calibration=self.calibration,
        )
        if chosen != "process":
            decisions.notes.append(
                f"{scan.var}: work below process-backend threshold; "
                "thread morsels"
            )
        return chosen

    def _process_blocker(self, plan: PhysReduce) -> str | None:
        """Why this plan cannot ship kernel specs to worker processes
        (None when it can): every referenced source must be rebuildable
        from a picklable SourceSpec, must not be charged to a simulated
        device (devices live in the parent), and any cleaning policy that
        would ship must itself pickle."""
        import pickle as _pickle

        from ..executor import procpool

        for name in sorted(self._plan_sources(plan)):
            entry = self.catalog.get(name)
            if name in self.serial_sources:
                return f"device-charged source {name!r} cannot ship to workers"
            if entry.format not in procpool.SPECABLE_FORMATS:
                return f"{entry.format} source {name!r} is not picklable"
            policy = self.cleaning_policies.get(name)
            if policy is not None:
                try:
                    _pickle.dumps(policy)
                except Exception:
                    return f"cleaning policy for {name!r} is not picklable"
        return None

    def _plan_sources(self, plan: PhysReduce) -> set[str]:
        """Every catalog source the plan touches: scan leaves plus sources
        referenced from embedded expressions (subquery generators)."""
        from ..physical import PhysUnnest

        names = self.catalog.names()
        out: set[str] = set()
        stack: list = [plan]
        while stack:
            node = stack.pop()
            exprs: list = []
            if isinstance(node, PhysScan):
                out.add(node.source)
                exprs = [node.pred]
            elif isinstance(node, PhysExprScan):
                exprs = [node.expr, node.pred]
            elif isinstance(node, PhysFilter):
                exprs = [node.pred]
            elif isinstance(node, PhysHashJoin):
                exprs = [*node.build_keys, *node.probe_keys, node.residual]
            elif isinstance(node, PhysNLJoin):
                exprs = [node.pred]
            elif isinstance(node, PhysUnnest):
                exprs = [node.path, node.pred]
            elif isinstance(node, PhysNest):
                exprs = [e for _n, e in node.keys] + [node.head]
            elif isinstance(node, PhysReduce):
                exprs = [node.head]
            for e in exprs:
                if e is not None:
                    out |= A.free_vars(e) & names
            stack.extend(node.children())
        return out

    def _scan_parallelism(self, scan: PhysScan) -> int:
        if scan.source in self.serial_sources or scan.source in self.as_of:
            return 1
        if scan.access == "cache":
            cost_fmt = "cache"
        elif scan.format in self._SPLITTABLE and scan.access in ("cold", "warm"):
            cost_fmt = scan.format
        else:
            return 1  # memory / dbms / xls scans hand over serially
        entry = self.catalog.get(scan.source)
        rows = self._row_estimate(entry)
        return C.choose_parallelism(
            self.parallelism, rows, len(scan.chunk_fields()) or 1,
            cost_fmt, scan.access,
            calibration=self.calibration,
        )

    def _row_estimate(self, entry) -> int:
        """Source row count: exact from JIT table stats when available,
        otherwise the bytes-per-row guess."""
        if self.adaptive and self.stats is not None:
            tstats = self.stats.peek(entry.name, entry.generation)
            if tstats is not None and tstats.row_count is not None:
                return max(1, tstats.row_count)
        return C.source_row_estimate(entry)

    # -- flattening -----------------------------------------------------------

    def _flatten(self, node: AlgNode, units: list[_Unit], preds: list[A.Expr],
                 decisions: PlanDecisions) -> None:
        if isinstance(node, SelectOp):
            self._flatten(node.child, units, preds, decisions)
            preds.extend(A.conjuncts(node.pred))
        elif isinstance(node, JoinOp):
            self._flatten(node.left, units, preds, decisions)
            self._flatten(node.right, units, preds, decisions)
            if not (isinstance(node.pred, A.Const) and node.pred.value is True):
                preds.extend(A.conjuncts(node.pred))
        elif isinstance(node, ScanOp):
            units.append(_Unit("scan", node.var, node))
        elif isinstance(node, ExprScanOp):
            units.append(_Unit("expr", node.var, node))
        elif isinstance(node, UnnestOp):
            self._flatten(node.child, units, preds, decisions)
            unit_vars = {u.var for u in units}
            deps = frozenset(A.free_vars(node.path) & unit_vars)
            units.append(_Unit("unnest", node.var, node, deps=deps))
        elif isinstance(node, NestOp):
            units.append(_Unit("nest", node.group_var, node))
        else:
            raise PlanningError(f"cannot plan algebra node {type(node).__name__}")

    # -- planning -----------------------------------------------------------

    def _plan_subtree(self, node: AlgNode, decisions: PlanDecisions,
                      extra_exprs: list[A.Expr]) -> PhysNode:
        units: list[_Unit] = []
        preds: list[A.Expr] = []
        self._flatten(node, units, preds, decisions)
        unit_by_var = {u.var: u for u in units}
        unit_vars = set(unit_by_var)

        # usage analysis across every expression in the (sub)query
        usage: dict[str, VarUsage] = {}
        for p in preds:
            collect_usage(p, usage)
        for e in extra_exprs:
            collect_usage(e, usage)
        for u in units:
            if u.kind == "unnest":
                collect_usage(u.node.path, usage)
            if u.kind == "nest":
                for _n, e in u.node.keys:
                    collect_usage(e, usage)
                collect_usage(u.node.head, usage)

        # classify predicates
        equi: list[tuple[str, str, A.Expr, A.Expr]] = []
        residual: list[A.Expr] = []
        for p in preds:
            vars_used = A.free_vars(p) & unit_vars
            if len(vars_used) == 1:
                unit_by_var[next(iter(vars_used))].pushed.append(p)
            elif len(vars_used) == 2 and isinstance(p, A.BinOp) and p.op == "=":
                lvars = A.free_vars(p.left) & unit_vars
                rvars = A.free_vars(p.right) & unit_vars
                if len(lvars) == 1 and len(rvars) == 1 and lvars != rvars:
                    equi.append((next(iter(lvars)), next(iter(rvars)), p.left, p.right))
                else:
                    residual.append(p)
            else:
                residual.append(p)

        # per-unit physical configuration + estimates
        for u in units:
            self._configure_unit(u, usage, decisions)

        cards: list[float] = []
        if self.adaptive and len(units) >= 2:
            from . import enumerator as E

            edges = self._edge_selectivities(unit_by_var, equi)
            ordered = E.enumerate_order(units, edges)
            if ordered is None:
                # beyond the DP cutoff (or dependency cycle): greedy order,
                # still re-costed so EXPLAIN carries cardinalities
                ordered = self._order_units(units, equi)
                if len(units) > E.MAX_DP_UNITS:
                    decisions.notes.append(
                        f"join order: {len(units)} units exceed DP cutoff "
                        f"({E.MAX_DP_UNITS}); greedy order"
                    )
            cards = E.estimate_cards(ordered, edges)
        else:
            ordered = self._order_units(units, equi)
            if self.adaptive and units:
                cards = [units[0].est_rows]
        decisions.join_order.extend(u.var for u in ordered)
        decisions.join_cards.extend(cards)
        decisions.total_est_cost += sum(u.est_cost for u in units) + (
            sum(cards) if cards else sum(u.est_rows for u in units)
        )

        return self._build_tree(ordered, unit_by_var, equi, residual, decisions,
                                extra_exprs)

    def _edge_selectivities(self, unit_by_var: dict, equi) -> dict:
        """Equi-join edge selectivities from the KMV sketches:
        ``1 / max(ndv_left, ndv_right)`` per predicate (the textbook
        containment assumption), multiplied across predicates on the same
        variable pair. Units without statistics fall back to their row
        estimate as the NDV (unique-key assumption)."""
        from . import enumerator as E

        edges: dict = {}
        for v1, v2, e1, e2 in equi:
            ndv1 = self._join_ndv(unit_by_var.get(v1), e1)
            ndv2 = self._join_ndv(unit_by_var.get(v2), e2)
            sel = 1.0 / max(1.0, ndv1, ndv2)
            key = E.edge_key(v1, v2)
            edges[key] = edges.get(key, 1.0) * sel
        return edges

    def _join_ndv(self, u: _Unit | None, key_expr: A.Expr) -> float:
        """Distinct-count estimate for one side of an equi-join key."""
        if u is None:
            return 1.0
        fallback = max(1.0, u.est_rows)
        if u.kind != "scan" or self.stats is None:
            return fallback
        entry = self.catalog.get(u.node.source)
        fname = _proj_field(key_expr, u.var, entry.format)
        if fname is None:
            return fallback
        tstats = self.stats.peek(entry.name, entry.generation)
        cs = tstats.column(fname) if tstats is not None else None
        if cs is None or cs.count == 0:
            return fallback
        return float(max(1, cs.ndv))

    def _stats_selectivity(self, u: _Unit, entry, tstats) -> float | None:
        """Statistics-based selectivity for the unit's pushed conjuncts.

        Each conjunct with column stats is estimated from min/max + NDV;
        the rest keep the textbook per-operator guesses. Returns None (no
        override) unless at least one conjunct hit stats, so the cost
        model's defaults stay authoritative on never-scanned sources.
        """
        if tstats is None or not u.pushed:
            return None
        sel = 1.0
        hit = False
        for p in u.pushed:
            s = self._conjunct_selectivity(p, u.var, entry.format, tstats)
            if s is None:
                sel *= C.predicate_selectivity(p)
            else:
                sel *= s
                hit = True
        return min(1.0, max(0.0, sel)) if hit else None

    def _conjunct_selectivity(self, p, var: str, fmt: str,
                              tstats) -> float | None:
        """One pushed conjunct's selectivity from column statistics, or
        None when the conjunct's shape or the column's stats can't say."""
        if not isinstance(p, A.BinOp):
            return None
        op, lhs, rhs = p.op, p.left, p.right
        fname = _proj_field(lhs, var, fmt)
        if fname is None and op in _COMPARE_FLIP:
            fname = _proj_field(rhs, var, fmt)
            if fname is not None:
                op, lhs, rhs = _COMPARE_FLIP[op], rhs, lhs
        elif fname is None and op in ("=", "!="):
            fname = _proj_field(rhs, var, fmt)
            if fname is not None:
                lhs, rhs = rhs, lhs
        if fname is None:
            return None
        cs = tstats.column(fname)
        if cs is None or cs.count == 0:
            return None
        const = _const_fold(rhs)
        if const is _NO_FOLD:
            return None
        notnull = 1.0 - cs.null_fraction
        ndv = float(max(1, cs.ndv))
        numeric = isinstance(const, (int, float)) and not isinstance(const, bool)
        if op == "=":
            if numeric and cs.num_min is not None \
                    and not (cs.num_min <= const <= cs.num_max):
                return 0.0  # probe outside the observed domain
            return notnull / ndv
        if op == "!=":
            return notnull * (1.0 - 1.0 / ndv)
        if op == "in":
            if not isinstance(const, tuple):
                return None
            return min(1.0, len(const) / ndv) * notnull
        if op in _COMPARE_FLIP:
            if not numeric or cs.num_min is None or cs.num_max is None:
                return None
            lo, hi = float(cs.num_min), float(cs.num_max)
            if hi <= lo:  # single-point domain
                covers = (const >= lo) if op in ("<", "<=") else (const <= lo)
                return notnull if covers else 0.0
            t = min(1.0, max(0.0, (float(const) - lo) / (hi - lo)))
            frac = t if op in ("<", "<=") else 1.0 - t
            return frac * notnull
        return None

    def _configure_unit(self, u: _Unit, usage: dict[str, VarUsage],
                        decisions: PlanDecisions) -> None:
        use = usage.get(u.var, VarUsage())
        if u.kind == "expr":
            u.est_rows, u.est_cost, u.access = 10.0, 10.0, "memory"
            decisions.est_rows[u.var] = u.est_rows
            decisions.est_cost[u.var] = u.est_cost
            return
        if u.kind == "unnest":
            u.est_rows, u.est_cost, u.access = 10.0, 1.0, "memory"
            decisions.est_rows[u.var] = u.est_rows
            decisions.est_cost[u.var] = u.est_cost
            return
        if u.kind == "nest":
            u.est_rows, u.est_cost, u.access = 100.0, 500.0, "memory"
            decisions.est_rows[u.var] = u.est_rows
            decisions.est_cost[u.var] = u.est_cost
            return

        entry = self.catalog.get(u.node.source)
        fmt = entry.format
        u.whole = use.whole
        if fmt == "json":
            u.fields = use.dotted_paths()
        else:
            u.fields = use.top_fields()

        rows = C.source_row_estimate(entry)
        tstats = None
        if self.adaptive and self.stats is not None:
            tstats = self.stats.peek(entry.name, entry.generation)
            if tstats is not None and tstats.row_count is not None:
                # exact cardinality, collected as a byproduct of an earlier
                # scan — supersedes the bytes-per-row guess
                rows = max(1, tstats.row_count)
        pinned = entry.name in self.as_of
        if pinned:
            snap = self.as_of[entry.name]
            u.access = "cold"
            if snap.row_count is not None:
                rows = max(1, snap.row_count)
            mode = "live-prefix re-scan" if snap.live \
                else "pinned cache fallback"
            decisions.notes.append(
                f"{u.var}: AS OF generation {snap.generation} "
                f"({mode}; cold serial, no byproducts)"
            )
        elif entry.data is not None or fmt == "memory":
            u.access = "memory"
        elif fmt == "dbms":
            u.access = "warm"  # loaded store; cost-modelled as const_cost
        elif self.enable_cache and self._cache_covers(entry.name, u):
            u.access = "cache"
        elif fmt == "csv":
            posmap_ready = entry.plugin.posmap.complete and self.enable_posmap
            u.access = "warm" if posmap_ready else "cold"
        elif fmt == "json":
            u.access = "warm" if entry.plugin.has_semi_index() else "cold"
        else:
            u.access = "cold"

        if u.access in ("cold", "warm") and self.enable_cache and not pinned:
            self._choose_population(u, entry)

        batched = fmt in ("csv", "json", "array", "xls") and u.access in ("cold", "warm")
        if batched:
            u.batch_size = self.batch_size if self.batch_size is not None \
                else C.choose_batch_size(rows, len(u.fields) or 1, fmt,
                                         u.access,
                                         calibration=self.calibration)
            decisions.batch[u.var] = u.batch_size

        cost_fmt = "cache" if u.access == "cache" else (
            "memory" if u.access == "memory" else fmt
        )
        if not C.factor_known(cost_fmt, u.access, self.calibration):
            decisions.notes.append(
                f"{u.var}: no cost factor for ({cost_fmt!r}, {u.access!r}); "
                "defaulting to 2.0 — calibrate or extend COST_FACTORS"
            )
        sel_override = self._stats_selectivity(u, entry, tstats)
        est = C.estimate_scan(cost_fmt, u.access, rows, len(u.fields) or 1,
                              u.pushed, batch_size=u.batch_size if batched else 0,
                              calibration=self.calibration,
                              selectivity=sel_override)
        u.est_rows = max(1.0, est.output_rows)
        u.est_cost = est.total_cost

        if fmt in ("csv", "json") and u.access in ("cold", "warm") \
                and entry.name not in self.cleaning_sources and not pinned:
            self._choose_index_access(u, entry, fmt, rows, decisions)

        decisions.access[u.var] = u.access
        decisions.est_rows[u.var] = u.est_rows
        decisions.est_cost[u.var] = u.est_cost

    def _cache_covers(self, source: str, u: _Unit) -> bool:
        if u.whole:
            return self.cache.peek(source, [], whole=True)
        if not u.fields:
            return False
        return self.cache.peek(source, list(u.fields))

    def _choose_population(self, u: _Unit, entry) -> None:
        fmt = entry.format
        if fmt == "json":
            if u.whole:
                # whole objects: layout by expected element size
                size = _avg_json_object_bytes(entry)
                layout = self.policy.nested_layout(size)
                if layout == "positions":
                    return  # pollution avoidance: don't cache parsed objects
                u.populate = ("*",)
                u.populate_layout = layout
            elif u.fields:
                u.populate = u.fields
                u.populate_layout = "columns"
        elif fmt in ("csv", "array", "xls"):
            if u.fields:
                u.populate = u.fields
                u.populate_layout = "columns"

    def _order_units(self, units: list[_Unit], equi) -> list[_Unit]:
        """Greedy cheapest-first join ordering respecting unnest dependencies."""
        connected: dict[str, set[str]] = {}
        for v1, v2, _e1, _e2 in equi:
            connected.setdefault(v1, set()).add(v2)
            connected.setdefault(v2, set()).add(v1)

        remaining = list(units)
        ordered: list[_Unit] = []
        bound: set[str] = set()

        def ready(u: _Unit) -> bool:
            return u.deps <= bound

        while remaining:
            candidates = [u for u in remaining if ready(u)]
            if not candidates:
                raise PlanningError(
                    "circular unnest dependencies in plan: "
                    + ", ".join(u.var for u in remaining)
                )
            if not ordered:
                pick = min(candidates, key=lambda u: (u.est_cost, u.var))
            else:
                joinable = [
                    u for u in candidates
                    if u.kind == "unnest" or (connected.get(u.var, set()) & bound)
                ]
                pool = joinable or candidates
                # dependent unnests first (they're free), then smallest output
                pick = min(
                    pool,
                    key=lambda u: (0 if u.kind == "unnest" else 1, u.est_rows, u.var),
                )
            ordered.append(pick)
            remaining.remove(pick)
            bound.add(pick.var)
        return ordered

    # -- tree construction -----------------------------------------------------------

    def _leaf_plan(self, u: _Unit, decisions: PlanDecisions) -> PhysNode:
        pred = A.make_conjunction(u.pushed) if u.pushed else None
        if pred is not None and isinstance(pred, A.Const) and pred.value is True:
            pred = None
        if u.kind == "scan":
            entry = self.catalog.get(u.node.source)
            index_eq = None
            if entry.format == "dbms":
                index_eq = self._index_pushdown(u, entry, decisions)
            sel_push = self._sel_push(u, entry, pred)
            if sel_push and u.populate:
                # pushdown yields survivor rows only; a survivors-only column
                # must never be admitted as a complete one (truncated-column
                # rule), so population is dropped in favour of the pushdown
                decisions.notes.append(
                    f"{u.var}: selection pushdown over populate⊆predicate "
                    "fields; cache population disabled"
                )
                u.populate = ()
            if u.populate:
                decisions.populate[u.var] = u.populate
            scan = PhysScan(
                source=u.node.source, var=u.var, format=entry.format,
                fields=u.fields, access=u.access, bind_whole=u.whole,
                populate=u.populate, populate_layout=u.populate_layout,
                pred=pred, index_eq=index_eq, batch_size=u.batch_size,
                index_lookup=u.index_lookup, index_emit=u.index_emit,
                sel_push=sel_push,
                vec_filter=self.vector_filters,
                est_rows=u.est_rows, est_cost=u.est_cost,
            )
            if u.node.source in self.as_of:
                scan.as_of = self.as_of[u.node.source].generation
            if scan.pred is not None:
                if scan.sel_push:
                    decisions.filters[u.var] = "vec+push"
                else:
                    decisions.filters[u.var] = \
                        "vec" if scan.vectorized_filter() else "row"
            return scan

        if u.kind == "expr":
            return PhysExprScan(u.node.expr, u.var, pred=pred)
        if u.kind == "nest":
            nest: NestOp = u.node
            sub = self._plan_subtree(
                nest.child, decisions,
                extra_exprs=[e for _n, e in nest.keys] + [nest.head],
            )
            phys = PhysNest(sub, nest.keys, nest.monoid, nest.head, nest.group_var)
            if pred is not None:
                return PhysFilter(phys, pred)
            return phys
        raise PlanningError(f"unexpected leaf kind {u.kind!r}")

    def _sel_push(self, u: _Unit, entry, pred) -> bool:
        """Push the selection vector into the scan itself (late
        materialization): warm CSV scans navigate the predicate columns
        first and materialise the rest only for surviving rows. Requires
        dense scalar extraction (no whole binding) and no cleaning policy
        (the predicate must see repaired values). A populate set no longer
        blocks the pushdown when the populated columns are a subset of the
        predicate columns — the caller then drops the population instead
        (survivors-only columns must not be cached as complete)."""
        if not (
            self.vector_filters
            and pred is not None
            and entry.format == "csv"
            and u.access == "warm"
            and not u.whole
            and bool(u.fields)
            and entry.name not in self.cleaning_sources
        ):
            return False
        if not u.populate:
            return True
        pred_use = collect_usage(pred).get(u.var)
        if pred_use is None or pred_use.whole:
            return False
        return set(u.populate) <= set(pred_use.top_fields())

    def _index_pushdown(self, u: _Unit, entry, decisions: PlanDecisions):
        """Use a store index for a value conjunct on an indexed field.

        "ViDa's access paths can utilize existing indexes to speed-up
        queries to this data source" (§2.1). Matching runs through the same
        :meth:`_value_conjuncts` chooser as raw-file JIT indexes, so
        equality with constant-folded comparands and IN-lists push down
        too. The matched conjunct stays in the scan predicate as a cheap
        recheck.
        """
        indexed = set(entry.plugin.indexed_fields())
        if not indexed:
            return None
        for fname, spec, _sel in self._value_conjuncts(u, entry.format):
            if fname not in indexed:
                continue
            if spec[0] == "eq":
                decisions.notes.append(
                    f"index lookup on {entry.name}.{fname}"
                )
                return (fname, spec[2])
            if spec[0] == "in":
                decisions.notes.append(
                    f"index lookup on {entry.name}.{fname} (IN-list)"
                )
                return (fname, spec[2], "in")
        return None

    def _value_conjuncts(self, u: _Unit, fmt: str) -> list[tuple]:
        """Pushed single-source conjuncts usable as index probes.

        Matches ``field <op> const-expr`` (either side, comparisons
        flipped), ``field IN (c1, c2, ...)``, with comparands constant-
        folded (negation, arithmetic on literals). Returns
        ``(field, spec, selectivity)`` triples, where ``field`` is a
        top-level column for CSV/DBMS sources and a dotted path for JSON,
        and ``spec`` is the lookup-tuple contract of
        :class:`~repro.indexing.ValueIndex`.
        """
        out: list[tuple] = []
        for p in u.pushed:
            if not isinstance(p, A.BinOp):
                continue
            if p.op == "in":
                fname = _proj_field(p.left, u.var, fmt)
                vals = _const_fold(p.right)
                if isinstance(vals, list):
                    vals = tuple(vals)
                if fname is not None and isinstance(vals, tuple):
                    out.append((fname, ("in", fname, vals),
                                C.SELECTIVITY["in"]))
                continue
            if p.op != "=" and p.op not in _COMPARE_FLIP:
                continue
            for field_side, const_side, op in (
                (p.left, p.right, p.op),
                (p.right, p.left,
                 p.op if p.op == "=" else _COMPARE_FLIP[p.op]),
            ):
                fname = _proj_field(field_side, u.var, fmt)
                if fname is None:
                    continue
                value = _const_fold(const_side)
                if value is _NO_FOLD:
                    continue
                if op == "=":
                    spec = ("eq", fname, value)
                elif op in ("<", "<="):
                    spec = ("range", fname, None, value, False, op == "<=")
                else:
                    spec = ("range", fname, value, None, op == ">=", False)
                out.append((fname, spec, C.SELECTIVITY[p.op]))
                break
        return out

    def _choose_index_access(self, u: _Unit, entry, fmt: str, rows: int,
                             decisions: PlanDecisions) -> None:
        """Access-path selection for JIT value indexes, plus byproduct
        marking: a warm scan with a usable, sufficiently covering index
        whose estimated probe+fetch+uncovered-scan cost beats the full
        chunked scan upgrades to ``access=index``; every matched conjunct
        field is marked for byproduct emission either way, so plain scans
        keep growing the indexes the chooser will use next time."""
        matches = self._value_conjuncts(u, fmt)
        if not matches:
            return
        u.index_emit = tuple(dict.fromkeys(f for f, _s, _sel in matches))
        if self.indexes is None or u.access != "warm":
            # positional fetch needs a complete posmap/semi-index; cold
            # scans only emit byproducts this round
            return
        nf = len(u.fields) or 1
        for fname, spec, sel in matches:
            idx = self.indexes.peek(entry.name, entry.generation, fname)
            if idx is None:
                continue  # no index yet: emission will build one, no note
            coverage = idx.coverage(rows)
            if coverage < C.MIN_INDEX_COVERAGE:
                decisions.notes.append(
                    f"{u.var}: index on {entry.name}.{fname} rejected "
                    f"(coverage {coverage:.0%} < "
                    f"{C.MIN_INDEX_COVERAGE:.0%})"
                )
                continue
            icost = C.estimate_index_scan(fmt, rows, nf, coverage, sel)
            if icost >= u.est_cost:
                decisions.notes.append(
                    f"{u.var}: index on {entry.name}.{fname} rejected "
                    f"(cost {icost:.0f} >= scan {u.est_cost:.0f})"
                )
                continue
            u.access = "index"
            u.index_lookup = spec
            u.est_cost = icost
            if u.populate:
                # an index-served scan touches matching rows only; partial
                # columns must never be admitted as complete
                u.populate = ()
            decisions.notes.append(
                f"{u.var}: index lookup on {entry.name}.{fname} "
                f"(coverage {coverage:.0%})"
            )
            return

    def _build_tree(self, ordered, unit_by_var, equi, residual, decisions,
                    extra_exprs) -> PhysNode:
        from ..physical import PhysUnnest

        plan: PhysNode | None = None
        bound: set[str] = set()
        plan_rows = 1.0
        pending_residual = list(residual)

        def attach_residuals() -> None:
            nonlocal plan
            still: list[A.Expr] = []
            for p in pending_residual:
                vars_used = A.free_vars(p) & set(unit_by_var)
                if vars_used <= bound and plan is not None:
                    plan = PhysFilter(plan, p)
                else:
                    still.append(p)
            pending_residual[:] = still

        for u in ordered:
            if u.kind == "unnest":
                pred = A.make_conjunction(u.pushed) if u.pushed else None
                if plan is None:
                    raise PlanningError(f"unnest {u.var!r} has no parent plan")
                plan = PhysUnnest(plan, u.node.path, u.var, pred=pred)
                bound.add(u.var)
                plan_rows *= 5.0
                attach_residuals()
                continue

            leaf = self._leaf_plan(u, decisions)
            if plan is None:
                plan = leaf
                plan_rows = u.est_rows
                bound.add(u.var)
                attach_residuals()
                continue

            join_preds = [
                (v1, v2, e1, e2) for (v1, v2, e1, e2) in equi
                if (v1 in bound and v2 == u.var) or (v2 in bound and v1 == u.var)
            ]
            if join_preds:
                plan_keys: list[A.Expr] = []
                unit_keys: list[A.Expr] = []
                for v1, v2, e1, e2 in join_preds:
                    if v1 in bound:
                        plan_keys.append(e1)
                        unit_keys.append(e2)
                    else:
                        plan_keys.append(e2)
                        unit_keys.append(e1)
                if u.est_rows <= plan_rows:
                    plan = PhysHashJoin(
                        build=leaf, probe=plan,
                        build_keys=tuple(unit_keys), probe_keys=tuple(plan_keys),
                    )
                else:
                    plan = PhysHashJoin(
                        build=plan, probe=leaf,
                        build_keys=tuple(plan_keys), probe_keys=tuple(unit_keys),
                    )
                plan_rows = min(plan_rows, u.est_rows) * 2.0
            else:
                plan = PhysNLJoin(outer=plan, inner=leaf, pred=None)
                plan_rows = plan_rows * u.est_rows
                decisions.notes.append(f"cross join with {u.var}")
            bound.add(u.var)
            attach_residuals()

        if plan is None:
            raise PlanningError("empty plan: no generators")
        if pending_residual:
            for p in pending_residual:
                plan = PhysFilter(plan, p)
        return plan


#: comparison flip for const-on-the-left conjuncts (5 < p.age ≡ p.age > 5)
_COMPARE_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}

#: sentinel for "not a constant expression" (None is a valid constant)
_NO_FOLD = object()


def _proj_field(e: A.Expr, var: str, fmt: str) -> str | None:
    """The field a ``var.attr...`` projection chain names, or None.

    JSON sources accept dotted paths; CSV/DBMS columns are top-level only.
    """
    path: list[str] = []
    while isinstance(e, A.Proj):
        path.append(e.attr)
        e = e.expr
    if not path or not isinstance(e, A.Var) or e.name != var:
        return None
    if fmt != "json" and len(path) > 1:
        return None
    return ".".join(reversed(path))


def _const_fold(e: A.Expr):
    """Evaluate a constant expression to its Python value, or _NO_FOLD.

    Only operators both engines evaluate with plain Python semantics fold
    (literals, list literals, unary minus, + - * /), so a folded probe is
    exactly the value the predicate recheck will compare against.
    """
    if isinstance(e, A.Const):
        return e.value
    if isinstance(e, A.ListLit):
        items = [_const_fold(i) for i in e.items]
        if any(i is _NO_FOLD for i in items):
            return _NO_FOLD
        return tuple(items)
    if isinstance(e, A.UnOp) and e.op == "-":
        v = _const_fold(e.expr)
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            return _NO_FOLD
        return -v
    if isinstance(e, A.BinOp) and e.op in ("+", "-", "*", "/", "%"):
        left = _const_fold(e.left)
        right = _const_fold(e.right)
        if left is _NO_FOLD or right is _NO_FOLD:
            return _NO_FOLD
        try:
            if e.op == "+":
                return left + right
            if e.op == "-":
                return left - right
            if e.op == "*":
                return left * right
            if e.op == "/":
                return left / right
            return left % right
        except (TypeError, ZeroDivisionError):
            return _NO_FOLD
    return _NO_FOLD


def _avg_json_object_bytes(entry) -> float:
    """Rough average top-level object size (file bytes / object count)."""
    import os

    plugin = entry.plugin
    try:
        size = os.path.getsize(plugin.path)
    except OSError:
        return 1024.0
    if plugin.has_semi_index():
        count = plugin.object_count() or 1
    else:
        count = max(1, size // 200)
    return size / count
