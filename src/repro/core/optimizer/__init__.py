"""The ViDa optimizer: raw-data-aware physical planning + cost model."""

from .cost import access_factor, estimate_scan, predicate_selectivity, source_row_estimate
from .planner import PlanDecisions, Planner

__all__ = ["PlanDecisions", "Planner", "access_factor", "estimate_scan",
           "predicate_selectivity", "source_row_estimate"]
