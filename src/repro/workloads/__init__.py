"""Workloads: the Human Brain Project evaluation scenario (paper §6)."""

from .hbp import (
    PAPER_TABLE2,
    HBPConfig,
    HBPDatasets,
    HBPQuery,
    generate_datasets,
    make_workload,
)
from .runner import (
    BASELINES,
    SystemTiming,
    normalize_result,
    run_baseline,
    run_vida,
)

__all__ = [
    "BASELINES", "HBPConfig", "HBPDatasets", "HBPQuery", "PAPER_TABLE2",
    "SystemTiming", "generate_datasets", "make_workload", "normalize_result",
    "run_baseline", "run_vida",
]
