"""Human Brain Project synthetic workload (paper §6, Table 2, Figure 5).

The paper's datasets are private medical data:

=============  =======  ==========  =======  =====
relation       tuples   attributes  size     type
=============  =======  ==========  =======  =====
Patients       41,718   156         29 MB    CSV
Genetics       51,858   17,832      1.8 GB   CSV
BrainRegions   17,000   20,446      5.3 GB   JSON
=============  =======  ==========  =======  =====

This generator reproduces their *shape* at configurable scale: a wide
patients relation (demographics + protein measurements, with nulls), a very
wide genetics relation (SNP genotype codes 0/1/2), and a hierarchical JSON
dataset of MRI-pipeline outputs (per-scan metadata + a nested array of
region records).

The 150-query workload follows §6 verbatim: "(i) epidemiological exploration
where datasets are filtered using geographical, demographic, and age
criteria before computing aggregates … (ii) interactive analysis where the
patient data of interest is joined with information from imaging file
products. Most queries access all three datasets, apply a number of
filtering predicates, and project out 1-5 attributes." An attribute-locality
model makes ≈80% of queries reuse previously-touched attributes (the cache
hit ratio the paper reports); each query is emitted both as ViDa
comprehension text and as an engine-neutral :class:`QuerySpec` so the same
workload drives every system in Figure 5.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field

from ..formats.csvfmt import write_csv
from ..warehouse.query import Filter, QuerySpec

_CITIES = ["geneva", "lausanne", "zurich", "bern", "basel", "lugano",
           "lyon", "munich", "milan", "vienna"]
_PIPELINES = ["fsl-5.0", "freesurfer-5.3", "spm-12"]
_REGION_NAMES = [f"BA{i}" for i in range(1, 48)]


@dataclass(frozen=True)
class HBPConfig:
    """Scale knobs; defaults fit a CI budget while keeping the paper's shape
    (Genetics much wider than Patients; BrainRegions deeply nested)."""

    patients_rows: int = 4000
    patients_proteins: int = 96          # + 6 demographic columns ≈ paper's 156
    genetics_rows: int = 3000
    genetics_snps: int = 2000            # paper: 17832 — scaled, still "very wide"
    brain_objects: int = 1500
    regions_per_object: int = 16
    n_queries: int = 150
    locality: float = 0.8
    hot_pool_size: int = 6
    null_fraction: float = 0.04
    seed: int = 42

    @staticmethod
    def tiny() -> "HBPConfig":
        """A seconds-fast configuration for unit tests."""
        return HBPConfig(patients_rows=200, patients_proteins=12,
                         genetics_rows=250, genetics_snps=30,
                         brain_objects=120, regions_per_object=4,
                         n_queries=20)


@dataclass
class HBPDatasets:
    """Paths + ground-truth characteristics of one generated instance."""

    directory: str
    patients_csv: str
    genetics_csv: str
    brain_json: str
    config: HBPConfig

    def table2_rows(self) -> list[dict]:
        """The Table 2 characteristics of this instance (measured)."""
        out = []
        for name, path, rows, attrs, typ in (
            ("Patients", self.patients_csv,
             self.config.patients_rows, self.config.patients_proteins + 6, "CSV"),
            ("Genetics", self.genetics_csv,
             self.config.genetics_rows, self.config.genetics_snps + 1, "CSV"),
            ("BrainRegions", self.brain_json,
             self.config.brain_objects, None, "JSON"),
        ):
            out.append({
                "relation": name,
                "tuples": rows,
                "attributes": attrs,
                "bytes": os.path.getsize(path),
                "type": typ,
            })
        return out


def generate_datasets(directory: str | os.PathLike,
                      config: HBPConfig | None = None) -> HBPDatasets:
    """Write the three raw datasets into ``directory`` (deterministic)."""
    config = config or HBPConfig()
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    rng = random.Random(config.seed)

    patients_csv = os.path.join(directory, "patients.csv")
    genetics_csv = os.path.join(directory, "genetics.csv")
    brain_json = os.path.join(directory, "brainregions.json")

    _generate_patients(patients_csv, config, rng)
    _generate_genetics(genetics_csv, config, rng)
    _generate_brain(brain_json, config, rng)
    return HBPDatasets(directory, patients_csv, genetics_csv, brain_json, config)


def _maybe_null(rng: random.Random, value, fraction: float):
    return None if rng.random() < fraction else value


def _generate_patients(path: str, config: HBPConfig, rng: random.Random) -> None:
    columns = ["id", "age", "gender", "city", "height", "weight"]
    columns += [f"protein_{k}" for k in range(config.patients_proteins)]

    def rows():
        for i in range(config.patients_rows):
            base = [
                i,
                rng.randint(18, 95),
                rng.choice(("m", "f")),
                rng.choice(_CITIES),
                round(rng.gauss(170, 12), 1),
                round(rng.gauss(72, 15), 1),
            ]
            proteins = [
                _maybe_null(rng, round(rng.gauss(50 + (k % 7) * 10, 12), 3),
                            config.null_fraction)
                for k in range(config.patients_proteins)
            ]
            yield base + proteins

    write_csv(path, columns, rows())


def _generate_genetics(path: str, config: HBPConfig, rng: random.Random) -> None:
    columns = ["id"] + [f"snp_{k}" for k in range(config.genetics_snps)]

    def rows():
        for i in range(config.genetics_rows):
            genotypes = [
                _maybe_null(rng, rng.choices((0, 1, 2), weights=(60, 30, 10))[0],
                            config.null_fraction / 2)
                for _ in range(config.genetics_snps)
            ]
            yield [i] + genotypes

    write_csv(path, columns, rows())


def _generate_brain(path: str, config: HBPConfig, rng: random.Random) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        for i in range(config.brain_objects):
            regions = []
            for r in range(config.regions_per_object):
                regions.append({
                    "name": rng.choice(_REGION_NAMES),
                    "volume": round(rng.gauss(15.0, 4.0), 3),
                    "thickness": round(rng.gauss(2.5, 0.4), 3),
                    "centroid": {
                        "x": round(rng.uniform(-70, 70), 2),
                        "y": round(rng.uniform(-100, 70), 2),
                        "z": round(rng.uniform(-60, 80), 2),
                    },
                })
            obj = {
                "id": i,
                "scan_date": f"201{rng.randint(2, 4)}-{rng.randint(1, 12):02d}-"
                             f"{rng.randint(1, 28):02d}",
                "quality": round(rng.uniform(0.5, 1.0), 3),
                "volume_total": round(sum(r["volume"] for r in regions), 3),
                "meta": {
                    "pipeline": rng.choice(_PIPELINES),
                    "version": rng.randint(1, 5),
                    "voxel_mm": rng.choice((0.7, 1.0, 1.25)),
                },
                "regions": regions,
            }
            fh.write(json.dumps(obj) + "\n")


# ---------------------------------------------------------------------------
# Workload generation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HBPQuery:
    """One workload query in both dialects (ViDa text + neutral spec)."""

    index: int
    kind: str                     # 'epidemiological' | 'interactive'
    comprehension: str
    spec: QuerySpec
    hot: bool                      # drawn entirely from the hot attribute pool


@dataclass
class _AttrPools:
    hot_proteins: list[str]
    cold_proteins: list[str]
    hot_snps: list[str]
    cold_snps: list[str]
    brain_paths: list[str] = field(default_factory=lambda: [
        "volume_total", "quality", "meta.version"
    ])


def _make_pools(config: HBPConfig, rng: random.Random) -> _AttrPools:
    proteins = [f"protein_{k}" for k in range(config.patients_proteins)]
    snps = [f"snp_{k}" for k in range(config.genetics_snps)]
    hot_p = rng.sample(proteins, min(config.hot_pool_size, len(proteins)))
    hot_s = rng.sample(snps, min(config.hot_pool_size, len(snps)))
    return _AttrPools(
        hot_proteins=hot_p,
        cold_proteins=[p for p in proteins if p not in hot_p],
        hot_snps=hot_s,
        cold_snps=[s for s in snps if s not in hot_s],
    )


def make_workload(config: HBPConfig | None = None) -> list[HBPQuery]:
    """Generate the deterministic query sequence of §6."""
    config = config or HBPConfig()
    rng = random.Random(config.seed + 1)
    pools = _make_pools(config, rng)
    queries: list[HBPQuery] = []
    for i in range(config.n_queries):
        hot = rng.random() < config.locality
        # The paper: "Most queries access all three datasets" — epidemiological
        # exploration opens the session, interactive analysis dominates.
        if i < config.n_queries // 5 or rng.random() < 0.25:
            queries.append(_epidemiological(i, config, rng, pools, hot))
        else:
            queries.append(_interactive(i, config, rng, pools, hot))
    return queries


def _pick(rng: random.Random, hot_list: list[str], cold_list: list[str],
          hot: bool) -> str:
    if hot or not cold_list:
        return rng.choice(hot_list)
    return rng.choice(cold_list)


def _age_filter(rng: random.Random) -> tuple[str, Filter]:
    lo = rng.randint(30, 70)
    return f"p.age >= {lo}", Filter("age", ">=", lo)


def _demo_filters(rng: random.Random) -> tuple[list[str], list[Filter]]:
    texts, filters = [], []
    text, f = _age_filter(rng)
    texts.append(text)
    filters.append(f)
    if rng.random() < 0.5:
        g = rng.choice(("m", "f"))
        texts.append(f'p.gender = "{g}"')
        filters.append(Filter("gender", "=", g))
    if rng.random() < 0.4:
        city = rng.choice(_CITIES)
        texts.append(f'p.city = "{city}"')
        filters.append(Filter("city", "=", city))
    return texts, filters


def _epidemiological(i: int, config: HBPConfig, rng: random.Random,
                     pools: _AttrPools, hot: bool) -> HBPQuery:
    """Filter by demographics/genotype, aggregate a protein level."""
    texts, pfilters = _demo_filters(rng)
    snp = _pick(rng, pools.hot_snps, pools.cold_snps, hot)
    genotype = rng.randint(0, 2)
    protein = _pick(rng, pools.hot_proteins, pools.cold_proteins, hot)
    func = rng.choice(("count", "avg", "max"))

    head = "1" if func == "count" else f"p.{protein}"
    comp = (
        "for { p <- Patients, g <- Genetics, p.id = g.id, "
        + ", ".join(texts)
        + f", g.{snp} = {genotype} }} yield {func} {head}"
    )
    spec = QuerySpec(
        sources=("Patients", "Genetics"),
        filters={"Patients": tuple(pfilters),
                 "Genetics": (Filter(snp, "=", genotype),)},
        project=(("Patients", "id", "id"), ("Patients", protein, "value")),
        aggregate=(func, "value"),
        distinct=False,
    )
    return HBPQuery(i, "epidemiological", comp, spec, hot)


def _interactive(i: int, config: HBPConfig, rng: random.Random,
                 pools: _AttrPools, hot: bool) -> HBPQuery:
    """3-way join; project 1-5 attributes across the datasets."""
    texts, pfilters = _demo_filters(rng)
    snp = _pick(rng, pools.hot_snps, pools.cold_snps, hot)
    genotype = rng.randint(0, 2)
    vol_lo = round(rng.uniform(180.0, 280.0), 1)

    n_extra = rng.randint(0, 3)
    proj: list[tuple[str, str, str]] = [("Patients", "id", "id")]
    fields_text = ["id := p.id"]
    chosen: set[str] = {"id"}
    brain_path = rng.choice(pools.brain_paths)
    proj.append(("BrainRegions", brain_path, brain_path.replace(".", "_")))
    fields_text.append(f"{brain_path.replace('.', '_')} := b.{brain_path}")
    chosen.add(brain_path.replace(".", "_"))
    for _ in range(n_extra):
        if rng.random() < 0.6:
            attr = _pick(rng, pools.hot_proteins, pools.cold_proteins, hot)
            source, prefix = "Patients", "p"
        else:
            attr = _pick(rng, pools.hot_snps, pools.cold_snps, hot)
            source, prefix = "Genetics", "g"
        if attr in chosen:
            continue
        chosen.add(attr)
        proj.append((source, attr, attr))
        fields_text.append(f"{attr} := {prefix}.{attr}")

    comp = (
        "for { p <- Patients, g <- Genetics, b <- BrainRegions, "
        "p.id = g.id, g.id = b.id, "
        + ", ".join(texts)
        + f", g.{snp} = {genotype}, b.volume_total >= {vol_lo} }} "
        + "yield bag (" + ", ".join(fields_text) + ")"
    )
    spec = QuerySpec(
        sources=("Patients", "Genetics", "BrainRegions"),
        filters={
            "Patients": tuple(pfilters),
            "Genetics": (Filter(snp, "=", genotype),),
            "BrainRegions": (Filter("volume_total", ">=", vol_lo),),
        },
        project=tuple(dict.fromkeys(proj)),
        distinct=True,
    )
    return HBPQuery(i, "interactive", comp, spec, hot)


#: the paper's original Table 2, for paper-vs-measured reporting
PAPER_TABLE2 = [
    {"relation": "Patients", "tuples": 41718, "attributes": 156,
     "size": "29 MB", "type": "CSV"},
    {"relation": "Genetics", "tuples": 51858, "attributes": 17832,
     "size": "1.8 GB", "type": "CSV"},
    {"relation": "BrainRegions", "tuples": 17000, "attributes": 20446,
     "size": "5.3 GB", "type": "JSON"},
]
