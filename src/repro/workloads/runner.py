"""Workload runners: drive the same HBP workload through ViDa and through
every baseline configuration of Figure 5, timing preparation and queries.

System configurations (paper §6):

- ``vida``            — ViDa over the raw files (no preparation at all)
- ``colstore``        — single warehouse, column store; JSON flattened first
- ``rowstore``        — single warehouse, row store; JSON flattened first
- ``colstore+mongo``  — column store + document store under the mediator
- ``rowstore+mongo``  — row store + document store under the mediator
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..core.session import ViDa
from ..warehouse import (
    ColStore,
    ColStoreAdapter,
    DocStore,
    DocStoreAdapter,
    IntegrationLayer,
    RowStore,
    RowStoreAdapter,
    flatten_json_to_csv,
    load_csv_to_colstore,
    load_csv_to_rowstore,
    load_json_to_docstore,
    run_spec,
)
from .hbp import HBPDatasets, HBPQuery

BASELINES = ("colstore", "rowstore", "colstore+mongo", "rowstore+mongo")


@dataclass
class SystemTiming:
    """Figure 5 bar components for one system."""

    system: str
    flatten_s: float = 0.0
    load_dbms_s: float = 0.0
    load_mongo_s: float = 0.0
    query_s: float = 0.0
    per_query_s: list[float] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    @property
    def prep_s(self) -> float:
        return self.flatten_s + self.load_dbms_s + self.load_mongo_s

    @property
    def total_s(self) -> float:
        return self.prep_s + self.query_s


def run_vida(datasets: HBPDatasets, queries: list[HBPQuery],
             engine: str = "jit", session: ViDa | None = None
             ) -> tuple[SystemTiming, ViDa, list]:
    """Run the workload on ViDa over the raw files; returns timing + session
    (for cache statistics) + per-query results."""
    timing = SystemTiming("vida")
    db = session or ViDa()
    t0 = time.perf_counter()
    db.register_csv("Patients", datasets.patients_csv)
    db.register_csv("Genetics", datasets.genetics_csv)
    db.register_json("BrainRegions", datasets.brain_json)
    register_s = time.perf_counter() - t0
    timing.extra["register_s"] = register_s

    results = []
    t_workload = time.perf_counter()
    for q in queries:
        t0 = time.perf_counter()
        result = db.query(q.comprehension, engine=engine)
        timing.per_query_s.append(time.perf_counter() - t0)
        results.append(result.value)
    timing.query_s = (time.perf_counter() - t_workload) + register_s
    timing.extra["cache_hit_ratio"] = db.cache_hit_ratio()
    timing.extra["cache_served"] = sum(1 for s in db.query_log if s.cache_only)
    timing.extra["raw_bytes"] = sum(s.raw_bytes for s in db.query_log)
    return timing, db, results


def _prepare_single_warehouse(kind: str, datasets: HBPDatasets, workdir: str):
    """Flatten JSON + load everything into one RDBMS; returns adapters."""
    timing = SystemTiming(kind)
    flat_csv = os.path.join(workdir, f"brain_flat_{kind}.csv")
    report = flatten_json_to_csv(datasets.brain_json, flat_csv)
    timing.flatten_s = report.seconds

    if kind == "colstore":
        store: ColStore | RowStore = ColStore()
        loader = load_csv_to_colstore
        adapter_cls = ColStoreAdapter
    else:
        store = RowStore(os.path.join(workdir, f"{kind}_heaps"))
        loader = load_csv_to_rowstore
        adapter_cls = RowStoreAdapter

    t_load = 0.0
    for table, path in (("Patients", datasets.patients_csv),
                        ("Genetics", datasets.genetics_csv),
                        ("BrainRegions", flat_csv)):
        rep = loader(store, table, path)
        t_load += rep.seconds
    timing.load_dbms_s = t_load

    adapters = {name: adapter_cls(store, name)
                for name in ("Patients", "Genetics", "BrainRegions")}
    timing.extra["storage_bytes"] = sum(
        store.storage_bytes(t) for t in ("Patients", "Genetics", "BrainRegions")
    )
    return timing, adapters, store


def _prepare_federated(kind: str, datasets: HBPDatasets, workdir: str):
    """RDBMS for the CSVs + document store for the JSON, under the mediator."""
    timing = SystemTiming(kind)
    if kind.startswith("colstore"):
        store: ColStore | RowStore = ColStore()
        loader = load_csv_to_colstore
        adapter_cls = ColStoreAdapter
    else:
        store = RowStore(os.path.join(workdir, f"{kind}_heaps"))
        loader = load_csv_to_rowstore
        adapter_cls = RowStoreAdapter

    t_load = 0.0
    for table, path in (("Patients", datasets.patients_csv),
                        ("Genetics", datasets.genetics_csv)):
        rep = loader(store, table, path)
        t_load += rep.seconds
    timing.load_dbms_s = t_load

    docs = DocStore()
    rep = load_json_to_docstore(docs, "BrainRegions", datasets.brain_json)
    timing.load_mongo_s = rep.seconds
    timing.extra["mongo_storage_bytes"] = docs.stats("BrainRegions")["storage_bytes"]
    timing.extra["raw_json_bytes"] = os.path.getsize(datasets.brain_json)

    mediator = IntegrationLayer()
    mediator.register("Patients", adapter_cls(store, "Patients"), kind.split("+")[0])
    mediator.register("Genetics", adapter_cls(store, "Genetics"), kind.split("+")[0])
    mediator.register("BrainRegions", DocStoreAdapter(docs, "BrainRegions"), "mongo")
    return timing, mediator, (store, docs)


def run_baseline(kind: str, datasets: HBPDatasets, queries: list[HBPQuery],
                 workdir: str) -> tuple[SystemTiming, list]:
    """Prepare one baseline configuration and run the workload through it."""
    if kind not in BASELINES:
        raise ValueError(f"unknown baseline {kind!r}; choose from {BASELINES}")
    os.makedirs(workdir, exist_ok=True)
    if kind in ("colstore", "rowstore"):
        timing, adapters, _store = _prepare_single_warehouse(kind, datasets, workdir)

        def run_one(spec):
            return run_spec(spec, adapters)
    else:
        timing, mediator, _stores = _prepare_federated(kind, datasets, workdir)

        def run_one(spec):
            return mediator.query(spec)

    results = []
    t_workload = time.perf_counter()
    for q in queries:
        t0 = time.perf_counter()
        results.append(run_one(q.spec))
        timing.per_query_s.append(time.perf_counter() - t0)
    timing.query_s = time.perf_counter() - t_workload
    return timing, results


def normalize_result(value) -> object:
    """Canonical form for cross-system result comparison.

    Collections become sorted tuples of sorted items; scalars/aggregate
    dicts collapse to their value (floats rounded to tolerate accumulation
    order differences).
    """
    def canon(v):
        if isinstance(v, float):
            return round(v, 6)
        return v

    if isinstance(value, list):
        rows = []
        for row in value:
            if isinstance(row, dict):
                rows.append(tuple(sorted((k, canon(v)) for k, v in row.items())))
            else:
                rows.append((canon(row),))
        return tuple(sorted(rows, key=repr))
    if isinstance(value, dict):
        # aggregate result dicts: single value
        if len(value) == 1:
            return canon(next(iter(value.values())))
        return tuple(sorted((k, canon(v)) for k, v in value.items()))
    return canon(value)
