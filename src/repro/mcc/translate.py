"""Translation of normalized comprehensions into the nested relational algebra.

Follows the left-to-right qualifier processing of Fegaras & Maier: each
generator extends the current plan (scan, join, or unnest), each filter
becomes a selection, and the head becomes the final :class:`ReduceOp`.

Generator classification:

- ``v <- Name`` where ``Name`` is a registered source  → :class:`ScanOp`
  (joined to the current plan if one exists);
- ``v <- e.path...`` rooted at an already-bound variable → :class:`UnnestOp`
  (dependent/correlated binding);
- ``v <- <expr>`` with no plan-bound free variables → :class:`ExprScanOp`.

Nested comprehensions remaining in the head or in predicates after
normalization (genuinely nested queries, e.g. building a sub-collection per
result record) are kept as expressions; the executors evaluate them as
correlated subplans, and the optimizer may rewrite grouping-shaped ones to
:class:`NestOp` (see ``repro.core.optimizer``).
"""

from __future__ import annotations

from ..errors import PlanningError
from . import ast as A
from .algebra import (
    AlgNode,
    ExprScanOp,
    JoinOp,
    ReduceOp,
    ScanOp,
    SelectOp,
    UnnestOp,
)


def translate(comp: A.Comprehension, source_names: set[str] | frozenset[str]) -> ReduceOp:
    """Translate a (normalized) comprehension into an algebra plan.

    ``source_names`` is the set of catalog source names; free variables of
    the comprehension must be drawn from it.
    """
    plan: AlgNode | None = None
    bound: set[str] = set()
    pending_filters: list[A.Expr] = []

    for q in comp.qualifiers:
        if isinstance(q, A.Generator):
            plan = _extend_with_generator(plan, q, bound, source_names)
            bound.add(q.var)
            # Filters seen before any generator (constants / outer-correlated
            # predicates) attach as soon as a plan exists.
            while pending_filters and plan is not None:
                plan = SelectOp(plan, pending_filters.pop(0))
        elif isinstance(q, A.Filter):
            if plan is None:
                pending_filters.append(q.pred)
            else:
                plan = SelectOp(plan, q.pred)
        elif isinstance(q, A.Bind):
            # Normalization eliminates binds; tolerate leftovers by inlining.
            raise PlanningError(
                f"let-binding {q.var!r} survived normalization; normalize() first"
            )
        else:
            raise PlanningError(f"unknown qualifier {type(q).__name__}")

    if plan is None:
        # Generator-free comprehension: reduces a single unit row, possibly
        # guarded by constant filters: for { p } yield sum e
        plan = ExprScanOp(A.ListLit((A.Const(0),)), A.fresh_var("unit"))
        for pred in pending_filters:
            plan = SelectOp(plan, pred)

    return ReduceOp(plan, comp.monoid, comp.head)


def _extend_with_generator(
    plan: AlgNode | None,
    gen: A.Generator,
    bound: set[str],
    source_names: set[str] | frozenset[str],
) -> AlgNode:
    src = gen.source
    free = A.free_vars(src)

    if isinstance(src, A.Var) and src.name in source_names:
        scan: AlgNode = ScanOp(src.name, gen.var)
        if plan is None:
            return scan
        return JoinOp(plan, scan, A.Const(True))

    if free & bound:
        # Dependent generator: a path over already-bound variables.
        if plan is None:
            raise PlanningError(
                f"generator {gen.var!r} depends on unbound variables {free & bound}"
            )
        return UnnestOp(plan, src, gen.var)

    unknown = free - set(source_names)
    if isinstance(src, A.Var) and src.name not in source_names:
        raise PlanningError(f"unknown source {src.name!r}")
    if unknown:
        raise PlanningError(f"generator over expression with unbound variables {unknown}")

    scan = ExprScanOp(src, gen.var)
    if plan is None:
        return scan
    return JoinOp(plan, scan, A.Const(True))


def referenced_sources(expr: A.Expr, source_names: set[str] | frozenset[str]) -> set[str]:
    """All catalog sources mentioned anywhere in ``expr`` (incl. nested)."""
    out: set[str] = set()
    for node in A.walk(expr):
        if isinstance(node, A.Var) and node.name in source_names:
            out.add(node.name)
    return out
