"""Type system for the monoid comprehension calculus.

ViDa spans several data models (Section 3 of the paper): flat relations,
nested objects (JSON), and multi-dimensional arrays. The type language here
covers all of them:

- primitives: ``int``, ``float``, ``bool``, ``string``, ``null``
- records: ``Record(a=int, b=string)``
- collections: ``set``/``bag``/``list`` of an element type
- arrays: dimensioned collections, e.g. ``Array(Dim(i,int), Dim(j,int), elem)``
- ``AnyType`` supports gradually-typed raw sources whose schema is unknown.

Types are immutable value objects; equality is structural.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence


class Type:
    """Base class for all calculus types."""

    def is_collection(self) -> bool:
        return isinstance(self, (CollectionType, ArrayType))

    def is_numeric(self) -> bool:
        return isinstance(self, PrimitiveType) and self.name in ("int", "float")


@dataclass(frozen=True)
class PrimitiveType(Type):
    """A scalar type: one of int, float, bool, string, null."""

    name: str

    def __post_init__(self):
        if self.name not in ("int", "float", "bool", "string", "null"):
            raise ValueError(f"unknown primitive type: {self.name!r}")

    def __str__(self) -> str:
        return self.name


INT = PrimitiveType("int")
FLOAT = PrimitiveType("float")
BOOL = PrimitiveType("bool")
STRING = PrimitiveType("string")
NULL = PrimitiveType("null")


@dataclass(frozen=True)
class AnyType(Type):
    """Unknown type; compatible with everything (gradual typing for raw data)."""

    def __str__(self) -> str:
        return "any"


ANY = AnyType()


@dataclass(frozen=True)
class RecordType(Type):
    """A record with named, typed fields. Field order is significant."""

    fields: tuple[tuple[str, Type], ...]

    @staticmethod
    def of(mapping: Mapping[str, Type] | Sequence[tuple[str, Type]]) -> "RecordType":
        if isinstance(mapping, Mapping):
            return RecordType(tuple(mapping.items()))
        return RecordType(tuple(mapping))

    def field_type(self, name: str) -> Type | None:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        return None

    def field_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.fields)

    def __str__(self) -> str:
        inner = ", ".join(f"{n}: {t}" for n, t in self.fields)
        return f"record({inner})"


@dataclass(frozen=True)
class CollectionType(Type):
    """A homogeneous collection: ``kind`` is one of set, bag, list."""

    kind: str
    elem: Type

    def __post_init__(self):
        if self.kind not in ("set", "bag", "list"):
            raise ValueError(f"unknown collection kind: {self.kind!r}")

    def __str__(self) -> str:
        return f"{self.kind}({self.elem})"


@dataclass(frozen=True)
class Dim:
    """A named, typed array dimension, e.g. ``Dim('i', INT)``."""

    name: str
    type: Type = field(default=INT)

    def __str__(self) -> str:
        return f"Dim({self.name}, {self.type})"


@dataclass(frozen=True)
class ArrayType(Type):
    """A multi-dimensional array of ``elem`` values (ROOT/FITS/NetCDF style)."""

    dims: tuple[Dim, ...]
    elem: Type

    @property
    def rank(self) -> int:
        return len(self.dims)

    def __str__(self) -> str:
        inner = ", ".join(str(d) for d in self.dims)
        return f"array({inner}; {self.elem})"


@dataclass(frozen=True)
class FunctionType(Type):
    """The type of a lambda abstraction."""

    param: Type
    result: Type

    def __str__(self) -> str:
        return f"({self.param} -> {self.result})"


def bag_of(elem: Type) -> CollectionType:
    return CollectionType("bag", elem)


def set_of(elem: Type) -> CollectionType:
    return CollectionType("set", elem)


def list_of(elem: Type) -> CollectionType:
    return CollectionType("list", elem)


def unify(a: Type, b: Type) -> Type | None:
    """Return the least common type of ``a`` and ``b``, or None if incompatible.

    ``AnyType`` unifies with everything; int widens to float; null unifies
    with any primitive (nullable scalars); records unify field-wise when they
    share the same field names.
    """
    if isinstance(a, AnyType):
        return b
    if isinstance(b, AnyType):
        return a
    if a == b:
        return a
    if isinstance(a, PrimitiveType) and isinstance(b, PrimitiveType):
        names = {a.name, b.name}
        if names == {"int", "float"}:
            return FLOAT
        if "null" in names:
            other = a if b.name == "null" else b
            return other
        return None
    if isinstance(a, CollectionType) and isinstance(b, CollectionType):
        elem = unify(a.elem, b.elem)
        if elem is None:
            return None
        # bag absorbs list/set when kinds differ: queries may merge
        # heterogeneous collections, losing order/uniqueness guarantees.
        kind = a.kind if a.kind == b.kind else "bag"
        return CollectionType(kind, elem)
    if isinstance(a, RecordType) and isinstance(b, RecordType):
        if a.field_names() != b.field_names():
            return None
        fields = []
        for (name, ta), (_, tb) in zip(a.fields, b.fields):
            t = unify(ta, tb)
            if t is None:
                return None
            fields.append((name, t))
        return RecordType(tuple(fields))
    return None


def type_of_python_value(value: object) -> Type:
    """Infer the calculus type of a Python runtime value (for schema learning)."""
    if value is None:
        return NULL
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return STRING
    if isinstance(value, dict):
        return RecordType(tuple((k, type_of_python_value(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        elem: Type = ANY
        for item in value:
            t = type_of_python_value(item)
            u = unify(elem, t)
            elem = u if u is not None else ANY
        return CollectionType("list", elem)
    return ANY
