"""Type checker for the monoid comprehension calculus.

Queries are checked against an environment mapping free variables (data
source names registered in the catalog) to their collection types. The
checker validates user queries before they reach the engine (paper
Section 3.1: descriptions are "required to validate user queries").

Raw sources with learned or partial schemas may carry :class:`AnyType`
components; the checker degrades gracefully to gradual typing there.
"""

from __future__ import annotations

from ..errors import TypeCheckError
from . import ast as A
from . import types as T

_NUMERIC_OPS = ("+", "-", "*", "/", "%")
_CMP_OPS = ("=", "!=", "<", "<=", ">", ">=")

#: result type of each builtin function, given argument types
_BUILTIN_RESULT = {
    "len": T.INT, "abs": None, "lower": T.STRING, "upper": T.STRING,
    "substr": T.STRING, "round": T.FLOAT, "float": T.FLOAT, "int": T.INT,
    "str": T.STRING, "startswith": T.BOOL, "endswith": T.BOOL,
    "contains": T.BOOL, "sqrt": T.FLOAT, "exp": T.FLOAT, "log": T.FLOAT,
}


class TypeChecker:
    """Checks an expression bottom-up, threading a variable environment."""

    def __init__(self, env: dict[str, T.Type] | None = None):
        self.global_env = dict(env or {})

    def check(self, expr: A.Expr) -> T.Type:
        """Return the type of ``expr`` or raise :class:`TypeCheckError`."""
        return self._check(expr, dict(self.global_env))

    # ------------------------------------------------------------------

    def _check(self, expr: A.Expr, env: dict[str, T.Type]) -> T.Type:
        if isinstance(expr, A.Null):
            return T.NULL
        if isinstance(expr, A.Const):
            return T.type_of_python_value(expr.value)
        if isinstance(expr, A.Var):
            if expr.name not in env:
                raise TypeCheckError(f"unbound variable {expr.name!r}")
            return env[expr.name]
        if isinstance(expr, A.Proj):
            base = self._check(expr.expr, env)
            if isinstance(base, T.AnyType):
                return T.ANY
            if isinstance(base, T.RecordType):
                ftype = base.field_type(expr.attr)
                if ftype is None:
                    raise TypeCheckError(
                        f"record has no field {expr.attr!r}; "
                        f"available: {', '.join(base.field_names())}"
                    )
                return ftype
            raise TypeCheckError(f"cannot project {expr.attr!r} from {base}")
        if isinstance(expr, A.RecordCons):
            fields = tuple((name, self._check(e, env)) for name, e in expr.fields)
            names = [n for n, _t in fields]
            if len(set(names)) != len(names):
                raise TypeCheckError(f"duplicate record field in {names}")
            return T.RecordType(fields)
        if isinstance(expr, A.If):
            ct = self._check(expr.cond, env)
            if not isinstance(ct, (T.AnyType,)) and ct != T.BOOL:
                raise TypeCheckError(f"if-condition must be bool, got {ct}")
            tt = self._check(expr.then, env)
            et = self._check(expr.els, env)
            u = T.unify(tt, et)
            if u is None:
                raise TypeCheckError(f"if-branches have incompatible types {tt} / {et}")
            return u
        if isinstance(expr, A.BinOp):
            return self._check_binop(expr, env)
        if isinstance(expr, A.UnOp):
            it = self._check(expr.expr, env)
            if expr.op == "not":
                if not isinstance(it, T.AnyType) and it != T.BOOL:
                    raise TypeCheckError(f"'not' needs bool, got {it}")
                return T.BOOL
            if not isinstance(it, T.AnyType) and not it.is_numeric():
                raise TypeCheckError(f"unary '-' needs a number, got {it}")
            return it
        if isinstance(expr, A.Lambda):
            inner = dict(env)
            inner[expr.param] = T.ANY
            result = self._check(expr.body, inner)
            return T.FunctionType(T.ANY, result)
        if isinstance(expr, A.Apply):
            ft = self._check(expr.func, env)
            self._check(expr.arg, env)
            if isinstance(ft, T.FunctionType):
                return ft.result
            if isinstance(ft, T.AnyType):
                return T.ANY
            raise TypeCheckError(f"cannot apply non-function of type {ft}")
        if isinstance(expr, A.Call):
            for arg in expr.args:
                self._check(arg, env)
            if expr.name not in _BUILTIN_RESULT:
                raise TypeCheckError(f"unknown builtin {expr.name!r}")
            result = _BUILTIN_RESULT[expr.name]
            if result is None:  # polymorphic (abs): same as argument
                return self._check(expr.args[0], env) if expr.args else T.ANY
            return result
        if isinstance(expr, A.Index):
            base = self._check(expr.expr, env)
            for ix in expr.indices:
                self._check(ix, env)
            if isinstance(base, T.ArrayType):
                if len(expr.indices) > base.rank:
                    raise TypeCheckError(
                        f"array of rank {base.rank} indexed with {len(expr.indices)} subscripts"
                    )
                if len(expr.indices) == base.rank:
                    return base.elem
                remaining = base.dims[len(expr.indices):]
                return T.ArrayType(remaining, base.elem)
            if isinstance(base, T.CollectionType):
                return base.elem
            if isinstance(base, T.AnyType):
                return T.ANY
            raise TypeCheckError(f"cannot index into {base}")
        if isinstance(expr, A.ListLit):
            # Heterogeneous literals (e.g. the (key, value) pairs fed to the
            # ordering monoid) degrade to list(any) instead of failing.
            elem: T.Type = T.ANY
            for item in expr.items:
                it = self._check(item, env)
                u = T.unify(elem, it)
                elem = u if u is not None else T.ANY
                if u is None:
                    return T.list_of(T.ANY)
            return T.list_of(elem)
        if isinstance(expr, A.Zero):
            if expr.monoid.collection:
                return T.CollectionType(expr.monoid.kind or "bag", T.ANY)
            return T.ANY
        if isinstance(expr, A.Singleton):
            et = self._check(expr.expr, env)
            return expr.monoid.result_type(et)
        if isinstance(expr, A.Merge):
            lt = self._check(expr.left, env)
            rt = self._check(expr.right, env)
            u = T.unify(lt, rt)
            if u is None:
                raise TypeCheckError(f"cannot merge {lt} with {rt}")
            return u
        if isinstance(expr, A.Comprehension):
            return self._check_comprehension(expr, env)
        raise TypeCheckError(f"cannot type {type(expr).__name__}")

    def _check_binop(self, expr: A.BinOp, env: dict[str, T.Type]) -> T.Type:
        lt = self._check(expr.left, env)
        rt = self._check(expr.right, env)
        op = expr.op
        if op in ("and", "or"):
            for side, t in (("left", lt), ("right", rt)):
                if not isinstance(t, T.AnyType) and t != T.BOOL:
                    raise TypeCheckError(f"{op!r} {side} operand must be bool, got {t}")
            return T.BOOL
        if op in _CMP_OPS:
            if T.unify(lt, rt) is None:
                raise TypeCheckError(f"cannot compare {lt} with {rt}")
            return T.BOOL
        if op == "in":
            if isinstance(rt, (T.CollectionType, T.ArrayType, T.AnyType)):
                return T.BOOL
            raise TypeCheckError(f"'in' needs a collection on the right, got {rt}")
        if op == "like":
            return T.BOOL
        if op in _NUMERIC_OPS:
            if op == "+" and lt == T.STRING and rt == T.STRING:
                return T.STRING
            for t in (lt, rt):
                if not isinstance(t, T.AnyType) and not t.is_numeric():
                    raise TypeCheckError(f"operator {op!r} needs numbers, got {lt} and {rt}")
            if T.FLOAT in (lt, rt) or op == "/":
                return T.FLOAT
            if isinstance(lt, T.AnyType) or isinstance(rt, T.AnyType):
                return T.ANY
            return T.INT
        raise TypeCheckError(f"unknown operator {op!r}")

    def _check_comprehension(self, comp: A.Comprehension, env: dict[str, T.Type]) -> T.Type:
        inner = dict(env)
        for q in comp.qualifiers:
            if isinstance(q, A.Generator):
                src = self._check(q.source, inner)
                if isinstance(src, T.CollectionType):
                    inner[q.var] = src.elem
                elif isinstance(src, T.ArrayType):
                    # Iterating an array binds (dim..., value) records.
                    fields = tuple((d.name, d.type) for d in src.dims)
                    if isinstance(src.elem, T.RecordType):
                        fields = fields + src.elem.fields
                    else:
                        fields = fields + (("value", src.elem),)
                    inner[q.var] = T.RecordType(fields)
                elif isinstance(src, T.AnyType):
                    inner[q.var] = T.ANY
                else:
                    raise TypeCheckError(
                        f"generator {q.var!r} must range over a collection, got {src}"
                    )
            elif isinstance(q, A.Filter):
                pt = self._check(q.pred, inner)
                if not isinstance(pt, T.AnyType) and pt != T.BOOL:
                    raise TypeCheckError(f"filter must be bool, got {pt}")
            elif isinstance(q, A.Bind):
                inner[q.var] = self._check(q.expr, inner)
        head_t = self._check(comp.head, inner)
        mono = comp.monoid
        if not mono.collection and mono.name in ("sum", "prod", "avg", "max", "min", "median"):
            if not isinstance(head_t, T.AnyType) and not head_t.is_numeric():
                if mono.name not in ("max", "min") or head_t != T.STRING:
                    raise TypeCheckError(
                        f"monoid {mono.name!r} needs a numeric head, got {head_t}"
                    )
        if mono.name in ("all", "any") and not isinstance(head_t, T.AnyType):
            if head_t != T.BOOL:
                raise TypeCheckError(f"monoid {mono.name!r} needs a bool head, got {head_t}")
        return mono.result_type(head_t)


def typecheck(expr: A.Expr, env: dict[str, T.Type] | None = None) -> T.Type:
    """Convenience wrapper: check ``expr`` with ``env`` and return its type."""
    return TypeChecker(env).check(expr)
