"""Nested relational algebra (paper Section 3.2/4; Fegaras & Maier §6).

The normalized calculus is translated to this algebra, "which is much closer
to an execution plan, and over which an additional number of rewritings can
be applied". Operators:

- :class:`ScanOp` — bind each element of a named catalog source.
- :class:`ExprScanOp` — bind each element of an arbitrary collection
  expression (list literals, cached intermediates).
- :class:`SelectOp` — filter by a predicate.
- :class:`JoinOp` — theta join of two subplans (predicate may be ``true``;
  the physical planner extracts equi-join keys from enclosing selections).
- :class:`UnnestOp` — bind each element of a collection-valued path rooted
  at an already-bound variable (JSON arrays, nested collections).
- :class:`OuterUnnestOp` / :class:`OuterJoinOp` — null-preserving variants
  used when nested subqueries must not drop outer tuples.
- :class:`NestOp` — group by key expressions, folding each group through a
  monoid (the algebra's grouping form of Fegaras & Maier).
- :class:`ReduceOp` — the generalized projection: folds qualifying heads
  through the output monoid; "a generalization of the straightforward
  relational projection operator" (paper Section 4).

Every operator knows which variables it binds; expressions in predicates and
heads are plain calculus expressions over those variables.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import ast as A
from .monoids import Monoid


class AlgNode:
    """Base class for algebra operators."""

    def children(self) -> tuple["AlgNode", ...]:
        return ()

    def bound_vars(self) -> tuple[str, ...]:
        """Variables visible to ancestors of this node, in binding order."""
        out: tuple[str, ...] = ()
        for child in self.children():
            out += child.bound_vars()
        return out


@dataclass(frozen=True)
class ScanOp(AlgNode):
    """Scan catalog source ``source``, binding each element to ``var``."""

    source: str
    var: str

    def bound_vars(self):
        return (self.var,)


@dataclass(frozen=True)
class ExprScanOp(AlgNode):
    """Scan the collection produced by evaluating ``expr`` (no free plan vars)."""

    expr: A.Expr
    var: str

    def bound_vars(self):
        return (self.var,)


@dataclass(frozen=True)
class SelectOp(AlgNode):
    child: AlgNode
    pred: A.Expr

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class JoinOp(AlgNode):
    left: AlgNode
    right: AlgNode
    pred: A.Expr

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class OuterJoinOp(AlgNode):
    """Left outer join: unmatched left tuples bind right vars to null."""

    left: AlgNode
    right: AlgNode
    pred: A.Expr

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class UnnestOp(AlgNode):
    """Bind ``var`` to each element of collection-valued ``path``."""

    child: AlgNode
    path: A.Expr
    var: str

    def children(self):
        return (self.child,)

    def bound_vars(self):
        return self.child.bound_vars() + (self.var,)


@dataclass(frozen=True)
class OuterUnnestOp(AlgNode):
    child: AlgNode
    path: A.Expr
    var: str

    def children(self):
        return (self.child,)

    def bound_vars(self):
        return self.child.bound_vars() + (self.var,)


@dataclass(frozen=True)
class NestOp(AlgNode):
    """Group by ``keys``; fold ``head`` of each group through ``monoid``.

    Binds ``group_var`` to a record ⟨key..., group⟩ for ancestors.
    """

    child: AlgNode
    keys: tuple[tuple[str, A.Expr], ...]
    monoid: Monoid
    head: A.Expr
    group_var: str

    def children(self):
        return (self.child,)

    def bound_vars(self):
        return (self.group_var,)


@dataclass(frozen=True)
class ReduceOp(AlgNode):
    """Fold qualifying ``head`` values through ``monoid`` (root of every plan)."""

    child: AlgNode
    monoid: Monoid
    head: A.Expr

    def children(self):
        return (self.child,)


def explain(node: AlgNode, indent: int = 0) -> str:
    """Render an algebra tree as an indented single string (for EXPLAIN)."""
    from .pretty import pretty

    pad = "  " * indent
    if isinstance(node, ScanOp):
        return f"{pad}Scan({node.source} as {node.var})"
    if isinstance(node, ExprScanOp):
        return f"{pad}ExprScan({pretty(node.expr)} as {node.var})"
    if isinstance(node, SelectOp):
        return f"{pad}Select[{pretty(node.pred)}]\n" + explain(node.child, indent + 1)
    if isinstance(node, (JoinOp, OuterJoinOp)):
        name = "OuterJoin" if isinstance(node, OuterJoinOp) else "Join"
        return (
            f"{pad}{name}[{pretty(node.pred)}]\n"
            + explain(node.left, indent + 1)
            + "\n"
            + explain(node.right, indent + 1)
        )
    if isinstance(node, (UnnestOp, OuterUnnestOp)):
        name = "OuterUnnest" if isinstance(node, OuterUnnestOp) else "Unnest"
        return (
            f"{pad}{name}[{pretty(node.path)} as {node.var}]\n"
            + explain(node.child, indent + 1)
        )
    if isinstance(node, NestOp):
        keys = ", ".join(f"{n}={pretty(e)}" for n, e in node.keys)
        return (
            f"{pad}Nest[{keys}; {node.monoid.name} {pretty(node.head)} as {node.group_var}]\n"
            + explain(node.child, indent + 1)
        )
    if isinstance(node, ReduceOp):
        return (
            f"{pad}Reduce[{node.monoid.name} {pretty(node.head)}]\n"
            + explain(node.child, indent + 1)
        )
    raise TypeError(f"cannot explain {type(node).__name__}")
