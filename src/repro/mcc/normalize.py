"""Normalization of monoid comprehensions (Fegaras & Maier, TODS 2000, §5).

The paper (Section 4) describes this phase as "applying a series of rewrite
rules to optimize the query (e.g., remove intermediate variables, simplify
boolean expressions, etc.)" before translation to the nested relational
algebra. The rules implemented here:

==== ======================================================================
N1   beta reduction:          (λv.e1) e2            →  e1[v := e2]
N2   projection:              ⟨...,A=e,...⟩.A        →  e
N3   conditional folding:     if true/false then...  →  branch
N4   let elimination:         ⊕{e | .., v := e', ..} →  substitute v
N5   empty generator:         ⊕{e | .., v ← Z⊗, ..}  →  Z⊕
N6   singleton generator:     ⊕{e | .., v ← U⊗(e'),.} → substitute v
N7   merge generator:         ⊕{e | .., v ← e1⊗e2,.} →  ⊕-merge of two
                                                        comprehensions
N8   generator unnesting:     ⊕{e | .., v ← ⊗{e'|q̄},..}
                              → ⊕{e[v:=e'] | .., q̄, ..}   (when ⊗ ⊑ ⊕)
N9   filter folding:          true filters dropped; false filter → Z⊕
N10  conjunction splitting:   filter (p and q) → filter p, filter q
N11  if-generator splitting:  v ← (if p then e1 else e2) is rewritten to
                              two guarded comprehensions merged with ⊕
==== ======================================================================

Normalization is run to a fixpoint; each pass is a single bottom-up rewrite
sweep. The result is a *canonical form* where generators range only over
source collections or paths (no comprehension-valued generators remain when
unnesting is sound).
"""

from __future__ import annotations

from . import ast as A
from .monoids import Monoid, subsumes


def normalize(expr: A.Expr, max_passes: int = 50) -> A.Expr:
    """Rewrite ``expr`` to normal form (fixpoint of the rules above)."""
    current = expr
    for _ in range(max_passes):
        rewritten = _rewrite(current)
        if rewritten == current:
            return current
        current = rewritten
    return current


# ---------------------------------------------------------------------------


def _rewrite(expr: A.Expr) -> A.Expr:
    """One bottom-up rewrite pass."""
    # Rewrite children first.
    if isinstance(expr, A.Comprehension):
        expr = _rewrite_comprehension_children(expr)
    else:
        children = expr.children()
        if children:
            expr = expr.replace_children([_rewrite(c) for c in children])

    # N1 — beta reduction
    if isinstance(expr, A.Apply) and isinstance(expr.func, A.Lambda):
        return A.substitute(expr.func.body, expr.func.param, expr.arg)

    # N2 — record projection on a literal record
    if isinstance(expr, A.Proj) and isinstance(expr.expr, A.RecordCons):
        for name, value in expr.expr.fields:
            if name == expr.attr:
                return value

    # N3 — conditional folding + boolean simplification
    if isinstance(expr, A.If) and isinstance(expr.cond, A.Const):
        return expr.then if expr.cond.value else expr.els
    if isinstance(expr, A.BinOp):
        simplified = _simplify_bool(expr)
        if simplified is not None:
            return simplified
    if isinstance(expr, A.UnOp) and isinstance(expr.expr, A.Const):
        if expr.op == "not":
            return A.Const(not expr.expr.value)
        if expr.op == "-" and isinstance(expr.expr.value, (int, float)) \
                and not isinstance(expr.expr.value, bool):
            return A.Const(-expr.expr.value)

    if isinstance(expr, A.Comprehension):
        return _rewrite_comprehension(expr)
    return expr


def _simplify_bool(expr: A.BinOp) -> A.Expr | None:
    left, right, op = expr.left, expr.right, expr.op
    if op == "and":
        if isinstance(left, A.Const):
            return right if left.value else A.Const(False)
        if isinstance(right, A.Const):
            return left if right.value else A.Const(False)
    if op == "or":
        if isinstance(left, A.Const):
            return A.Const(True) if left.value else right
        if isinstance(right, A.Const):
            return A.Const(True) if right.value else left
    if isinstance(left, A.Const) and isinstance(right, A.Const):
        if op in ("=", "!=", "<", "<=", ">", ">="):
            table = {
                "=": left.value == right.value,
                "!=": left.value != right.value,
                "<": left.value < right.value,
                "<=": left.value <= right.value,
                ">": left.value > right.value,
                ">=": left.value >= right.value,
            }
            return A.Const(table[op])
        if op in ("+", "-", "*", "/", "%"):
            try:
                table = {
                    "+": lambda: left.value + right.value,
                    "-": lambda: left.value - right.value,
                    "*": lambda: left.value * right.value,
                    "/": lambda: left.value / right.value,
                    "%": lambda: left.value % right.value,
                }
                return A.Const(table[op]())
            except (ZeroDivisionError, TypeError):
                return None
    return None


def _rewrite_comprehension_children(comp: A.Comprehension) -> A.Comprehension:
    quals: list[A.Qualifier] = []
    for q in comp.qualifiers:
        if isinstance(q, A.Generator):
            quals.append(A.Generator(q.var, _rewrite(q.source)))
        elif isinstance(q, A.Filter):
            quals.append(A.Filter(_rewrite(q.pred)))
        else:
            quals.append(A.Bind(q.var, _rewrite(q.expr)))
    return A.Comprehension(comp.monoid, _rewrite(comp.head), tuple(quals))


def _rewrite_comprehension(comp: A.Comprehension) -> A.Expr:
    monoid = comp.monoid
    quals = list(comp.qualifiers)

    for i, q in enumerate(quals):
        before = quals[:i]
        after = quals[i + 1:]

        # N4 — let elimination (substitute into the remainder)
        if isinstance(q, A.Bind):
            rest = A.Comprehension(monoid, comp.head, tuple(after))
            rest = A._subst_comprehension(rest, q.var, q.expr)
            return A.Comprehension(monoid, rest.head, tuple(before) + rest.qualifiers)

        if isinstance(q, A.Filter):
            # N9 — constant filters
            if isinstance(q.pred, A.Const):
                if q.pred.value:
                    return A.Comprehension(monoid, comp.head, tuple(before + after))
                return A.Zero(monoid)
            # N10 — split conjunctions
            parts = A.conjuncts(q.pred)
            if len(parts) > 1:
                split = [A.Filter(p) for p in parts]
                return A.Comprehension(monoid, comp.head, tuple(before + split + after))

        if isinstance(q, A.Generator):
            src = q.source
            # N5 — generator over a zero collection
            if isinstance(src, A.Zero):
                return A.Zero(monoid)
            if isinstance(src, A.ListLit) and not src.items:
                return A.Zero(monoid)
            # N6 — generator over a singleton
            if isinstance(src, A.Singleton):
                rest = A.Comprehension(monoid, comp.head, tuple(after))
                rest = A._subst_comprehension(rest, q.var, src.expr)
                return A.Comprehension(
                    monoid, rest.head, tuple(before) + rest.qualifiers
                )
            if isinstance(src, A.ListLit) and len(src.items) == 1:
                rest = A.Comprehension(monoid, comp.head, tuple(after))
                rest = A._subst_comprehension(rest, q.var, src.items[0])
                return A.Comprehension(
                    monoid, rest.head, tuple(before) + rest.qualifiers
                )
            # N7 — generator over a merge
            if isinstance(src, A.Merge) and monoid.commutative:
                left = A.Comprehension(
                    monoid, comp.head,
                    tuple(before) + (A.Generator(q.var, src.left),) + tuple(after),
                )
                right = A.Comprehension(
                    monoid, comp.head,
                    tuple(before) + (A.Generator(q.var, src.right),) + tuple(after),
                )
                return A.Merge(monoid, left, right)
            # N8 — unnest a comprehension-valued generator
            if isinstance(src, A.Comprehension) and subsumes(monoid, src.monoid):
                inner = src
                rest = A.Comprehension(monoid, comp.head, tuple(after))
                rest = A._subst_comprehension(rest, q.var, inner.head)
                new_quals = tuple(before) + inner.qualifiers + rest.qualifiers
                return A.Comprehension(monoid, rest.head, new_quals)
            # N11 — generator over a conditional collection
            if isinstance(src, A.If):
                then_comp = A.Comprehension(
                    monoid, comp.head,
                    tuple(before) + (A.Filter(src.cond), A.Generator(q.var, src.then))
                    + tuple(after),
                )
                else_comp = A.Comprehension(
                    monoid, comp.head,
                    tuple(before)
                    + (A.Filter(A.UnOp("not", src.cond)), A.Generator(q.var, src.els))
                    + tuple(after),
                )
                if monoid.commutative:
                    return A.Merge(monoid, then_comp, else_comp)
    return comp
