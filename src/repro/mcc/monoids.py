"""Monoid library for the comprehension calculus (paper Section 3.2, Table 1).

A monoid of type T is an associative merge function ``⊕`` with a left/right
identity ``Z⊕``. Collection monoids additionally provide a unit function
``U⊕(x)`` building singleton collections. The paper's query language is
``for {q1, ..., qn} yield ⊕ e``; the accumulator ``⊕`` is one of the monoids
defined here.

Implementation note: some of the paper's "monoids" (avg, median) are not
monoids on their output domain but are implemented — exactly as Fegaras &
Maier suggest — via an internal accumulator domain plus a finalizer:
``lift`` maps an element into the accumulator domain, ``merge`` combines
accumulators, ``finalize`` maps the accumulator to the user-visible result.
For true monoids ``lift``/``finalize`` are identities.

Algebraic properties (``commutative``, ``idempotent``) gate which
normalization rewrites are sound (e.g. unnesting a ``set`` generator into a
``bag`` comprehension is only sound because bag-merge is commutative).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from . import types as T


@dataclass(frozen=True, eq=False)
class Monoid:
    """A (possibly lifted) monoid usable as a comprehension accumulator.

    Attributes:
        name: surface syntax name used after ``yield``.
        zero: nullary callable producing the identity accumulator.
        lift: maps one element into the accumulator domain.
        merge: associative binary function on accumulators.
        finalize: maps the final accumulator to the user-visible value.
        commutative / idempotent: algebraic flags used by the normalizer.
        collection: True for set/bag/list/array monoids.
        kind: for collection monoids, the collection kind name.
    """

    name: str
    zero: Callable[[], Any]
    lift: Callable[[Any], Any]
    merge: Callable[[Any, Any], Any]
    finalize: Callable[[Any], Any]
    commutative: bool = True
    idempotent: bool = False
    collection: bool = False
    kind: str | None = None
    params: tuple = ()

    def __eq__(self, other) -> bool:
        """Identity by (name, params): parameterised monoids constructed
        twice (fresh closures) must still compare equal in AST equality."""
        if not isinstance(other, Monoid):
            return NotImplemented
        return self.name == other.name and self.params == other.params

    def __hash__(self) -> int:
        return hash((self.name, self.params))

    def __reduce__(self):
        """Pickle by (name, params): the lambda fields cannot cross a process
        boundary, but every monoid is reconstructible from the registry —
        required by the process-pool morsel backend, which ships monoids
        inside kernel specs."""
        return (get_monoid, (self.name, self.params))

    def unit(self, value: Any) -> Any:
        """Build a singleton accumulator ``U⊕(value)``."""
        return self.merge(self.zero(), self.lift(value))

    def fold(self, values) -> Any:
        """Fold an iterable through the monoid and finalize the result."""
        acc = self.zero()
        for v in values:
            acc = self.merge(acc, self.lift(v))
        return self.finalize(acc)

    def result_type(self, elem: T.Type) -> T.Type:
        """The result type of a comprehension with this accumulator over elem."""
        if self.collection:
            return T.CollectionType(self.kind or "bag", elem)
        if self.name in ("sum", "prod", "max", "min", "median"):
            return elem
        if self.name == "avg":
            return T.FLOAT
        if self.name == "count":
            return T.INT
        if self.name in ("all", "any"):
            return T.BOOL
        if self.name == "topk":
            return T.CollectionType("list", elem)
        return elem


def _bag_merge(a: list, b: list) -> list:
    if not a:
        return b
    if not b:
        return a
    return a + b


def _set_merge(a: set, b: set) -> set:
    if not a:
        return b
    if not b:
        return a
    return a | b


def _hashable(v: Any) -> Any:
    """Convert a runtime value into a hashable representative for set semantics."""
    if isinstance(v, dict):
        return tuple((k, _hashable(x)) for k, x in v.items())
    if isinstance(v, (list, set)):
        return tuple(_hashable(x) for x in v)
    return v


class _SetAcc:
    """Set accumulator that tolerates unhashable elements (dicts, lists).

    Stores canonical hashable keys alongside the original values so results
    keep their natural Python shape.
    """

    __slots__ = ("items",)

    def __init__(self):
        self.items: dict[Any, Any] = {}

    def add(self, value: Any) -> None:
        self.items.setdefault(_hashable(value), value)

    def merge(self, other: "_SetAcc") -> "_SetAcc":
        out = _SetAcc()
        out.items = dict(self.items)
        for k, v in other.items.items():
            out.items.setdefault(k, v)
        return out

    def values(self) -> list:
        return list(self.items.values())


def _set_zero() -> _SetAcc:
    return _SetAcc()


def _set_lift(v: Any) -> _SetAcc:
    acc = _SetAcc()
    acc.add(v)
    return acc


SUM = Monoid("sum", zero=lambda: 0, lift=lambda x: x, merge=lambda a, b: a + b,
             finalize=lambda a: a, commutative=True)
PROD = Monoid("prod", zero=lambda: 1, lift=lambda x: x, merge=lambda a, b: a * b,
              finalize=lambda a: a, commutative=True)
COUNT = Monoid("count", zero=lambda: 0, lift=lambda _x: 1, merge=lambda a, b: a + b,
               finalize=lambda a: a, commutative=True)
MAX = Monoid("max", zero=lambda: None, lift=lambda x: x,
             merge=lambda a, b: b if a is None else (a if b is None else (a if a >= b else b)),
             finalize=lambda a: a, commutative=True, idempotent=True)
MIN = Monoid("min", zero=lambda: None, lift=lambda x: x,
             merge=lambda a, b: b if a is None else (a if b is None else (a if a <= b else b)),
             finalize=lambda a: a, commutative=True, idempotent=True)
ANY = Monoid("any", zero=lambda: False, lift=bool, merge=lambda a, b: a or b,
             finalize=lambda a: a, commutative=True, idempotent=True)
ALL = Monoid("all", zero=lambda: True, lift=bool, merge=lambda a, b: a and b,
             finalize=lambda a: a, commutative=True, idempotent=True)
AVG = Monoid("avg", zero=lambda: (0.0, 0), lift=lambda x: (x, 1),
             merge=lambda a, b: (a[0] + b[0], a[1] + b[1]),
             finalize=lambda a: (a[0] / a[1]) if a[1] else None, commutative=True)


def _median_finalize(values: list) -> Any:
    if not values:
        return None
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


MEDIAN = Monoid("median", zero=list, lift=lambda x: [x], merge=_bag_merge,
                finalize=_median_finalize, commutative=True)

BAG = Monoid("bag", zero=list, lift=lambda x: [x], merge=_bag_merge,
             finalize=lambda a: a, commutative=True, collection=True, kind="bag")
LIST = Monoid("list", zero=list, lift=lambda x: [x], merge=_bag_merge,
              finalize=lambda a: a, commutative=False, collection=True, kind="list")
SET = Monoid("set", zero=_set_zero, lift=_set_lift,
             merge=lambda a, b: a.merge(b),
             finalize=lambda a: a.values(), commutative=True, idempotent=True,
             collection=True, kind="set")


def make_topk(k: int) -> Monoid:
    """The top-k monoid: keeps the k largest elements, descending order.

    Accumulator is a bounded min-heap of (key, seq, value) entries; ``seq``
    breaks ties so unorderable payloads never reach comparison.
    """
    if k <= 0:
        raise ValueError("topk requires k >= 1")

    def merge(a: list, b: list) -> list:
        out = list(a)
        for item in b:
            if len(out) < k:
                heapq.heappush(out, item)
            elif item[0] > out[0][0]:
                heapq.heapreplace(out, item)
        return out

    counter = iter(range(10**18))

    def lift(x: Any) -> list:
        pair = isinstance(x, (tuple, list)) and len(x) == 2
        key = x[0] if pair else x
        val = x[1] if pair else x
        return [(key, next(counter), val)]

    def finalize(acc: list) -> list:
        return [val for _key, _seq, val in sorted(acc, key=lambda t: (-_sortkey(t[0]), t[1]))]

    def _sortkey(key: Any):
        return key

    return Monoid(f"topk", zero=list, lift=lift, merge=merge, finalize=finalize,
                  commutative=True, collection=False, params=(k,))


def make_orderby(descending: bool = False) -> Monoid:
    """The ordering monoid: collects (key, value) pairs, yields values sorted by key."""

    def lift(x: Any) -> list:
        if isinstance(x, (tuple, list)) and len(x) == 2:
            return [(x[0], x[1])]
        return [(x, x)]

    def finalize(acc: list) -> list:
        return [v for _k, v in sorted(acc, key=lambda kv: kv[0], reverse=descending)]

    name = "orderby_desc" if descending else "orderby"
    return Monoid(name, zero=list, lift=lift, merge=_bag_merge, finalize=finalize,
                  commutative=True, params=(descending,))


_REGISTRY: dict[str, Monoid] = {
    m.name: m
    for m in (SUM, PROD, COUNT, MAX, MIN, ANY, ALL, AVG, MEDIAN, BAG, LIST, SET)
}
_REGISTRY["or"] = ANY
_REGISTRY["and"] = ALL
_REGISTRY["exists"] = ANY
_REGISTRY["union"] = SET


def get_monoid(name: str, params: tuple = ()) -> Monoid:
    """Look up a monoid by surface name; parameterised monoids take params.

    >>> get_monoid('sum').fold([1, 2, 3])
    6
    >>> get_monoid('topk', (2,)).fold([5, 1, 9, 3])
    [9, 5]
    """
    if name == "topk":
        if len(params) != 1:
            raise KeyError("topk requires one parameter: k")
        return make_topk(int(params[0]))
    if name in ("orderby", "orderby_desc"):
        return make_orderby(descending=name.endswith("desc"))
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown monoid: {name!r}") from None


def monoid_names() -> tuple[str, ...]:
    """All registered non-parameterised monoid names plus parameterised ones."""
    return tuple(sorted(_REGISTRY)) + ("topk", "orderby", "orderby_desc")


def is_collection_monoid(name: str) -> bool:
    return name in ("bag", "list", "set", "union")


def subsumes(outer: Monoid, inner: Monoid) -> bool:
    """True when a generator over an ``inner``-collection may be unnested into
    an ``outer`` comprehension (the ⊗ ⊑ ⊕ condition of Fegaras & Maier).

    The conditions: merging order may be lost only if the outer monoid is
    commutative; duplicate collapse in the inner collection is only safe if
    the outer monoid is idempotent or the inner monoid preserves duplicates.
    """
    if not inner.collection:
        return False
    if not outer.commutative and inner.commutative:
        # e.g. list comprehension over a set/bag generator: order undefined.
        return False
    if inner.idempotent and not outer.idempotent:
        # A set generator feeding a bag/sum accumulator must NOT be unnested:
        # the set's duplicate elimination is semantically significant and
        # inlining the inner qualifiers would re-introduce duplicates.
        return False
    return True
