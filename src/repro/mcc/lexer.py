"""Tokenizer for the ViDa comprehension surface syntax.

The syntax resembles Scala sequence comprehensions (paper Section 3.2)::

    for { e <- Employees, d <- Departments,
          e.deptNo = d.id, d.deptName = "HR" } yield sum 1

Tokens carry 1-based line/column positions for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParseError

KEYWORDS = frozenset(
    ["for", "yield", "if", "then", "else", "true", "false", "null",
     "and", "or", "not", "in", "like"]
)

#: Multi-character operators must be matched before their prefixes.
SYMBOLS = ["<-", ":=", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%",
           "(", ")", "{", "}", "[", "]", ",", "."]


@dataclass(frozen=True)
class Token:
    kind: str  # IDENT, INT, FLOAT, STRING, KEYWORD, SYMBOL, EOF
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`ParseError` on illegal characters.

    >>> [t.value for t in tokenize("for { x <- S } yield sum x.a")][:4]
    ['for', '{', 'x', '<-']
    """
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":  # comment to end of line
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == '"' or ch == "'":
            quote = ch
            j = i + 1
            buf: list[str] = []
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    esc = text[j + 1]
                    buf.append({"n": "\n", "t": "\t", "\\": "\\", quote: quote}.get(esc, esc))
                    j += 2
                else:
                    buf.append(text[j])
                    j += 1
            if j >= n:
                raise ParseError("unterminated string literal", line, col)
            tokens.append(Token("STRING", "".join(buf), line, col))
            col += j + 1 - i
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # Do not swallow '.' if it starts a projection (e.g. 1 .a
                    # never happens, but `arr[0].x` must not lex 0. as float).
                    if j + 1 < n and not text[j + 1].isdigit():
                        break
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j + 1 < n and (
                    text[j + 1].isdigit() or text[j + 1] in "+-"
                ):
                    seen_exp = True
                    j += 2 if text[j + 1] in "+-" else 1
                else:
                    break
            word = text[i:j]
            kind = "FLOAT" if (seen_dot or seen_exp) else "INT"
            tokens.append(Token(kind, word, line, col))
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = "KEYWORD" if word in KEYWORDS else "IDENT"
            tokens.append(Token(kind, word, line, col))
            col += j - i
            i = j
            continue
        for sym in SYMBOLS:
            if text.startswith(sym, i):
                tokens.append(Token("SYMBOL", sym, line, col))
                col += len(sym)
                i += len(sym)
                break
        else:
            raise ParseError(f"illegal character {ch!r}", line, col)
    tokens.append(Token("EOF", "", line, col))
    return tokens
