"""Monoid comprehension calculus: ViDa's internal "wrapping" query language.

Public surface:

- :func:`parse` — comprehension syntax → calculus AST
- :func:`pretty` — AST → surface syntax
- :func:`typecheck` — validate an AST against source schemas
- :func:`normalize` — Fegaras–Maier rewrite rules to canonical form
- :func:`translate` — canonical calculus → nested relational algebra
- :mod:`monoids` — the monoid library (``get_monoid``)
"""

from .ast import (
    BinOp,
    Bind,
    Call,
    Comprehension,
    Const,
    Expr,
    Filter,
    Generator,
    If,
    Index,
    Lambda,
    ListLit,
    Merge,
    Null,
    Proj,
    Qualifier,
    RecordCons,
    Singleton,
    UnOp,
    Var,
    Zero,
    free_vars,
    substitute,
)
from .monoids import Monoid, get_monoid, monoid_names
from .normalize import normalize
from .parser import parse
from .pretty import pretty
from .translate import translate
from .typecheck import typecheck

__all__ = [
    "BinOp", "Bind", "Call", "Comprehension", "Const", "Expr", "Filter",
    "Generator", "If", "Index", "Lambda", "ListLit", "Merge", "Monoid",
    "Null", "Proj", "Qualifier", "RecordCons", "Singleton", "UnOp", "Var",
    "Zero", "free_vars", "get_monoid", "monoid_names", "normalize", "parse",
    "pretty", "substitute", "translate", "typecheck",
]
