"""Pretty-printer for calculus expressions.

``pretty(parse(text))`` re-parses to an equal AST (round-trip property,
covered by hypothesis tests). Output uses the same surface syntax the parser
accepts.
"""

from __future__ import annotations

from . import ast as A

#: Binding strength for parenthesisation, mirroring the parser's precedence.
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3, "in": 3, "like": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5, "%": 5,
}


def pretty(expr: A.Expr) -> str:
    """Render ``expr`` in surface syntax."""
    return _pp(expr, 0)


def _pp(expr: A.Expr, parent_prec: int) -> str:
    if isinstance(expr, A.Null):
        return "null"
    if isinstance(expr, A.Const):
        if isinstance(expr.value, bool):
            return "true" if expr.value else "false"
        if isinstance(expr.value, str):
            escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        return repr(expr.value)
    if isinstance(expr, A.Var):
        return expr.name
    if isinstance(expr, A.Proj):
        return f"{_pp_postfix_base(expr.expr)}.{expr.attr}"
    if isinstance(expr, A.Index):
        indices = ", ".join(_pp(i, 0) for i in expr.indices)
        return f"{_pp_postfix_base(expr.expr)}[{indices}]"
    if isinstance(expr, A.RecordCons):
        inner = ", ".join(f"{name} := {_pp(e, 0)}" for name, e in expr.fields)
        return f"({inner})"
    if isinstance(expr, A.ListLit):
        return "[" + ", ".join(_pp(e, 0) for e in expr.items) + "]"
    if isinstance(expr, A.Call):
        return f"{expr.name}(" + ", ".join(_pp(a, 0) for a in expr.args) + ")"
    if isinstance(expr, A.If):
        s = f"if {_pp(expr.cond, 0)} then {_pp(expr.then, 0)} else {_pp(expr.els, 0)}"
        return f"({s})" if parent_prec > 0 else s
    if isinstance(expr, A.BinOp):
        prec = _PRECEDENCE[expr.op]
        left = _pp(expr.left, prec)
        # Right operand gets prec+1 so left-associativity round-trips.
        right = _pp(expr.right, prec + 1)
        s = f"{left} {expr.op} {right}"
        return f"({s})" if prec < parent_prec else s
    if isinstance(expr, A.UnOp):
        inner = _pp(expr.expr, 6)
        return f"-{inner}" if expr.op == "-" else f"not {inner}"
    if isinstance(expr, A.Lambda):
        return f"(\\{expr.param} -> {_pp(expr.body, 0)})"
    if isinstance(expr, A.Apply):
        return f"{_pp(expr.func, 6)}({_pp(expr.arg, 0)})"
    if isinstance(expr, A.Zero):
        return f"zero[{expr.monoid.name}]"
    if isinstance(expr, A.Singleton):
        return f"unit[{expr.monoid.name}]({_pp(expr.expr, 0)})"
    if isinstance(expr, A.Merge):
        return f"merge[{expr.monoid.name}]({_pp(expr.left, 0)}, {_pp(expr.right, 0)})"
    if isinstance(expr, A.Comprehension):
        quals = ", ".join(_pp_qual(q) for q in expr.qualifiers)
        mono = expr.monoid.name
        if expr.monoid.params:
            mono += "(" + ", ".join(repr(p) for p in expr.monoid.params) + ")"
        head = _pp(expr.head, 6)
        s = f"for {{ {quals} }} yield {mono} {head}"
        return f"({s})" if parent_prec > 0 else s
    raise TypeError(f"cannot pretty-print {type(expr).__name__}")


def _pp_postfix_base(expr: A.Expr) -> str:
    """Base of a projection/index chain; parenthesise non-atomic bases."""
    if isinstance(expr, (A.Var, A.Proj, A.Index, A.RecordCons, A.Call)):
        return _pp(expr, 0)
    return f"({_pp(expr, 0)})"


def _pp_qual(q: A.Qualifier) -> str:
    if isinstance(q, A.Generator):
        return f"{q.var} <- {_pp(q.source, 0)}"
    if isinstance(q, A.Bind):
        return f"{q.var} := {_pp(q.expr, 0)}"
    if isinstance(q, A.Filter):
        return _pp(q.pred, 0)
    raise TypeError(f"unknown qualifier {type(q).__name__}")
