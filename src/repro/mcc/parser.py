"""Recursive-descent parser for the comprehension surface syntax.

Grammar (precedence low to high)::

    expr        := comprehension | conditional | or_expr
    comprehension := 'for' '{' qualifier (',' qualifier)* '}'
                     'yield' monoid expr
    conditional := 'if' expr 'then' expr 'else' expr
    or_expr     := and_expr ('or' and_expr)*
    and_expr    := cmp_expr ('and' cmp_expr)*
    cmp_expr    := add_expr (('='|'!='|'<'|'<='|'>'|'>='|'in'|'like') add_expr)?
    add_expr    := mul_expr (('+'|'-') mul_expr)*
    mul_expr    := unary (('*'|'/'|'%') unary)*
    unary       := ('-'|'not') unary | postfix
    postfix     := primary ('.' IDENT | '[' expr (',' expr)* ']')*
    primary     := literal | IDENT | IDENT '(' args ')'
                 | '(' record_or_paren | '[' list ']'
    record_or_paren := IDENT ':=' ...  => record construction, else grouping
    qualifier   := IDENT '<-' expr | IDENT ':=' expr | expr
    monoid      := IDENT ('(' const (',' const)* ')')?

Equality is spelled ``=`` (the paper's notation); the parser produces
:class:`~repro.mcc.ast.BinOp` nodes with op ``'='``.
"""

from __future__ import annotations

from ..errors import ParseError
from . import ast as A
from .lexer import Token, tokenize
from .monoids import get_monoid, monoid_names

_CMP_OPS = ("=", "!=", "<", "<=", ">", ">=")

#: Builtin scalar functions callable in queries.
BUILTIN_FUNCS = frozenset(
    ["len", "abs", "lower", "upper", "substr", "round", "float", "int", "str",
     "startswith", "endswith", "contains", "sqrt", "exp", "log"]
)


class Parser:
    """Single-use parser over a token stream."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token utilities ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def expect(self, kind: str, value: str | None = None) -> Token:
        tok = self.peek()
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value or kind
            raise ParseError(f"expected {want!r}, found {tok.value!r}", tok.line, tok.column)
        return self.advance()

    def match(self, kind: str, value: str | None = None) -> bool:
        tok = self.peek()
        if tok.kind == kind and (value is None or tok.value == value):
            self.advance()
            return True
        return False

    # -- entry point ---------------------------------------------------------

    def parse(self) -> A.Expr:
        expr = self.expression()
        tok = self.peek()
        if tok.kind != "EOF":
            raise ParseError(f"unexpected trailing input {tok.value!r}", tok.line, tok.column)
        return expr

    # -- expression grammar ---------------------------------------------------

    def expression(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == "KEYWORD" and tok.value == "for":
            return self.comprehension()
        if tok.kind == "KEYWORD" and tok.value == "if":
            return self.conditional()
        return self.or_expr()

    def comprehension(self) -> A.Expr:
        self.expect("KEYWORD", "for")
        self.expect("SYMBOL", "{")
        qualifiers: list[A.Qualifier] = []
        if not (self.peek().kind == "SYMBOL" and self.peek().value == "}"):
            qualifiers.append(self.qualifier())
            while self.match("SYMBOL", ","):
                qualifiers.append(self.qualifier())
        self.expect("SYMBOL", "}")
        self.expect("KEYWORD", "yield")
        monoid = self.monoid()
        head = self.expression()
        return A.Comprehension(monoid, head, tuple(qualifiers))

    def qualifier(self) -> A.Qualifier:
        tok = self.peek()
        nxt = self.peek(1)
        if tok.kind == "IDENT" and nxt.kind == "SYMBOL" and nxt.value == "<-":
            self.advance()
            self.advance()
            return A.Generator(tok.value, self.expression())
        if tok.kind == "IDENT" and nxt.kind == "SYMBOL" and nxt.value == ":=":
            self.advance()
            self.advance()
            return A.Bind(tok.value, self.expression())
        return A.Filter(self.expression())

    def monoid(self):
        tok = self.expect("IDENT")
        name = tok.value
        params: tuple = ()
        if name in ("topk",) and self.match("SYMBOL", "("):
            consts = [self.const_token()]
            while self.match("SYMBOL", ","):
                consts.append(self.const_token())
            self.expect("SYMBOL", ")")
            params = tuple(consts)
        try:
            return get_monoid(name, params)
        except KeyError:
            raise ParseError(
                f"unknown monoid {name!r}; expected one of {', '.join(monoid_names())}",
                tok.line, tok.column,
            ) from None

    def const_token(self):
        tok = self.advance()
        if tok.kind == "INT":
            return int(tok.value)
        if tok.kind == "FLOAT":
            return float(tok.value)
        if tok.kind == "STRING":
            return tok.value
        raise ParseError(f"expected constant, found {tok.value!r}", tok.line, tok.column)

    def conditional(self) -> A.Expr:
        self.expect("KEYWORD", "if")
        cond = self.expression()
        self.expect("KEYWORD", "then")
        then = self.expression()
        self.expect("KEYWORD", "else")
        els = self.expression()
        return A.If(cond, then, els)

    def or_expr(self) -> A.Expr:
        left = self.and_expr()
        while self.peek().kind == "KEYWORD" and self.peek().value == "or":
            self.advance()
            left = A.BinOp("or", left, self.and_expr())
        return left

    def and_expr(self) -> A.Expr:
        left = self.cmp_expr()
        while self.peek().kind == "KEYWORD" and self.peek().value == "and":
            self.advance()
            left = A.BinOp("and", left, self.cmp_expr())
        return left

    def cmp_expr(self) -> A.Expr:
        left = self.add_expr()
        tok = self.peek()
        if tok.kind == "SYMBOL" and tok.value in _CMP_OPS:
            self.advance()
            return A.BinOp(tok.value, left, self.add_expr())
        if tok.kind == "KEYWORD" and tok.value in ("in", "like"):
            self.advance()
            return A.BinOp(tok.value, left, self.add_expr())
        return left

    def add_expr(self) -> A.Expr:
        left = self.mul_expr()
        while True:
            tok = self.peek()
            if tok.kind == "SYMBOL" and tok.value in ("+", "-"):
                self.advance()
                left = A.BinOp(tok.value, left, self.mul_expr())
            else:
                return left

    def mul_expr(self) -> A.Expr:
        left = self.unary()
        while True:
            tok = self.peek()
            if tok.kind == "SYMBOL" and tok.value in ("*", "/", "%"):
                self.advance()
                left = A.BinOp(tok.value, left, self.unary())
            else:
                return left

    def unary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == "SYMBOL" and tok.value == "-":
            self.advance()
            return A.UnOp("-", self.unary())
        if tok.kind == "KEYWORD" and tok.value == "not":
            self.advance()
            return A.UnOp("not", self.unary())
        return self.postfix()

    def postfix(self) -> A.Expr:
        expr = self.primary()
        while True:
            tok = self.peek()
            if tok.kind == "SYMBOL" and tok.value == ".":
                self.advance()
                attr = self.expect("IDENT")
                expr = A.Proj(expr, attr.value)
            elif tok.kind == "SYMBOL" and tok.value == "[":
                self.advance()
                indices = [self.expression()]
                while self.match("SYMBOL", ","):
                    indices.append(self.expression())
                self.expect("SYMBOL", "]")
                expr = A.Index(expr, tuple(indices))
            else:
                return expr

    def primary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == "INT":
            self.advance()
            return A.Const(int(tok.value))
        if tok.kind == "FLOAT":
            self.advance()
            return A.Const(float(tok.value))
        if tok.kind == "STRING":
            self.advance()
            return A.Const(tok.value)
        if tok.kind == "KEYWORD":
            if tok.value == "true":
                self.advance()
                return A.Const(True)
            if tok.value == "false":
                self.advance()
                return A.Const(False)
            if tok.value == "null":
                self.advance()
                return A.Null()
            if tok.value in ("for", "if"):
                return self.expression()
            raise ParseError(f"unexpected keyword {tok.value!r}", tok.line, tok.column)
        if tok.kind == "IDENT":
            nxt = self.peek(1)
            if nxt.kind == "SYMBOL" and nxt.value == "(" and tok.value in BUILTIN_FUNCS:
                self.advance()
                self.advance()
                args: list[A.Expr] = []
                if not (self.peek().kind == "SYMBOL" and self.peek().value == ")"):
                    args.append(self.expression())
                    while self.match("SYMBOL", ","):
                        args.append(self.expression())
                self.expect("SYMBOL", ")")
                return A.Call(tok.value, tuple(args))
            self.advance()
            return A.Var(tok.value)
        if tok.kind == "SYMBOL" and tok.value == "(":
            self.advance()
            return self._record_or_group()
        if tok.kind == "SYMBOL" and tok.value == "[":
            self.advance()
            items: list[A.Expr] = []
            if not (self.peek().kind == "SYMBOL" and self.peek().value == "]"):
                items.append(self.expression())
                while self.match("SYMBOL", ","):
                    items.append(self.expression())
            self.expect("SYMBOL", "]")
            return A.ListLit(tuple(items))
        raise ParseError(f"unexpected token {tok.value!r}", tok.line, tok.column)

    def _record_or_group(self) -> A.Expr:
        """After consuming '(': record construction if ``IDENT :=`` follows."""
        tok = self.peek()
        nxt = self.peek(1)
        if tok.kind == "IDENT" and nxt.kind == "SYMBOL" and nxt.value == ":=":
            fields: list[tuple[str, A.Expr]] = []
            while True:
                name = self.expect("IDENT").value
                self.expect("SYMBOL", ":=")
                fields.append((name, self.expression()))
                if not self.match("SYMBOL", ","):
                    break
            self.expect("SYMBOL", ")")
            return A.RecordCons(tuple(fields))
        inner = self.expression()
        self.expect("SYMBOL", ")")
        return inner


def parse(text: str) -> A.Expr:
    """Parse comprehension-syntax query text into a calculus expression.

    >>> from repro.mcc import parser
    >>> e = parser.parse('for { x <- S, x.a > 3 } yield sum x.a')
    >>> type(e).__name__
    'Comprehension'
    """
    return Parser(text).parse()
