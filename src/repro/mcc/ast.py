"""Abstract syntax of the monoid comprehension calculus (paper Table 1).

Expression forms::

    NULL                          null value
    Const(c)                      constant
    Var(v)                        variable
    Proj(e, A)                    record projection      e.A
    RecordCons([(A1,e1),...])     record construction    (A1 := e1, ...)
    If(e1, e2, e3)                conditional
    BinOp(op, e1, e2)             primitive binary function
    UnOp(op, e)                   negation / logical not
    Lambda(v, e)                  function abstraction
    Apply(e1, e2)                 function application
    Zero(⊕)                       zero element
    Singleton(⊕, e)               singleton construction U⊕(e)
    Merge(⊕, e1, e2)              merging e1 ⊕ e2
    Comprehension(⊕, e, [q...])   ⊕{ e | q1, ..., qn }
    Index(e, [i...])              array subscript e[i, j]
    ListLit([e...])               list literal

Qualifiers::

    Generator(v, e)               v <- e
    Filter(p)                     predicate
    Bind(v, e)                    v := e   (let-binding)

All nodes are immutable dataclasses; ``children()``/``replace_children()``
give a uniform traversal interface used by the normalizer and translators.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from .monoids import Monoid


class Expr:
    """Base class for calculus expressions."""

    def children(self) -> tuple["Expr", ...]:
        return ()

    def replace_children(self, new: Sequence["Expr"]) -> "Expr":
        if new:
            raise ValueError(f"{type(self).__name__} has no children")
        return self


class Qualifier:
    """Base class for comprehension qualifiers."""


@dataclass(frozen=True)
class Null(Expr):
    def __repr__(self) -> str:
        return "Null()"


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant: int, float, bool, or str."""

    value: Any

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


@dataclass(frozen=True)
class Var(Expr):
    name: str

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True)
class Proj(Expr):
    """Record projection ``e.field`` (also used for JSON path steps)."""

    expr: Expr
    attr: str

    def children(self):
        return (self.expr,)

    def replace_children(self, new):
        (expr,) = new
        return Proj(expr, self.attr)


@dataclass(frozen=True)
class RecordCons(Expr):
    """Record construction ``(a := e1, b := e2)``."""

    fields: tuple[tuple[str, Expr], ...]

    def children(self):
        return tuple(e for _n, e in self.fields)

    def replace_children(self, new):
        names = [n for n, _e in self.fields]
        return RecordCons(tuple(zip(names, new)))


@dataclass(frozen=True)
class If(Expr):
    cond: Expr
    then: Expr
    els: Expr

    def children(self):
        return (self.cond, self.then, self.els)

    def replace_children(self, new):
        c, t, e = new
        return If(c, t, e)


#: Binary operators with their surface syntax. '=' is structural equality.
BINOPS = ("=", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%", "and", "or", "in", "like")


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in BINOPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def children(self):
        return (self.left, self.right)

    def replace_children(self, new):
        l, r = new
        return BinOp(self.op, l, r)


@dataclass(frozen=True)
class UnOp(Expr):
    op: str  # 'not' | '-'
    expr: Expr

    def children(self):
        return (self.expr,)

    def replace_children(self, new):
        (e,) = new
        return UnOp(self.op, e)


@dataclass(frozen=True)
class Lambda(Expr):
    param: str
    body: Expr

    def children(self):
        return (self.body,)

    def replace_children(self, new):
        (b,) = new
        return Lambda(self.param, b)


@dataclass(frozen=True)
class Apply(Expr):
    func: Expr
    arg: Expr

    def children(self):
        return (self.func, self.arg)

    def replace_children(self, new):
        f, a = new
        return Apply(f, a)


@dataclass(frozen=True)
class Zero(Expr):
    """The zero element Z⊕ of a monoid."""

    monoid: Monoid

    def children(self):
        return ()


@dataclass(frozen=True)
class Singleton(Expr):
    """Singleton construction U⊕(e)."""

    monoid: Monoid
    expr: Expr

    def children(self):
        return (self.expr,)

    def replace_children(self, new):
        (e,) = new
        return Singleton(self.monoid, e)


@dataclass(frozen=True)
class Merge(Expr):
    """Monoid merge ``e1 ⊕ e2``."""

    monoid: Monoid
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)

    def replace_children(self, new):
        l, r = new
        return Merge(self.monoid, l, r)


@dataclass(frozen=True)
class Index(Expr):
    """Array subscription ``e[i, j]``."""

    expr: Expr
    indices: tuple[Expr, ...]

    def children(self):
        return (self.expr,) + self.indices

    def replace_children(self, new):
        return Index(new[0], tuple(new[1:]))


@dataclass(frozen=True)
class ListLit(Expr):
    items: tuple[Expr, ...]

    def children(self):
        return self.items

    def replace_children(self, new):
        return ListLit(tuple(new))


@dataclass(frozen=True)
class Call(Expr):
    """Builtin function call, e.g. ``len(e)``, ``abs(e)``, ``lower(e)``."""

    name: str
    args: tuple[Expr, ...]

    def children(self):
        return self.args

    def replace_children(self, new):
        return Call(self.name, tuple(new))


@dataclass(frozen=True)
class Generator(Qualifier):
    """``v <- e``: v ranges over the collection produced by e."""

    var: str
    source: Expr


@dataclass(frozen=True)
class Filter(Qualifier):
    """A boolean predicate qualifier."""

    pred: Expr


@dataclass(frozen=True)
class Bind(Qualifier):
    """``v := e``: a let binding visible to subsequent qualifiers and the head."""

    var: str
    expr: Expr


@dataclass(frozen=True)
class Comprehension(Expr):
    """``⊕{ e | q1, ..., qn }`` — surface syntax ``for {q...} yield ⊕ e``."""

    monoid: Monoid
    head: Expr
    qualifiers: tuple[Qualifier, ...]

    def children(self):
        out: list[Expr] = []
        for q in self.qualifiers:
            if isinstance(q, Generator):
                out.append(q.source)
            elif isinstance(q, Filter):
                out.append(q.pred)
            elif isinstance(q, Bind):
                out.append(q.expr)
        out.append(self.head)
        return tuple(out)

    def replace_children(self, new):
        new = list(new)
        quals: list[Qualifier] = []
        for q in self.qualifiers:
            e = new.pop(0)
            if isinstance(q, Generator):
                quals.append(Generator(q.var, e))
            elif isinstance(q, Filter):
                quals.append(Filter(e))
            else:
                quals.append(Bind(q.var, e))  # type: ignore[union-attr]
        (head,) = new
        return Comprehension(self.monoid, head, tuple(quals))


# ---------------------------------------------------------------------------
# Traversal / analysis helpers
# ---------------------------------------------------------------------------

_fresh_counter = itertools.count()


def fresh_var(prefix: str = "v") -> str:
    """Return a globally fresh variable name (for capture-avoiding renaming)."""
    return f"_{prefix}{next(_fresh_counter)}"


def walk(expr: Expr) -> Iterable[Expr]:
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def free_vars(expr: Expr) -> set[str]:
    """The free variables of ``expr`` (respecting lambda/comprehension binders)."""
    if isinstance(expr, Var):
        return {expr.name}
    if isinstance(expr, Lambda):
        return free_vars(expr.body) - {expr.param}
    if isinstance(expr, Comprehension):
        bound: set[str] = set()
        out: set[str] = set()
        for q in expr.qualifiers:
            if isinstance(q, Generator):
                out |= free_vars(q.source) - bound
                bound.add(q.var)
            elif isinstance(q, Filter):
                out |= free_vars(q.pred) - bound
            elif isinstance(q, Bind):
                out |= free_vars(q.expr) - bound
                bound.add(q.var)
        out |= free_vars(expr.head) - bound
        return out
    out = set()
    for child in expr.children():
        out |= free_vars(child)
    return out


def substitute(expr: Expr, var: str, value: Expr) -> Expr:
    """Capture-avoiding substitution ``expr[var := value]``."""
    if isinstance(expr, Var):
        return value if expr.name == var else expr
    if isinstance(expr, Lambda):
        if expr.param == var:
            return expr
        if expr.param in free_vars(value):
            renamed = fresh_var(expr.param)
            body = substitute(expr.body, expr.param, Var(renamed))
            return Lambda(renamed, substitute(body, var, value))
        return Lambda(expr.param, substitute(expr.body, var, value))
    if isinstance(expr, Comprehension):
        return _subst_comprehension(expr, var, value)
    children = expr.children()
    if not children:
        return expr
    return expr.replace_children([substitute(c, var, value) for c in children])


def _subst_comprehension(comp: Comprehension, var: str, value: Expr) -> Comprehension:
    value_free = free_vars(value)
    quals: list[Qualifier] = []
    head = comp.head
    rest: list[Qualifier] = list(comp.qualifiers)
    shadowed = False
    renames: dict[str, str] = {}

    def apply_renames(e: Expr) -> Expr:
        for old, new in renames.items():
            e = substitute(e, old, Var(new))
        return e

    i = 0
    while i < len(rest):
        q = rest[i]
        i += 1
        if isinstance(q, Generator):
            src = apply_renames(q.source)
            if not shadowed:
                src = substitute(src, var, value)
            bind_name = q.var
            if bind_name == var:
                shadowed = True
            elif bind_name in value_free and not shadowed:
                new_name = fresh_var(bind_name)
                renames[bind_name] = new_name
                bind_name = new_name
            quals.append(Generator(bind_name, src))
        elif isinstance(q, Filter):
            p = apply_renames(q.pred)
            if not shadowed:
                p = substitute(p, var, value)
            quals.append(Filter(p))
        elif isinstance(q, Bind):
            e = apply_renames(q.expr)
            if not shadowed:
                e = substitute(e, var, value)
            bind_name = q.var
            if bind_name == var:
                shadowed = True
            elif bind_name in value_free and not shadowed:
                new_name = fresh_var(bind_name)
                renames[bind_name] = new_name
                bind_name = new_name
            quals.append(Bind(bind_name, e))
    head = apply_renames(head)
    if not shadowed:
        head = substitute(head, var, value)
    return Comprehension(comp.monoid, head, tuple(quals))


def conjuncts(pred: Expr) -> list[Expr]:
    """Split a predicate into its top-level AND-conjuncts."""
    if isinstance(pred, BinOp) and pred.op == "and":
        return conjuncts(pred.left) + conjuncts(pred.right)
    return [pred]


def make_conjunction(preds: Sequence[Expr]) -> Expr:
    """Rebuild a conjunction from a list of predicates (True if empty)."""
    if not preds:
        return Const(True)
    out = preds[0]
    for p in preds[1:]:
        out = BinOp("and", out, p)
    return out
