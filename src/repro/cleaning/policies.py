"""Data-cleaning policies for raw scans (paper §7, "Data Cleaning").

"A conservative strategy starts by identifying entries whose ingestion
triggers errors during the first access to raw data; then, the code
generated for subsequent queries can explicitly skip processing of the
problematic entries. … different policies can be implemented for wrong
values detected during scanning; options include skipping the invalid
entry, or transforming it to the 'nearest acceptable value' using a
distance-based metric such as Hamming distance."

Policies implemented:

- :class:`SkipPolicy` — drop rows whose requested fields fail conversion,
  remembering row numbers so later scans skip them outright.
- :class:`RaisePolicy` — fail loudly (the "no cleaning" contract).
- :class:`NullPolicy` — replace unparseable values with null.
- :class:`DictionaryPolicy` — repair string values to the nearest entry of a
  per-column dictionary of valid values (Hamming distance for equal-length
  candidates, with a prefix/length fallback otherwise), and clamp numeric
  values into a per-column acceptable range.

Each policy implements ``repair(plugin, row, cells, cols) -> tuple | None``
(None = skip the row). The returned values align with ``cols``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CleaningError


def hamming(a: str, b: str) -> int:
    """Hamming distance for equal-length strings (paper's suggested metric).

    >>> hamming('karolin', 'kathrin')
    3
    """
    if len(a) != len(b):
        raise ValueError("hamming distance requires equal-length strings")
    return sum(1 for x, y in zip(a, b) if x != y)


def nearest_value(value: str, candidates: list[str]) -> str | None:
    """Nearest candidate by Hamming distance; prefix-overlap fallback for
    unequal lengths. None when there are no candidates."""
    if not candidates:
        return None
    best = None
    best_score = None
    for cand in candidates:
        if len(cand) == len(value):
            score = hamming(value, cand)
        else:
            common = sum(1 for x, y in zip(value, cand) if x == y)
            score = (max(len(value), len(cand)) - common) + 0.5
        if best_score is None or score < best_score:
            best = cand
            best_score = score
    return best


class CleaningPolicy:
    """Base: converts the requested cells, dispatching failures per policy."""

    #: when True, the engine routes *every* row through :meth:`repair`
    #: (needed by policies that validate successfully-parsed values, e.g.
    #: dictionary membership), not just rows whose conversion failed.
    validate_always = False

    def repair(self, plugin, row: int, cells: list, cols: list[int]):
        values = []
        for col in cols:
            text = cells[col] if col < len(cells) else ""
            try:
                conv = plugin.converter(col)
                values.append(conv(text))
            except Exception as exc:
                outcome = self.on_error(plugin, row, col, text, exc)
                if outcome is _SKIP:
                    return None
                values.append(outcome)
        return tuple(values)

    # plugin.scan() integration: same semantics, different call shape
    def handle_row(self, row, cells, cols, convs, plugin, exc):
        return self.repair(plugin, row, cells, list(cols))

    def on_error(self, plugin, row: int, col: int, text: str, exc: Exception):
        raise NotImplementedError


_SKIP = object()


@dataclass
class SkipPolicy(CleaningPolicy):
    """Skip dirty rows; remembers them so repeat scans stay consistent."""

    skipped_rows: set[int] = field(default_factory=set)

    def on_error(self, plugin, row, col, text, exc):
        self.skipped_rows.add(row)
        return _SKIP


class RaisePolicy(CleaningPolicy):
    """Surface the first dirty value as a :class:`CleaningError`."""

    def on_error(self, plugin, row, col, text, exc):
        raise CleaningError(
            f"dirty value {text!r}: {exc}", row=row,
            field=plugin.columns[col] if col < len(plugin.columns) else None,
        )


class NullPolicy(CleaningPolicy):
    """Replace unparseable values with null (SQL-style permissiveness)."""

    def on_error(self, plugin, row, col, text, exc):
        return None


@dataclass
class DictionaryPolicy(CleaningPolicy):
    """Repair values using per-column domain knowledge (paper §7).

    Attributes:
        dictionaries: column name → list of valid string values; dirty
            strings are replaced by the nearest valid value.
        ranges: column name → (lo, hi) acceptable numeric range; parseable
            but out-of-range numbers are clamped; unparseable numbers become
            the range midpoint.
        fallback_skip: when no domain knowledge covers the column, skip the
            row (True) or null the value (False).
    """

    dictionaries: dict[str, list[str]] = field(default_factory=dict)
    ranges: dict[str, tuple[float, float]] = field(default_factory=dict)
    fallback_skip: bool = True
    repairs: int = 0

    #: dictionary membership must be checked even for parseable values
    validate_always = True

    def repair(self, plugin, row: int, cells: list, cols: list[int]):
        values = []
        for col in cols:
            text = cells[col] if col < len(cells) else ""
            name = plugin.columns[col]
            try:
                value = plugin.converter(col)(text)
            except Exception:
                value = self._repair_value(name, text)
                if value is _SKIP:
                    return None
                self.repairs += 1
            else:
                # parseable but invalid per the column's value dictionary
                valid = self.dictionaries.get(name)
                if valid is not None and isinstance(value, str) and value not in valid:
                    value = nearest_value(value, valid)
                    self.repairs += 1
            clamped = self._apply_range(name, value)
            if clamped != value and value is not None:
                self.repairs += 1
            values.append(clamped)
        return tuple(values)

    def _repair_value(self, name: str, text: str):
        if name in self.dictionaries:
            return nearest_value(text, self.dictionaries[name])
        if name in self.ranges:
            lo, hi = self.ranges[name]
            return (lo + hi) / 2
        return _SKIP if self.fallback_skip else None

    def _apply_range(self, name: str, value):
        if name in self.ranges and isinstance(value, (int, float)):
            lo, hi = self.ranges[name]
            if value < lo:
                return lo
            if value > hi:
                return hi
        return value

    def on_error(self, plugin, row, col, text, exc):  # pragma: no cover
        raise NotImplementedError("DictionaryPolicy overrides repair() directly")
