"""Data-cleaning extension (paper §7): scan-time repair policies."""

from .policies import (
    CleaningPolicy,
    DictionaryPolicy,
    NullPolicy,
    RaisePolicy,
    SkipPolicy,
    hamming,
    nearest_value,
)

__all__ = [
    "CleaningPolicy", "DictionaryPolicy", "NullPolicy", "RaisePolicy",
    "SkipPolicy", "hamming", "nearest_value",
]
