"""Measured-runtime feedback for the cost model.

The optimizer's constants (``COST_FACTORS``, ``CHUNK_DISPATCH_COST``…)
were hand-calibrated on one machine; on real hardware they are wrong in
two separable ways: a *global* scale (this box is simply faster/slower
per abstract cost unit) and *relative* miscalibration between formats and
access paths (JSON parsing costs more here, warm CSV less). The
:class:`CostCalibration` learns both from per-scan wall-clock timings the
runtime records anyway:

- ``unit_ms`` — measured milliseconds per abstract cost unit — absorbs
  the global scale and converts estimated cost units into estimated
  milliseconds for EXPLAIN and engine selection;
- per-``(format, access)`` factors start at the hand-calibrated values
  and drift geometrically toward measured reality, clamped to ×8 either
  way so one noisy timing can't wreck the model.

Updates are exponential (geometric damping: ``unit_ms`` moves by the
square root of the observed ratio, factors by its fourth root) so the
model converges over a handful of queries and single outliers wash out.
Owned by the :class:`~repro.core.engine.EngineContext` — calibration one
tenant pays for serves every tenant, like every other JIT byproduct.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

#: ms per cost unit assumed before the first measurement lands
DEFAULT_UNIT_MS = 2.5e-4

#: ignore timings over fewer rows than this — fixed overheads dominate
#: and the per-row signal is pure noise
MIN_ROWS = 32

#: single-observation update clamp: a timing may pull the model at most
#: this factor per observation (before damping)
_RATIO_CLAMP = 4.0

#: per-(fmt, access) factors may drift at most this far from their
#: hand-calibrated baseline, in either direction
_FACTOR_DRIFT = 8.0


@dataclass(frozen=True)
class ScanTiming:
    """One scan's measured work, recorded by the runtime's timing hook."""

    source: str
    format: str
    access: str
    rows: int
    nfields: int
    chunks: int
    seconds: float


class CostCalibration:
    """Self-tuning copies of the cost-model constants (thread-safe)."""

    def __init__(self):
        from ..core.optimizer import cost as C  # lazy: avoid import cycle

        self._lock = threading.Lock()
        self._base_factors = dict(C.COST_FACTORS)
        self.factors: dict[tuple[str, str], float] = dict(C.COST_FACTORS)
        self.chunk_dispatch_cost: float = float(C.CHUNK_DISPATCH_COST)
        self._const_cost = float(C.CONST_COST)
        #: measured ms per abstract cost unit; None until first observation
        self.unit_ms: float | None = None
        #: bumped on every constant move; feeds the session plan-epoch
        self.version = 0

    # -- reading -------------------------------------------------------------

    def factor(self, fmt: str, access: str) -> float | None:
        """Calibrated per-row factor for ``(fmt, access)``, or None if the
        pair is unknown to the model (the caller should surface that)."""
        return self.factors.get((fmt, access))

    def estimated_ms(self, units: float) -> float:
        """Convert abstract cost units into estimated wall-clock ms."""
        return units * (self.unit_ms if self.unit_ms is not None
                        else DEFAULT_UNIT_MS)

    # -- learning ------------------------------------------------------------

    def _predicted_units(self, t: ScanTiming, factor: float) -> float:
        return (t.rows * max(1, t.nfields) * factor * self._const_cost
                + t.chunks * self.chunk_dispatch_cost)

    def observe(self, timings) -> int:
        """Fold measured scan timings into the model; returns moves made."""
        moves = 0
        with self._lock:
            for t in timings:
                if t.rows < MIN_ROWS or t.seconds <= 0.0:
                    continue
                key = (t.format, t.access)
                factor = self.factors.get(key)
                if factor is None:
                    continue  # unknown pair: planner already noted it
                predicted = self._predicted_units(t, factor)
                if predicted <= 0.0:
                    continue
                measured_ms = t.seconds * 1000.0
                unit = self.unit_ms if self.unit_ms is not None else DEFAULT_UNIT_MS
                ratio = measured_ms / (predicted * unit)
                g = min(_RATIO_CLAMP, max(1.0 / _RATIO_CLAMP, ratio))
                # global scale moves by sqrt(g); relative factor by g**1/4
                self.unit_ms = unit * (g ** 0.5)
                base = self._base_factors.get(key, factor)
                moved = factor * (g ** 0.25)
                self.factors[key] = min(base * _FACTOR_DRIFT,
                                        max(base / _FACTOR_DRIFT, moved))
                self.version += 1
                moves += 1
        return moves

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "unit_ms": self.unit_ms,
                "chunk_dispatch_cost": self.chunk_dispatch_cost,
                # JSON-able keys: the server ships this over the wire
                "factors": {f"{fmt}/{access}": v
                            for (fmt, access), v in sorted(self.factors.items())},
                "version": self.version,
            }
