"""JIT statistics & cost calibration: table stats collected as scan
byproducts, merged adopt-or-discard, feeding the adaptive optimizer."""

from .calibration import DEFAULT_UNIT_MS, CostCalibration, ScanTiming
from .registry import StatsRegistry
from .table_stats import (
    SKETCH_K,
    ColumnSketch,
    ColumnStats,
    StatsPartial,
    TableStats,
)

__all__ = [
    "SKETCH_K",
    "DEFAULT_UNIT_MS",
    "ColumnSketch",
    "ColumnStats",
    "CostCalibration",
    "ScanTiming",
    "StatsPartial",
    "StatsRegistry",
    "TableStats",
]
