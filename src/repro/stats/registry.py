"""Shared, generation-aware registry of per-source table statistics.

Owned by the :class:`~repro.core.engine.EngineContext` so every tenant
session shares one statistics store, exactly like the posmap/index/cache
registries: stats one tenant collected as a scan byproduct improve every
other tenant's plans.

Concurrency follows the PR-8 adopt-or-discard protocol. Callers adopt
under ``catalog.source_lock(source)`` after re-checking the generation
token; the registry additionally keys its entries by generation and
evicts on mismatch, so a stale peek can never surface statistics for a
file that changed underneath.

Adoption is **adopt-or-skip** per column: a column already present is
left untouched (the first complete observation wins), and ``row_count``
is only set while unknown. That makes repeated/concurrent scans converge
instead of double-counting, and keeps adopted stats bit-identical across
racing sessions.
"""

from __future__ import annotations

import threading

from .table_stats import StatsPartial, TableStats


class StatsRegistry:
    """source name → (generation, :class:`TableStats`), adopt-or-skip."""

    def __init__(self):
        self._lock = threading.RLock()
        self._sources: dict[str, tuple[int, TableStats]] = {}
        #: bumped on every adoption/invalidation that changed visible state;
        #: feeds the session plan-epoch so prepared plans replan on shift
        self.version = 0

    def peek(self, source: str, generation: int) -> TableStats | None:
        """Current stats for ``source`` at ``generation``, else None.

        A stored entry from another generation is evicted on sight — the
        backing file changed, so the old numbers describe dead data.
        """
        with self._lock:
            entry = self._sources.get(source)
            if entry is None:
                return None
            gen, stats = entry
            if gen != generation:
                del self._sources[source]
                self.version += 1
                return None
            return stats

    def adopt(
        self,
        source: str,
        generation: int,
        partial: StatsPartial,
        complete: bool,
    ) -> bool:
        """Merge one scan's accumulated partial; returns True if adopted.

        ``complete`` means the partial covers every row of the source
        (serial scan ran to exhaustion, or all parallel splits reported):
        only then may it establish ``row_count``. Columns already known
        are skipped (adopt-or-skip), so the call is idempotent.
        """
        with self._lock:
            entry = self._sources.get(source)
            if entry is not None and entry[0] != generation:
                del self._sources[source]
                self.version += 1
                entry = None
            if entry is None:
                stats = TableStats()
                self._sources[source] = (generation, stats)
            else:
                stats = entry[1]
            changed = False
            if complete and stats.row_count is None:
                stats.row_count = partial.rows_seen
                changed = True
            for name, cs in partial.columns.items():
                if name not in stats.columns and (cs.count or cs.nulls):
                    stats.columns[name] = cs
                    changed = True
            if changed:
                self.version += 1
            return changed

    def known(self, source: str, generation: int) -> tuple[bool, frozenset]:
        """(row count known?, column names known) — lets scans skip
        re-collecting what the registry already holds."""
        stats = self.peek(source, generation)
        if stats is None:
            return (False, frozenset())
        return (stats.row_count is not None, frozenset(stats.columns))

    def extend_source(
        self,
        source: str,
        old_generation: int,
        new_generation: int,
        tail_rows: int,
        tail_columns: dict[str, list],
    ) -> bool:
        """Delta refresh: re-key ``source``'s stats to ``new_generation``,
        fold the appended tail's values in, and grow ``row_count``.

        Column summaries are order-independent, so observing just the tail
        batch leaves the stats bit-identical to a cold rebuild over the
        whole grown file. A known column with **no** tail values would go
        stale (its min/max/NDV describe only the prefix), so it is dropped
        instead — callers avoid that by converting every known stats
        column during the tail scan. Returns True if the entry carried over.
        """
        with self._lock:
            entry = self._sources.get(source)
            if entry is None or entry[0] != old_generation:
                return False
            _, stats = entry
            if stats.row_count is not None:
                stats.row_count += tail_rows
            for name in list(stats.columns):
                values = tail_columns.get(name)
                if values is None:
                    del stats.columns[name]
                else:
                    stats.columns[name].observe_batch(values)
            self._sources[source] = (new_generation, stats)
            self.version += 1
            return True

    def invalidate_source(self, source: str) -> None:
        with self._lock:
            if self._sources.pop(source, None) is not None:
                self.version += 1

    def clear(self) -> None:
        with self._lock:
            if self._sources:
                self._sources.clear()
                self.version += 1

    def snapshot(self) -> dict:
        """Canonical picture for tests/EXPLAIN: source → stats snapshot."""
        with self._lock:
            return {
                name: stats.snapshot()
                for name, (_, stats) in sorted(self._sources.items())
            }

    def summary(self) -> dict:
        """Compact JSON-able view (server /stats): no raw sketch hashes."""
        with self._lock:
            return {
                name: {
                    "row_count": stats.row_count,
                    "columns": {
                        cname: {"ndv": cs.ndv,
                                "null_fraction": round(cs.null_fraction, 4)}
                        for cname, cs in sorted(stats.columns.items())
                    },
                }
                for name, (_, stats) in sorted(self._sources.items())
            }
