"""JIT table statistics: per-column summaries built as scan byproducts.

ViDa's creed is that auxiliary structures arrive just-in-time, as side
effects of queries the user was going to run anyway (paper §2.1: positional
maps; PR 7: value indexes). Statistics are no different: format plugins are
handed a :class:`StatsPartial` ``stats_sink`` alongside the existing
``index_sink`` and record the values they already materialised. Partials
merge in the parent under the generation-token adopt-or-discard protocol.

Everything here is **order-independent** so morsel-parallel collection is
bit-identical to serial collection at any DoP on either backend:

- counts and null counts are sums;
- min/max are kept per *type domain* (numeric vs string) so mixed-type
  columns never hit a ``TypeError`` and the result is order-free;
- NDV uses a KMV (K-minimum-values) sketch over a **deterministic** 64-bit
  hash (blake2b — Python's salted ``hash()`` would differ across worker
  processes).  The sketch prunes to the K smallest hashes after *every*
  update, so its stored set is exactly "the K smallest hashes ever
  inserted" — a set-union-like quantity independent of insertion order
  and of how rows were partitioned into morsels.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

#: KMV sketch size: distinct-count estimates are exact below K and within
#: ~1/sqrt(K-2) (~6%) relative error above it — plenty for join ordering.
SKETCH_K = 256

_TWO64 = float(2**64)

#: integral floats up to 2**53 are exact, so 1, 1.0 and True (which compare
#: equal and collapse in Python sets/dicts depending on insertion order)
#: must hash identically for the sketch to be order-independent
_MAX_EXACT_INT_FLOAT = 2**53


def _canonical_bytes(value) -> bytes:
    """Deterministic byte encoding with cross-type equality classes.

    Values that compare equal in Python (``1 == 1.0 == True``) encode
    identically; everything else gets a type-tagged representation.
    """
    if isinstance(value, bool):
        return b"i" + repr(int(value)).encode()
    if isinstance(value, int):
        return b"i" + repr(value).encode()
    if isinstance(value, float):
        if value.is_integer() and abs(value) < _MAX_EXACT_INT_FLOAT:
            return b"i" + repr(int(value)).encode()
        return b"f" + repr(value).encode()
    if isinstance(value, str):
        return b"s" + value.encode("utf-8", "surrogatepass")
    return b"o" + repr(value).encode("utf-8", "backslashreplace")


def _hash64(value) -> int:
    """Deterministic 64-bit hash, stable across processes and runs."""
    digest = hashlib.blake2b(_canonical_bytes(value), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ColumnSketch:
    """KMV distinct-value sketch: the K smallest 64-bit hashes seen.

    Invariant (load-bearing for bit-identity): after every ``add`` and
    ``merge`` the stored set is *the* K smallest distinct hashes over all
    values ever inserted, which makes the sketch a join-semilattice —
    merge order and partitioning cannot change it.
    """

    __slots__ = ("k", "_hashes")

    def __init__(self, k: int = SKETCH_K, hashes: set[int] | None = None):
        self.k = k
        self._hashes: set[int] = set(hashes) if hashes else set()

    def add(self, value) -> None:
        self.add_hash(_hash64(value))

    def add_hash(self, h: int) -> None:
        hs = self._hashes
        if len(hs) < self.k:
            hs.add(h)
            return
        if h in hs:
            return
        top = max(hs)
        if h < top:
            hs.discard(top)
            hs.add(h)

    def merge(self, other: "ColumnSketch") -> None:
        hs = self._hashes
        hs |= other._hashes
        k = self.k
        while len(hs) > k:
            hs.discard(max(hs))

    def estimate(self) -> int:
        """Estimated number of distinct values (exact below K)."""
        n = len(self._hashes)
        if n == 0:
            return 0
        if n < self.k:
            return n
        # classic KMV estimator: (K-1) / normalized K-th minimum
        return max(n, int((self.k - 1) * _TWO64 / max(self._hashes)))

    def snapshot(self) -> tuple[int, ...]:
        """Canonical (sorted) content — equal sketches snapshot equal."""
        return tuple(sorted(self._hashes))

    def __getstate__(self):
        return (self.k, self.snapshot())

    def __setstate__(self, state):
        self.k, hashes = state
        self._hashes = set(hashes)


@dataclass
class ColumnStats:
    """Order-independent summary of one column's observed values."""

    count: int = 0  # non-null values recorded
    nulls: int = 0
    num_min: float | None = None
    num_max: float | None = None
    str_min: str | None = None
    str_max: str | None = None
    sketch: ColumnSketch = field(default_factory=ColumnSketch)

    def observe_batch(self, values) -> None:
        for v in values:
            if v is None:
                self.nulls += 1
                continue
            self.count += 1
            if isinstance(v, bool):
                v = int(v)
            if isinstance(v, (int, float)):
                f = float(v)
                if self.num_min is None or f < self.num_min:
                    self.num_min = f
                if self.num_max is None or f > self.num_max:
                    self.num_max = f
            elif isinstance(v, str):
                if self.str_min is None or v < self.str_min:
                    self.str_min = v
                if self.str_max is None or v > self.str_max:
                    self.str_max = v
            self.sketch.add(v)

    def merge(self, other: "ColumnStats") -> None:
        self.count += other.count
        self.nulls += other.nulls
        for attr, pick in (("num_min", min), ("num_max", max),
                           ("str_min", min), ("str_max", max)):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            if theirs is not None:
                setattr(self, attr, theirs if mine is None else pick(mine, theirs))
        self.sketch.merge(other.sketch)

    @property
    def ndv(self) -> int:
        return self.sketch.estimate()

    @property
    def null_fraction(self) -> float:
        total = self.count + self.nulls
        return (self.nulls / total) if total else 0.0

    def snapshot(self) -> tuple:
        """Canonical content tuple for bit-identity assertions."""
        return (self.count, self.nulls, self.num_min, self.num_max,
                self.str_min, self.str_max, self.sketch.snapshot())


@dataclass
class TableStats:
    """Per-source statistics: row count plus per-column summaries.

    ``row_count`` is only ever set from a *complete* scan (serial scans
    that ran to exhaustion, or parallel scans where every split reported);
    column entries may cover a subset of columns, accreting as later
    queries touch more of them.
    """

    row_count: int | None = None
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)

    def snapshot(self) -> tuple:
        return (self.row_count, tuple(sorted(
            (name, cs.snapshot()) for name, cs in self.columns.items()
        )))


class StatsPartial:
    """Per-scan (or per-morsel) statistics accumulator handed to plugins.

    Mirrors the ``IndexPartial`` sink protocol (``record``/``advance``)
    but with **count semantics**: ``advance`` adds row counts (each batch
    is advanced exactly once), and ``record`` never advances — so a split
    partial's ``rows_seen`` is the number of rows *it* scanned, and the
    parent can sum splits to a total row count. Picklable, so process
    morsel workers ship partials home like posmap deltas.
    """

    __slots__ = ("fields", "rows_seen", "columns")

    def __init__(self, fields=()):
        self.fields = tuple(fields)
        self.rows_seen = 0
        self.columns: dict[str, ColumnStats] = {
            f: ColumnStats() for f in self.fields
        }

    def advance(self, start: int, nrows: int) -> None:
        """One batch of ``nrows`` rows was scanned (values recorded or not)."""
        self.rows_seen += nrows

    def record(self, start: int, columns: dict[str, list]) -> None:
        """Record materialised values for this batch. Does NOT advance."""
        for name, values in columns.items():
            cs = self.columns.get(name)
            if cs is not None:
                cs.observe_batch(values)

    def merge(self, other: "StatsPartial") -> None:
        self.rows_seen += other.rows_seen
        for name, cs in other.columns.items():
            mine = self.columns.get(name)
            if mine is None:
                self.columns[name] = cs
            else:
                mine.merge(cs)

    def __getstate__(self):
        return (self.fields, self.rows_seen, self.columns)

    def __setstate__(self, state):
        self.fields, self.rows_seen, self.columns = state
