"""Cache/materialisation layouts (paper Figure 4 and §5 "Re-using and
re-shaping results").

ViDa "can keep copies of the same information of interest in its caches
using different data layouts and use the most suitable layout during query
evaluation". The layouts here are the four of Figure 4 plus the two
relational ones:

=============  ==============================================================
``rows``       list of tuples (row-oriented, NSM-like)
``columns``    dict field → list (DSM-like; serves any field subset)
``objects``    list of parsed Python objects (Figure 4(c), "C++ object")
``json_text``  list of raw JSON text fragments (Figure 4(a))
``bson``       list of BSON-lite blobs (Figure 4(b))
``positions``  list of (start, end) byte spans (Figure 4(d))
=============  ==============================================================

Each layout knows how to materialise from an iterator, iterate back in a
requested field order, and estimate its memory footprint — the inputs to the
optimizer's layout decision.
"""

from __future__ import annotations

import json as _json
import sys
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..errors import ViDaError
from ..formats.jsonfmt import bson as _bson

LAYOUTS = ("rows", "columns", "objects", "json_text", "bson", "positions")


def _deep_bytes(value, _depth: int = 0) -> int:
    """Rough recursive memory estimate of a Python value."""
    if _depth > 6:
        return 64
    size = sys.getsizeof(value)
    if isinstance(value, dict):
        size += sum(_deep_bytes(k, _depth + 1) + _deep_bytes(v, _depth + 1)
                    for k, v in value.items())
    elif isinstance(value, (list, tuple, set)):
        size += sum(_deep_bytes(v, _depth + 1) for v in value)
    return size


@dataclass
class CachedData:
    """Materialised data in one layout.

    ``fields`` names the tuple positions for rows/columns layouts; for
    object-ish layouts it records which projection produced the data
    (empty tuple = whole element).
    """

    layout: str
    fields: tuple[str, ...]
    data: object
    nbytes: int
    count: int

    def iter_rows(self, fields: Sequence[str] | None = None) -> Iterator[tuple]:
        """Yield tuples in ``fields`` order (None = stored order)."""
        if self.layout == "rows":
            rows = self.data  # type: ignore[assignment]
            if fields is None or tuple(fields) == self.fields:
                return iter(rows)
            idx = [self.fields.index(f) for f in fields]
            return (tuple(r[i] for i in idx) for r in rows)
        if self.layout == "columns":
            cols: dict = self.data  # type: ignore[assignment]
            names = list(fields) if fields is not None else list(self.fields)
            missing = [f for f in names if f not in cols]
            if missing:
                raise ViDaError(f"cached columns missing fields {missing}")
            return zip(*(cols[f] for f in names))
        if self.layout == "objects":
            objs = self.data  # type: ignore[assignment]
            if fields is None:
                return ((o,) for o in objs)
            return (tuple(_navigate(o, f) for f in fields) for o in objs)
        if self.layout == "json_text":
            texts = self.data  # type: ignore[assignment]
            if fields is None:
                return ((_json.loads(t),) for t in texts)
            return (
                tuple(_navigate(_json.loads(t), f) for f in fields) for t in texts
            )
        if self.layout == "bson":
            blobs = self.data  # type: ignore[assignment]
            if fields is None:
                return ((_bson.decode(b),) for b in blobs)
            return (
                tuple(_navigate(_bson.decode(b), f) for f in fields) for b in blobs
            )
        if self.layout == "positions":
            raise ViDaError(
                "positions layout holds byte spans, not values; "
                "assemble() them through the owning JSONSource"
            )
        raise ViDaError(f"unknown layout {self.layout!r}")

    def covers(self, fields: Sequence[str]) -> bool:
        """Can this entry serve a query needing ``fields``?"""
        if self.layout in ("objects", "json_text", "bson"):
            return not self.fields  # whole elements serve any projection
        return all(f in self.fields for f in fields)


def _navigate(obj, path: str):
    from ..formats.jsonfmt import get_path

    return get_path(obj, path)


def materialize_columns(fields: Sequence[str], columns: Sequence[list]) -> CachedData:
    """Build a columnar :class:`CachedData` directly from column lists.

    The batch scan path gathers whole columns during a chunked scan; admitting
    them must not round-trip through per-row tuples (``zip(*columns)``).
    Takes ownership of the lists — callers pass freshly-built ones.
    """
    fields = tuple(fields)
    if len(fields) != len(columns):
        raise ViDaError(
            f"{len(columns)} columns for {len(fields)} fields in columnar admission"
        )
    count = len(columns[0]) if columns else 0
    for f, col in zip(fields, columns):
        if len(col) != count:
            raise ViDaError(
                f"ragged columnar admission: field {f!r} has {len(col)} rows, "
                f"expected {count}"
            )
    cols = {f: col if isinstance(col, list) else list(col)
            for f, col in zip(fields, columns)}
    nbytes = sum(_deep_bytes(v) for col in cols.values() for v in col)
    nbytes += sum(sys.getsizeof(col) for col in cols.values())
    return CachedData("columns", fields, cols, nbytes, count)


def materialize(
    layout: str,
    fields: Sequence[str],
    rows: Iterable,
) -> CachedData:
    """Build a :class:`CachedData` in ``layout`` from an iterable.

    For rows/columns, ``rows`` yields tuples aligned with ``fields``.
    For objects/json_text/bson, ``rows`` yields the elements themselves.
    For positions, ``rows`` yields (start, end) pairs.
    """
    fields = tuple(fields)
    if layout == "rows":
        data = [tuple(r) for r in rows]
        nbytes = sum(_deep_bytes(r) for r in data)
        return CachedData(layout, fields, data, nbytes, len(data))
    if layout == "columns":
        cols: dict[str, list] = {f: [] for f in fields}
        count = 0
        for r in rows:
            for f, v in zip(fields, r):
                cols[f].append(v)
            count += 1
        nbytes = sum(_deep_bytes(v) for col in cols.values() for v in col)
        nbytes += sum(sys.getsizeof(col) for col in cols.values())
        return CachedData(layout, fields, cols, nbytes, count)
    if layout == "objects":
        data = list(rows)
        nbytes = sum(_deep_bytes(o) for o in data)
        return CachedData(layout, (), data, nbytes, len(data))
    if layout == "json_text":
        data = [o if isinstance(o, str) else _json.dumps(o) for o in rows]
        nbytes = sum(len(t) for t in data)
        return CachedData(layout, (), data, nbytes, len(data))
    if layout == "bson":
        data = [o if isinstance(o, bytes) else _bson.encode(o) for o in rows]
        nbytes = sum(len(b) for b in data)
        return CachedData(layout, (), data, nbytes, len(data))
    if layout == "positions":
        data = [(int(a), int(b)) for a, b in rows]
        nbytes = len(data) * 16
        return CachedData(layout, (), data, nbytes, len(data))
    raise ViDaError(f"unknown layout {layout!r}; choose from {LAYOUTS}")
