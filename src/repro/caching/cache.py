"""ViDa's data caches (paper §2.1, §5, §6).

"ViDa also maintains caches of previously accessed data [fields]." In the
evaluation, ~80% of the HBP workload is served from these caches. Entries
are keyed by ``(source, fields, layout)``; a columnar entry can serve any
subset of its fields, so successive queries touching overlapping attribute
sets hit.

Eviction is LRU under a byte budget; admission and layout demotion are
delegated to :class:`~repro.caching.policy.AdmissionPolicy`. In-place file
updates invalidate all entries of the affected source (paper §2.1).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .layouts import CachedData, materialize, materialize_columns
from .policy import DEFAULT_POLICY, AdmissionPolicy


@dataclass
class CacheStats:
    lookups: int = 0
    hits: int = 0
    admissions: int = 0
    rejections: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class CacheEntry:
    source: str
    cached: CachedData
    last_used: int = 0
    uses: int = 0

    @property
    def key(self) -> tuple:
        return (self.source, self.cached.layout, self.cached.fields)


class DataCache:
    """Byte-budgeted, LRU, multi-layout field cache.

    Concurrency-safe for many tenant sessions: every public operation runs
    under one reentrant mutex (lookup mutates LRU state, admissions merge
    and evict), so interleaved scans can never observe a half-merged entry.
    The mutex is a leaf lock — nothing else is acquired while holding it.
    """

    def __init__(
        self,
        budget_bytes: int = 256 << 20,
        policy: AdmissionPolicy | None = None,
    ):
        self.budget_bytes = budget_bytes
        self.policy = policy or DEFAULT_POLICY
        self._entries: dict[tuple, CacheEntry] = {}
        self._clock = itertools.count()
        self._mutex = threading.RLock()
        self.stats = CacheStats()

    # -- inspection ---------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        with self._mutex:
            return sum(e.cached.nbytes for e in self._entries.values())

    def entries(self) -> list[CacheEntry]:
        with self._mutex:
            return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup ----------------------------------------------------------------

    def lookup(
        self, source: str, fields: Sequence[str], layouts: Sequence[str] | None = None
    ) -> CacheEntry | None:
        """Find an entry of ``source`` able to serve ``fields``.

        Preference order: exact columnar cover, then whole-element layouts
        (objects > bson > json_text). ``layouts`` restricts candidates.
        """
        with self._mutex:
            self.stats.lookups += 1
            ranked: list[tuple[int, CacheEntry]] = []
            rank = {"columns": 0, "rows": 1, "objects": 2, "bson": 3,
                    "json_text": 4, "positions": 5}
            for entry in self._entries.values():
                if entry.source != source:
                    continue
                if layouts is not None and entry.cached.layout not in layouts:
                    continue
                if entry.cached.covers(fields):
                    ranked.append((rank.get(entry.cached.layout, 9), entry))
            if not ranked:
                return None
            ranked.sort(key=lambda pair: pair[0])
            entry = ranked[0][1]
            entry.last_used = next(self._clock)
            entry.uses += 1
            self.stats.hits += 1
            return entry

    def peek(self, source: str, fields: Sequence[str], whole: bool = False) -> bool:
        """Non-counting check: could ``fields`` of ``source`` be cache-served?

        ``whole=True`` asks for full-element service, which only the
        object-ish layouts (objects / bson / json_text) can provide.
        """
        whole_layouts = ("objects", "bson", "json_text")
        with self._mutex:
            for e in self._entries.values():
                if e.source != source or e.cached.layout == "positions":
                    continue
                if whole:
                    if e.cached.layout in whole_layouts and not e.cached.fields:
                        return True
                    continue
                if e.cached.covers(fields):
                    return True
            return False

    # -- admission ---------------------------------------------------------------

    def put(
        self,
        source: str,
        layout: str,
        fields: Sequence[str],
        rows: Iterable,
        expected_reuse: int = 1,
    ) -> CacheEntry | None:
        """Materialise ``rows`` into the cache; returns the entry or None.

        Admission may be declined by policy (too large, no expected reuse).
        Columnar entries of the same source **merge** when their row counts
        match (full-scan extracts share file row order), so the cached field
        set *accumulates* across queries — this is what lets a workload with
        attribute locality reach the paper's ~80% cache service rate.
        """
        cached = materialize(layout, fields, rows)
        with self._mutex:
            if layout == "columns":
                cached = self._merge_columns(source, cached)
            return self._admit(source, cached, expected_reuse)

    def put_columns(
        self,
        source: str,
        fields: Sequence[str],
        columns: Sequence[list],
        expected_reuse: int = 1,
    ) -> CacheEntry | None:
        """Admit whole column batches gathered by a chunked scan.

        The batch analogue of :meth:`put` for the columnar layout — no
        per-row tuple round-trip; the column lists are adopted as-is.
        """
        cached = materialize_columns(fields, columns)
        with self._mutex:
            cached = self._merge_columns(source, cached)
            return self._admit(source, cached, expected_reuse)

    def _admit(self, source: str, cached: CachedData,
               expected_reuse: int) -> CacheEntry | None:
        with self._mutex:
            if not self.policy.admit(cached.nbytes, self.budget_bytes,
                                     expected_reuse):
                self.stats.rejections += 1
                return None
            entry = CacheEntry(source, cached, last_used=next(self._clock))
            self._entries.pop(entry.key, None)
            self._entries[entry.key] = entry
            self.stats.admissions += 1
            self._evict_to_budget(protected=entry.key)
            return self._entries.get(entry.key)

    def _merge_columns(self, source: str, cached: CachedData) -> CachedData:
        """Fold existing aligned columnar entries of ``source`` into ``cached``."""
        victims = []
        columns: dict = dict(cached.data)  # type: ignore[arg-type]
        nbytes = cached.nbytes
        for key, entry in self._entries.items():
            if entry.source != source or entry.cached.layout != "columns":
                continue
            if entry.cached.count != cached.count:
                continue  # different row universe (e.g. cleaning skipped rows)
            for f, col in entry.cached.data.items():  # type: ignore[union-attr]
                if f not in columns:
                    columns[f] = col
            nbytes += entry.cached.nbytes
            victims.append(key)
        if not victims:
            return cached
        for key in victims:
            del self._entries[key]
        fields = tuple(sorted(columns))
        return CachedData("columns", fields, columns, nbytes, cached.count)

    def put_cached(self, source: str, cached: CachedData,
                   expected_reuse: int = 1) -> CacheEntry | None:
        """Admit pre-materialised data (used by generated code)."""
        return self._admit(source, cached, expected_reuse)

    def _evict_to_budget(self, protected: tuple | None = None) -> None:
        while self.used_bytes > self.budget_bytes and len(self._entries) > 1:
            victim_key = min(
                (k for k in self._entries if k != protected),
                key=lambda k: self._entries[k].last_used,
                default=None,
            )
            if victim_key is None:
                return
            del self._entries[victim_key]
            self.stats.evictions += 1

    # -- delta refresh ---------------------------------------------------------

    def extend_source(
        self,
        source: str,
        base_count: int,
        tail_rows: int,
        tail_columns: dict[str, list],
        tail_objects: list | None = None,
    ) -> int:
        """Grow ``source``'s aligned entries by an appended tail in place of
        invalidating them (append-classified refresh).

        Columnar entries whose row count equals ``base_count`` and whose
        fields all have tail values are extended by ``tail_rows``; object
        layouts (objects / json_text) are extended with ``tail_objects``
        when provided. Entries with a different row universe (cleaning
        skipped rows) or no tail data are dropped — serving them for the
        new generation would silently miss the appended rows. Extended
        entries are **new** :class:`CachedData` objects: the superseded
        ones may be pinned by generation snapshots or mid-iteration as
        zero-copy chunk views, and are never mutated. Returns the number
        of entries extended.
        """
        import sys

        from .layouts import _deep_bytes

        extended = 0
        with self._mutex:
            for key in list(self._entries):
                entry = self._entries[key]
                if entry.source != source:
                    continue
                old = entry.cached
                grown: CachedData | None = None
                if old.layout == "columns" and old.count == base_count \
                        and all(f in tail_columns for f in old.fields):
                    cols = {f: old.data[f] + tail_columns[f]
                            for f in old.fields}
                    tail_bytes = sum(
                        _deep_bytes(v) for f in old.fields
                        for v in tail_columns[f]
                    ) + sum(sys.getsizeof(c) - sys.getsizeof(old.data[f])
                            for f, c in cols.items())
                    grown = CachedData("columns", old.fields, cols,
                                       old.nbytes + max(0, tail_bytes),
                                       base_count + tail_rows)
                elif old.layout in ("objects", "json_text") \
                        and old.count == base_count and tail_objects is not None:
                    if old.layout == "objects":
                        tail = list(tail_objects)
                        tail_bytes = sum(_deep_bytes(o) for o in tail)
                    else:
                        import json as _json

                        tail = [_json.dumps(o) for o in tail_objects]
                        tail_bytes = sum(len(t) for t in tail)
                    grown = CachedData(old.layout, old.fields,
                                       old.data + tail,
                                       old.nbytes + tail_bytes,
                                       base_count + tail_rows)
                if grown is None:
                    del self._entries[key]
                    self.stats.invalidations += 1
                    continue
                replacement = CacheEntry(source, grown,
                                         last_used=entry.last_used,
                                         uses=entry.uses)
                del self._entries[key]
                self._entries[replacement.key] = replacement
                extended += 1
            if extended:
                self._evict_to_budget()
        return extended

    # -- invalidation ---------------------------------------------------------------

    def invalidate_source(self, source: str) -> int:
        """Drop every entry of ``source`` (in-place update handling)."""
        with self._mutex:
            victims = [k for k, e in self._entries.items()
                       if e.source == source]
            for k in victims:
                del self._entries[k]
            self.stats.invalidations += len(victims)
            return len(victims)

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()
