"""Cache admission & layout policy (paper §5, "Avoiding Cache Pollution").

Two decisions are made here, both called out explicitly by the paper:

1. **Admission / pollution avoidance** — "Large, complex objects (e.g., JSON
   deep hierarchies) materialized as the result of a projected attribute of
   a query will pollute ViDa's caches. By carrying only the starting and
   ending binary positions of large objects through query evaluation, ViDa
   can avoid these unnecessary costs." :meth:`AdmissionPolicy.admit_layout`
   demotes over-budget nested values to the ``positions`` layout.

2. **Materialisation layout choice** (Figure 4) — scalars cache columnar;
   nested values cache as objects when small, BSON when mid-sized (compact
   but still binary-navigable), positions when large.
"""

from __future__ import annotations

from dataclasses import dataclass

from .layouts import _deep_bytes


@dataclass(frozen=True)
class AdmissionPolicy:
    """Thresholds controlling what enters the cache and in which layout.

    Attributes:
        max_entry_fraction: an entry may use at most this fraction of the
            total cache budget (bigger candidates are rejected or demoted).
        object_bytes_demote_bson: average per-element size above which parsed
            objects are stored as BSON instead of Python objects.
        object_bytes_demote_positions: average per-element size above which
            even BSON is considered pollution; only byte positions are kept.
        min_expected_reuse: entries are admitted only if the workload model
            expects at least this many future uses (1 = always admit).
    """

    max_entry_fraction: float = 0.5
    object_bytes_demote_bson: int = 512
    object_bytes_demote_positions: int = 8192
    min_expected_reuse: int = 1

    def admit(self, entry_bytes: int, budget_bytes: int, expected_reuse: int = 1) -> bool:
        """Should an entry of ``entry_bytes`` enter a cache of ``budget_bytes``?"""
        if expected_reuse < self.min_expected_reuse:
            return False
        if budget_bytes <= 0:
            return False
        return entry_bytes <= budget_bytes * self.max_entry_fraction

    def nested_layout(self, avg_element_bytes: float) -> str:
        """Pick the cache layout for nested (JSON-like) elements by size."""
        if avg_element_bytes > self.object_bytes_demote_positions:
            return "positions"
        if avg_element_bytes > self.object_bytes_demote_bson:
            return "bson"
        return "objects"

    def layout_for(self, sample_element, is_nested: bool) -> str:
        """Pick a layout given a sample element of the candidate data."""
        if not is_nested:
            return "columns"
        return self.nested_layout(_deep_bytes(sample_element))


DEFAULT_POLICY = AdmissionPolicy()
