"""ViDa data caches: multi-layout materialised field caches with
pollution-avoiding admission policy."""

from .cache import CacheEntry, CacheStats, DataCache
from .layouts import LAYOUTS, CachedData, materialize
from .policy import DEFAULT_POLICY, AdmissionPolicy

__all__ = [
    "AdmissionPolicy", "CacheEntry", "CacheStats", "CachedData",
    "DEFAULT_POLICY", "DataCache", "LAYOUTS", "materialize",
]
