"""The ViDa query server: newline-delimited JSON over asyncio.

Wire protocol (one JSON object per line, each request answered by exactly
one response line; requests on one connection may execute concurrently, so
responses carry the request's ``id`` back and may arrive out of order):

Requests::

    {"id": 1, "sql": "SELECT ..."}                 -- SQL query
    {"id": 2, "q": "for { ... } yield ..."}        -- comprehension query
    {"id": 2, "q": "...", "as_of": {"T": 3}}       -- time travel: pin named
                                                      sources to retained
                                                      file generations
    {"id": 2, "sql": "SELECT ... FROM t AS OF GENERATION 3"}  -- same, in SQL
    {"id": 3, "op": "explain", "sql"|"q": "..."}   -- plan without running
    {"id": 4, "op": "register", "name": "T",
     "path": "/data/t.csv", "format": "csv"}       -- csv | json | auto
    {"id": 5, "op": "stats"}                       -- engine + tenant stats

Responses::

    {"id": 1, "ok": true, "rows": [...], "stats": {...}}
    {"id": 3, "ok": true, "text": "== logical ==..."}
    {"id": 5, "ok": true, "engine": {...}, "tenant": {...}}
    {"id": 1, "ok": false,
     "error": {"type": "quota" | "parse" | "protocol" | "generation"
               | "execution",
               "message": "..."}}

Tenancy model: one connection = one tenant = one
:class:`~repro.core.session.ViDa` session attached to the server's shared
:class:`~repro.core.engine.EngineContext`. Admission control is per tenant:
at most ``quota.max_inflight`` queries execute at once (excess requests are
refused immediately with a structured ``quota`` error, they never queue
silently), and cache admissions are metered against
``quota.cache_write_bytes`` through the session's
:class:`~repro.core.engine.QuotaCacheView`. Reads always pass through — a
tenant over its write quota still benefits from data other tenants warmed.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..core.engine import EngineContext
from ..core.session import ViDa
from ..errors import GenerationError, ParseError, TypeCheckError, ViDaError

#: protocol guard: a request line longer than this is a protocol error
MAX_LINE_BYTES = 4 << 20


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission-control limits."""

    #: queries a tenant may have executing at once; further requests are
    #: refused with a structured ``quota`` error instead of queueing
    max_inflight: int = 4
    #: bytes of cache admissions the tenant may cause (None = unmetered)
    cache_write_bytes: int | None = None


@dataclass
class ServerStats:
    """Front-end counters (engine-level sharing lives in EngineStats)."""

    connections: int = 0
    requests: int = 0
    errors: int = 0
    quota_rejections: int = 0


class _Tenant:
    """Per-connection state: the session plus admission-control counters."""

    def __init__(self, tenant_id: int, session: ViDa, quota: TenantQuota):
        self.id = tenant_id
        self.session = session
        self.quota = quota
        self.inflight = 0
        self.queries = 0
        self.rejected = 0

    def admit(self) -> bool:
        """Reserve an execution slot (event-loop thread only, so plain
        increments are race-free)."""
        if self.inflight >= self.quota.max_inflight:
            self.rejected += 1
            return False
        self.inflight += 1
        return True

    def release(self) -> None:
        self.inflight -= 1

    def stats(self) -> dict:
        view = self.session.cache if self.session.cache is not \
            self.session.engine_context.cache else None
        out = {
            "id": self.id,
            "queries": self.queries,
            "inflight": self.inflight,
            "quota_rejections": self.rejected,
            "max_inflight": self.quota.max_inflight,
        }
        if view is not None:
            out["cache_write_quota_bytes"] = view.quota_bytes
            out["cache_bytes_admitted"] = view.admitted_bytes
            out["cache_writes_denied"] = view.writes_denied
        return out


def _error(kind: str, message: str, req_id=None) -> dict:
    out = {"ok": False, "error": {"type": kind, "message": message}}
    if req_id is not None:
        out["id"] = req_id
    return out


def _jsonable(value):
    """Round-trip a query result into JSON-safe types (bytes, Decimal and
    friends degrade to strings rather than failing the response)."""
    return json.loads(json.dumps(value, default=str))


class ViDaServer:
    """Serve N tenant sessions over one shared :class:`EngineContext`."""

    def __init__(
        self,
        context: EngineContext | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 8,
        quota: TenantQuota | None = None,
        session_options: dict | None = None,
    ):
        self._owns_context = context is None
        self.context = context if context is not None else EngineContext()
        self.host = host
        self.port = port
        self.quota = quota or TenantQuota()
        #: extra ViDa(...) keyword options applied to every tenant session
        self.session_options = dict(session_options or {})
        self.stats = ServerStats()
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="vida-query")
        self._server: asyncio.AbstractServer | None = None
        self._tenant_ids = itertools.count(1)
        self._connections: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves port 0 after :meth:`start`."""
        if self._server is None:
            raise ViDaError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_LINE_BYTES)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # drain live connections before tearing shared state down, so no
        # handler dies mid-write and nothing leaks into loop shutdown
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._executor.shutdown(wait=True)
        if self._owns_context:
            self.context.close()

    # -- connection handling --------------------------------------------------

    def _open_session(self) -> ViDa:
        opts = dict(self.session_options)
        if self.quota.cache_write_bytes is not None:
            opts.setdefault("cache_write_quota_bytes",
                            self.quota.cache_write_bytes)
        return ViDa(context=self.context, **opts)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        tenant = _Tenant(next(self._tenant_ids), self._open_session(),
                         self.quota)
        self.stats.connections += 1
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._connections.add(conn_task)
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()

        async def respond(payload: dict) -> None:
            if not payload.get("ok"):
                self.stats.errors += 1
            line = json.dumps(payload, default=str).encode() + b"\n"
            async with write_lock:
                writer.write(line)
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except asyncio.CancelledError:
                    break  # server shutdown: close this connection cleanly
                except (ValueError, ConnectionError):
                    await respond(_error("protocol", "request line too long"))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self.stats.requests += 1
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    await respond(_error("protocol", f"bad JSON: {exc}"))
                    continue
                if not isinstance(request, dict):
                    await respond(_error("protocol",
                                         "request must be a JSON object"))
                    continue
                task = asyncio.ensure_future(
                    self._serve_request(tenant, request, respond))
                pending.add(task)
                task.add_done_callback(pending.discard)
        finally:
            if conn_task is not None:
                self._connections.discard(conn_task)
            for task in pending:
                task.cancel()
            tenant.session.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- request dispatch ------------------------------------------------------

    async def _serve_request(self, tenant: _Tenant, request: dict,
                             respond) -> None:
        req_id = request.get("id")
        try:
            payload = await self._dispatch(tenant, request)
        except asyncio.CancelledError:
            raise
        except (ParseError, TypeCheckError) as exc:
            payload = _error("parse", str(exc))
        except GenerationError as exc:
            # before ViDaError: an unknown/evicted AS OF generation gets its
            # own typed envelope so clients can distinguish it from runtime
            # failures
            payload = _error("generation", str(exc))
        except ViDaError as exc:
            payload = _error("execution", str(exc))
        except Exception as exc:  # never kill the connection on one query
            payload = _error("execution", f"{type(exc).__name__}: {exc}")
        if req_id is not None:
            payload.setdefault("id", req_id)
        await respond(payload)

    async def _dispatch(self, tenant: _Tenant, request: dict) -> dict:
        op = request.get("op")
        if op is None and ("sql" in request or "q" in request):
            op = "query"
        if op == "query":
            return await self._run_query(tenant, request)
        if op == "explain":
            return await self._run_explain(tenant, request)
        if op == "register":
            return await self._run_register(tenant, request)
        if op == "stats":
            return self._run_stats(tenant)
        return _error("protocol", f"unknown request {op!r} "
                                  "(expected sql/q, explain, register, stats)")

    def _statement(self, request: dict) -> tuple[str, str] | None:
        if isinstance(request.get("sql"), str):
            return "sql", request["sql"]
        if isinstance(request.get("q"), str):
            return "q", request["q"]
        return None

    async def _run_query(self, tenant: _Tenant, request: dict) -> dict:
        stmt = self._statement(request)
        if stmt is None:
            return _error("protocol", "query needs a string 'sql' or 'q'")
        as_of = request.get("as_of")
        if as_of is not None and not (
            isinstance(as_of, dict)
            and all(isinstance(k, str)
                    and isinstance(v, int) and not isinstance(v, bool)
                    for k, v in as_of.items())
        ):
            return _error("protocol",
                          "'as_of' must map source names to integer "
                          "generation tokens")
        if not tenant.admit():
            self.stats.quota_rejections += 1
            return _error(
                "quota",
                f"tenant {tenant.id} already has "
                f"{tenant.quota.max_inflight} queries in flight",
            )
        kind, text = stmt
        session = tenant.session
        loop = asyncio.get_running_loop()

        def run():
            if kind == "sql":
                return session.sql(text, as_of=as_of)
            return session.query(text, as_of=as_of)

        try:
            result = await loop.run_in_executor(self._executor, run)
        finally:
            tenant.release()
        tenant.queries += 1
        value = result.value
        out = {"ok": True,
               "rows": _jsonable(value if isinstance(value, list)
                                 else [value])}
        if request.get("stats"):
            out["stats"] = _jsonable(vars(result.stats))
        if request.get("explain") and result.plan_text:
            out["plan"] = result.plan_text
        return out

    async def _run_explain(self, tenant: _Tenant, request: dict) -> dict:
        stmt = self._statement(request)
        if stmt is None:
            return _error("protocol", "explain needs a string 'sql' or 'q'")
        kind, text = stmt
        session = tenant.session
        loop = asyncio.get_running_loop()

        def run():
            if kind == "sql":
                from ..languages.sql import parse_sql, translate_sql

                return session.explain(
                    translate_sql(parse_sql(text), session.catalog))
            return session.explain(text)

        text_out = await loop.run_in_executor(self._executor, run)
        return {"ok": True, "text": text_out}

    async def _run_register(self, tenant: _Tenant, request: dict) -> dict:
        name, path = request.get("name"), request.get("path")
        fmt = request.get("format", "auto")
        if not isinstance(name, str) or not isinstance(path, str):
            return _error("protocol",
                          "register needs string 'name' and 'path'")
        session = tenant.session
        registrars = {"csv": session.register_csv,
                      "json": session.register_json,
                      "auto": session.register_auto}
        registrar = registrars.get(fmt)
        if registrar is None:
            return _error("protocol",
                          f"unknown format {fmt!r} (csv | json | auto)")
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, registrar, name, path)
        return {"ok": True, "registered": name}

    def _run_stats(self, tenant: _Tenant) -> dict:
        return {
            "ok": True,
            "engine": self.context.stats_snapshot(),
            "server": {
                "connections": self.stats.connections,
                "requests": self.stats.requests,
                "errors": self.stats.errors,
                "quota_rejections": self.stats.quota_rejections,
            },
            "tenant": tenant.stats(),
        }


async def _amain(argv=None) -> None:
    import argparse

    ap = argparse.ArgumentParser(
        description="ViDa multi-tenant NDJSON query server")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=7632)
    ap.add_argument("--workers", type=int, default=8)
    ap.add_argument("--max-inflight", type=int, default=4)
    ap.add_argument("--cache-write-quota", type=int, default=None,
                    help="per-tenant cache-admission byte quota")
    ap.add_argument("--register", action="append", default=[],
                    metavar="NAME=PATH",
                    help="pre-register a source in the shared catalog")
    opts = ap.parse_args(argv)
    server = ViDaServer(
        host=opts.host, port=opts.port, max_workers=opts.workers,
        quota=TenantQuota(max_inflight=opts.max_inflight,
                          cache_write_bytes=opts.cache_write_quota),
    )
    bootstrap = ViDa(context=server.context)
    try:
        for spec in opts.register:
            name, _, path = spec.partition("=")
            bootstrap.register_auto(name, path)
        await server.start()
        host, port = server.address
        print(f"vida server listening on {host}:{port}", flush=True)
        await server.serve_forever()
    finally:
        bootstrap.close()
        await server.stop()


def main(argv=None) -> None:
    try:
        asyncio.run(_amain(argv))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
