"""Multi-tenant query server: N sessions multiplexed over one engine.

The proof-of-sharing subsystem for :class:`~repro.core.engine.EngineContext`:
an asyncio front end speaks newline-delimited JSON, gives every connection
its own :class:`~repro.core.session.ViDa` tenant session, and executes
queries on a bounded thread pool — so one tenant's cold scan builds the
positional maps, caches and value indexes every other tenant's queries hit.
"""

from .server import ServerStats, TenantQuota, ViDaServer

__all__ = ["ServerStats", "TenantQuota", "ViDaServer"]
