"""Exception hierarchy for the ViDa reproduction.

Every error raised by the library derives from :class:`ViDaError` so callers
can catch a single base class. Subclasses mirror the pipeline stages: parsing,
typing, planning, code generation, execution, and raw-data access.
"""

from __future__ import annotations


class ViDaError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ViDaError):
    """Raised when query text or a source description cannot be parsed.

    Carries optional ``line``/``column`` attributes (1-based) pointing at the
    offending token when the parser knows them.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column


class TypeCheckError(ViDaError):
    """Raised when a query does not type-check against the catalog schemas."""


class CatalogError(ViDaError):
    """Raised for unknown sources, duplicate registrations, or bad descriptions."""


class PlanningError(ViDaError):
    """Raised when the optimizer cannot produce a physical plan for a query."""


class CodegenError(ViDaError):
    """Raised when the JIT compiler cannot generate code for a plan node."""


class ExecutionError(ViDaError):
    """Raised when a generated or interpreted query fails at run time."""


class DataFormatError(ViDaError):
    """Raised when a raw file violates its registered format description."""


class CleaningError(DataFormatError):
    """Raised by the 'raise' cleaning policy when a dirty value is encountered."""

    def __init__(self, message: str, row: int | None = None, field: str | None = None):
        where = ""
        if row is not None:
            where = f" (row {row}" + (f", field {field!r}" if field else "") + ")"
        super().__init__(message + where)
        self.row = row
        self.field = field


class GenerationError(ViDaError):
    """Raised when an ``AS OF GENERATION`` pin cannot be served: the
    generation was never observed, fell out of the retention window, or its
    data is no longer materializable (the file was rewritten and no pinned
    cache entry covers the requested fields)."""


class StorageError(ViDaError):
    """Raised by the storage substrate (pages, buffer pool, devices)."""


class WarehouseError(ViDaError):
    """Raised by the baseline warehouse engines (row/column/document store)."""
