"""Value-index structures: hash entries + sorted runs over touched rows.

A :class:`ValueIndex` maps column values to the (global) row numbers that
hold them, but only for the row ranges a scan has actually touched — the
``covered`` interval list is as much a part of the structure as the hash
table. Lookups answer *within covered rows only*; the caller scans the
complement (``uncovered_ranges``) with the original predicate, so a
partially built index is always correct, never merely "mostly right".

Lookup specs are plain tuples shared by the planner, runtime and engines:

- ``("eq", field, value)``
- ``("in", field, (v1, v2, ...))``
- ``("range", field, lo, hi, lo_incl, hi_incl)`` with ``None`` open ends

A lookup may return ``None`` (probe type unservable — e.g. a range probe
on a value type with no sorted run); the caller falls back to a full scan.
Candidate rows are always returned sorted ascending, and are a *superset*
of the true matches within covered rows under engine semantics — the
engines keep the original predicate as a recheck, so hash-equality quirks
(``1 == 1.0 == True`` key collapse, NULL comparison semantics) can only
produce false positives, never wrong answers.
"""

from __future__ import annotations

import bisect
from typing import Any, Sequence


class ValueIndex:
    """Hash + sorted-run index over one field's covered row ranges."""

    __slots__ = ("field", "entries", "covered", "_typed_runs")

    def __init__(self, field: str):
        self.field = field
        #: value -> list of global row numbers holding it (covered rows only)
        self.entries: dict[Any, list[int]] = {}
        #: sorted disjoint [lo, hi) half-open row ranges already indexed
        self.covered: list[tuple[int, int]] = []
        self._typed_runs: dict[str, list] | None = None

    # -- building ---------------------------------------------------------

    def add_run(self, start: int, values: Sequence) -> int:
        """Index ``values`` as rows ``[start, start+len)``, skipping any
        subrange already covered (so re-scans of the same rows are free).
        Returns the number of rows newly indexed."""
        end = start + len(values)
        if end <= start:
            return 0
        added = 0
        entries = self.entries
        for lo, hi in self._uncovered_within(start, end):
            for row in range(lo, hi):
                v = values[row - start]
                try:
                    bucket = entries.get(v)
                    if bucket is None:
                        entries[v] = [row]
                    else:
                        bucket.append(row)
                except TypeError:
                    # unhashable (nested JSON value): probes are scalar
                    # consts, so an unindexed unhashable can never be a
                    # false negative — safe to leave out of the hash table
                    pass
            added += hi - lo
        if added:
            self._merge_covered(start, end)
            self._typed_runs = None
        elif not self._covers(start, end):
            # nothing hashed but rows were seen: still mark them covered
            self._merge_covered(start, end)
        return added

    def _covers(self, lo: int, hi: int) -> bool:
        i = bisect.bisect_right(self.covered, (lo, float("inf"))) - 1
        return i >= 0 and self.covered[i][1] >= hi and self.covered[i][0] <= lo

    def _uncovered_within(self, lo: int, hi: int):
        """Subranges of [lo, hi) not yet covered, in ascending order."""
        pos = lo
        for clo, chi in self.covered:
            if chi <= pos:
                continue
            if clo >= hi:
                break
            if clo > pos:
                yield (pos, min(clo, hi))
            pos = max(pos, chi)
            if pos >= hi:
                break
        if pos < hi:
            yield (pos, hi)

    def _merge_covered(self, lo: int, hi: int) -> None:
        merged: list[tuple[int, int]] = []
        placed = False
        for clo, chi in self.covered:
            if chi < lo or clo > hi:
                if not placed and clo > hi:
                    merged.append((lo, hi))
                    placed = True
                merged.append((clo, chi))
            else:
                lo = min(lo, clo)
                hi = max(hi, chi)
        if not placed:
            merged.append((lo, hi))
            merged.sort()
        self.covered = merged

    # -- coverage ---------------------------------------------------------

    def indexed_rows(self) -> int:
        return sum(hi - lo for lo, hi in self.covered)

    def coverage(self, total_rows: int) -> float:
        return self.indexed_rows() / max(1, total_rows)

    def uncovered_ranges(self, total_rows: int) -> list[tuple[int, int]]:
        """Complement of ``covered`` within ``[0, total_rows)``."""
        out: list[tuple[int, int]] = []
        pos = 0
        for lo, hi in self.covered:
            if lo >= total_rows:
                break
            if lo > pos:
                out.append((pos, lo))
            pos = max(pos, hi)
            if pos >= total_rows:
                break
        if pos < total_rows:
            out.append((pos, total_rows))
        return out

    # -- probing ----------------------------------------------------------

    def lookup(self, spec: tuple) -> list[int] | None:
        """Sorted candidate rows within covered ranges, or ``None`` when
        this probe can't be served (caller falls back to a full scan)."""
        kind = spec[0]
        if kind == "eq":
            return self._lookup_values((spec[2],))
        if kind == "in":
            return self._lookup_values(spec[2])
        if kind == "range":
            return self._lookup_range(*spec[2:])
        return None

    def _lookup_values(self, values: Sequence) -> list[int]:
        rows: list[int] = []
        for v in values:
            try:
                rows.extend(self.entries.get(v, ()))
            except TypeError:
                pass  # unhashable probe: no hashed value can equal it
        rows.sort()
        # IN-lists may repeat hash-equal values (e.g. (1, 1.0)); dedupe
        out: list[int] = []
        prev = None
        for r in rows:
            if r != prev:
                out.append(r)
                prev = r
        return out

    def _lookup_range(self, lo, hi, lo_incl: bool, hi_incl: bool):
        probe = lo if lo is not None else hi
        runs = self._sorted_runs()
        if isinstance(probe, bool) or isinstance(probe, (int, float)):
            run = runs["num"]
        elif isinstance(probe, str):
            run = runs["str"]
        else:
            return None  # no ordered domain for this probe type
        i, j = 0, len(run)
        if lo is not None:
            i = (bisect.bisect_left(run, lo) if lo_incl
                 else bisect.bisect_right(run, lo))
        if hi is not None:
            j = (bisect.bisect_right(run, hi) if hi_incl
                 else bisect.bisect_left(run, hi))
        rows: list[int] = []
        for k in run[i:j]:
            rows.extend(self.entries[k])
        rows.sort()
        return rows

    def _sorted_runs(self) -> dict[str, list]:
        """Lazily (re)built sorted key runs, partitioned by ordered type.

        Comparisons against values outside these domains (None, nested
        structures) raise in the engines too, so excluding them from the
        runs cannot create false negatives."""
        if self._typed_runs is None:
            num: list = []
            strs: list = []
            for k in self.entries:
                if isinstance(k, bool) or isinstance(k, (int, float)):
                    num.append(k)
                elif isinstance(k, str):
                    strs.append(k)
            num.sort()
            strs.sort()
            self._typed_runs = {"num": num, "str": strs}
        return self._typed_runs


class IndexPartial:
    """Per-scan (or per-morsel) recorder of emitted column runs.

    Mirrors the posmap-partial lifecycle: a scan records converted column
    values batch by batch; the coordinator merges partials in morsel order
    via :meth:`IndexRegistry.adopt`. ``local_rows`` marks partials whose
    row numbers are morsel-local (cold byte-range morsels start counting
    at 0); adoption shifts them by the preceding morsels' ``rows_seen``.
    """

    __slots__ = ("fields", "local_rows", "runs", "rows_seen")

    def __init__(self, fields: Sequence[str], local_rows: bool = False):
        self.fields = tuple(fields)
        self.local_rows = local_rows
        self.runs: dict[str, list[tuple[int, list]]] = {
            f: [] for f in self.fields
        }
        self.rows_seen = 0

    def record(self, start: int, columns: dict[str, list]) -> None:
        """Record one batch's converted values per field; ``start`` is the
        batch's first row (global, or morsel-local for byte morsels)."""
        for field, values in columns.items():
            run = self.runs.get(field)
            if run is not None and values:
                run.append((start, values))
        self.advance(start, max((len(v) for v in columns.values()),
                                default=0))

    def advance(self, start: int, nrows: int) -> None:
        """Note that rows ``[start, start+nrows)`` passed through the scan,
        whether or not any field was recorded — byte-morsel row shifting
        depends on an exact per-morsel row count."""
        if start + nrows > self.rows_seen:
            self.rows_seen = start + nrows
