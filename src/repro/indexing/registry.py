"""Engine-wide registry of JIT value indexes, shared by tenant sessions.

Indexes are keyed by ``(source name, source generation, field)``. The
generation is the catalog's per-source file-generation token: it bumps
whenever ``Catalog.check_freshness`` sees the file's fingerprint change,
which is the same moment positional maps and cached columns are dropped —
so a registry hit is by construction consistent with the bytes the posmap
describes. A peek or adoption under a different generation silently drops
the stale entry (second line of defense behind the session's freshness
sweep).
"""

from __future__ import annotations

import threading
from typing import Sequence

from .value_index import IndexPartial, ValueIndex


class IndexRegistry:
    """Engine-lifetime store of incrementally built value indexes.

    Shared by every session of an :class:`~repro.core.engine.EngineContext`:
    peeks and adoptions serialise on an internal mutex (a leaf lock — the
    runtime's adopt-or-discard additionally holds the catalog's per-source
    lock, which orders adoption against generation bumps).
    """

    def __init__(self):
        #: source -> (generation, {field -> ValueIndex})
        self._sources: dict[str, tuple[int, dict[str, ValueIndex]]] = {}
        self._mutex = threading.RLock()

    def peek(self, source: str, generation: int,
             field: str) -> ValueIndex | None:
        """The index for ``source.field`` at ``generation``, or ``None``.
        A generation mismatch evicts the stale source entry."""
        with self._mutex:
            hit = self._sources.get(source)
            if hit is None:
                return None
            if hit[0] != generation:
                del self._sources[source]
                return None
            return hit[1].get(field)

    def fields(self, source: str, generation: int) -> tuple[str, ...]:
        with self._mutex:
            hit = self._sources.get(source)
            if hit is None or hit[0] != generation:
                return ()
            return tuple(hit[1])

    def adopt(self, source: str, generation: int,
              partials: Sequence[IndexPartial]) -> int:
        """Merge scan partials (in morsel order) into ``source``'s indexes.

        Partials with ``local_rows`` (cold byte morsels) are shifted by the
        cumulative ``rows_seen`` of the partials before them — the same
        prefix-sum rule ``adopt_posmap_partials`` uses for offsets. Returns
        the number of fields whose index actually gained rows (re-scans of
        already-covered ranges add nothing and count nothing).
        """
        if not partials:
            return 0
        with self._mutex:
            hit = self._sources.get(source)
            if hit is None or hit[0] != generation:
                by_field: dict[str, ValueIndex] = {}
                self._sources[source] = (generation, by_field)
            else:
                by_field = hit[1]
            grown: set[str] = set()
            base = 0
            for part in partials:
                shift = base if part.local_rows else 0
                for field, runs in part.runs.items():
                    if not runs:
                        continue
                    idx = by_field.get(field)
                    if idx is None:
                        idx = by_field[field] = ValueIndex(field)
                    for start, values in runs:
                        if idx.add_run(start + shift, values):
                            grown.add(field)
                base += part.rows_seen
            return len(grown)

    def extend_source(
        self,
        source: str,
        old_generation: int,
        new_generation: int,
        start_row: int,
        tail_columns: dict[str, list],
    ) -> int:
        """Delta refresh: re-key ``source``'s indexes from ``old_generation``
        to ``new_generation`` and extend each field with the appended tail
        run starting at ``start_row``.

        Appends leave every existing row number valid (the old content is a
        byte-prefix of the new file), so — unlike :meth:`adopt`'s
        generation-mismatch eviction — the built indexes carry over whole.
        Fields with no tail values keep their coverage as-is; the uncovered
        tail is served by the existing hole-scan fallback (which re-emits
        and converges coverage). Returns the number of fields extended.
        """
        with self._mutex:
            hit = self._sources.get(source)
            if hit is None or hit[0] != old_generation:
                return 0
            by_field = hit[1]
            grown = 0
            for field, idx in by_field.items():
                values = tail_columns.get(field)
                if values and idx.add_run(start_row, values):
                    grown += 1
            self._sources[source] = (new_generation, by_field)
            return grown

    def invalidate_source(self, source: str) -> None:
        with self._mutex:
            self._sources.pop(source, None)

    def clear(self) -> None:
        with self._mutex:
            self._sources.clear()
