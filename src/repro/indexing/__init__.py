"""JIT secondary indexes: value-based access paths built as scan byproducts.

ViDa's positional maps (paper §2.1) locate rows *positionally* as a
byproduct of query execution. This package extends the same just-in-time
philosophy to *value-based* access paths, following "Just-in-Time Index
Compilation" (arXiv 1901.07627): while a scan's predicate kernel already
holds a converted column in its hands, the values are recorded into a
:class:`ValueIndex` — a hash index for equality probes plus lazily sorted
runs for range probes — over exactly the row ranges the scan touched.
Indexes grow incrementally across queries, merge across morsel workers
like posmap partials, and are invalidated with the posmap when the
underlying file changes.
"""

from .value_index import ValueIndex, IndexPartial
from .registry import IndexRegistry

__all__ = ["ValueIndex", "IndexPartial", "IndexRegistry"]
