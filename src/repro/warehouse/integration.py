"""The data-integration (mediator) layer over multiple systems (Figure 5's
"Col.Store + Mongo" / "RowStore + Mongo" configurations).

"When different systems are used, a data integration layer on top of the
existing systems (the RDBMS of choice and MongoDB) is responsible for
providing access to the data … the need for a data integration layer comes
with a performance penalty during query processing."

The penalty is modelled with real work, not sleeps: every record crossing a
system boundary passes through a *mediation* step that (a) converts it to
the mediator's neutral representation (fresh dict, normalised keys), and
(b) coerces values to the global schema's types — the kind of per-tuple
marshalling wrapper architectures (Garlic-style) actually perform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .query import Adapter, QuerySpec, run_spec


@dataclass
class MediationStats:
    records_converted: int = 0
    values_coerced: int = 0


class MediatedAdapter(Adapter):
    """Wraps a system-specific adapter with per-record mediation."""

    def __init__(self, inner: Adapter, stats: MediationStats,
                 type_hints: dict[str, str] | None = None):
        self.inner = inner
        self.stats = stats
        self.type_hints = type_hints or {}

    def fetch(self, fields: Sequence[str]) -> Iterator[dict]:
        return self._mediate(self.inner.fetch(fields))

    def fetch_filtered(self, fields: Sequence[str], filters) -> Iterator[dict]:
        # Mediators push selections down to the sources; only survivors
        # cross the system boundary and pay conversion.
        return self._mediate(self.inner.fetch_filtered(fields, filters))

    def _mediate(self, records: Iterator[dict]) -> Iterator[dict]:
        hints = self.type_hints
        stats = self.stats
        for record in records:
            # (a) convert to the mediator's neutral record representation
            neutral = {}
            for key, value in record.items():
                # (b) coerce to the global schema where a hint exists
                hint = hints.get(key)
                if hint is not None and value is not None:
                    if hint == "float" and not isinstance(value, float):
                        value = float(value)
                        stats.values_coerced += 1
                    elif hint == "int" and not isinstance(value, int):
                        value = int(value)
                        stats.values_coerced += 1
                    elif hint == "string" and not isinstance(value, str):
                        value = str(value)
                        stats.values_coerced += 1
                neutral[str(key)] = value
            stats.records_converted += 1
            yield neutral


class IntegrationLayer:
    """A mediator federating adapters that live in different systems.

    ``register(source, adapter, system)`` attaches each dataset; queries via
    :meth:`query` run the shared spec runner over *mediated* adapters, so
    every tuple from every underlying system pays the marshalling cost.
    """

    def __init__(self):
        self._adapters: dict[str, MediatedAdapter] = {}
        self._systems: dict[str, str] = {}
        self.stats = MediationStats()

    def register(self, source: str, adapter: Adapter, system: str,
                 type_hints: dict[str, str] | None = None) -> None:
        self._adapters[source] = MediatedAdapter(adapter, self.stats, type_hints)
        self._systems[source] = system

    def systems(self) -> dict[str, str]:
        return dict(self._systems)

    def query(self, spec: QuerySpec):
        return run_spec(spec, self._adapters)
