"""Column-store baseline ("Col.Store" in Figure 5; MonetDB's role).

Loading parses the input once and builds one typed in-memory column per
attribute, dictionary-encoding strings (the classic DSM/BAT design). Scans
touch only the requested columns, so a loaded column store answers
projective analytical queries very fast — which is why the paper reports
ViDa's *cached* queries as "comparable to that of the loaded column store".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..errors import WarehouseError


@dataclass
class _Column:
    """One typed column; strings are dictionary-encoded."""

    name: str
    type: str
    data: list = field(default_factory=list)
    dictionary: dict | None = None      # value → code (string columns)
    reverse: list = field(default_factory=list)  # code → value
    _decoded: list | None = None        # memoised decoded vector

    def append(self, value) -> None:
        self._decoded = None
        if self.type == "string" and value is not None:
            if self.dictionary is None:
                self.dictionary = {}
            code = self.dictionary.get(value)
            if code is None:
                code = len(self.reverse)
                self.dictionary[value] = code
                self.reverse.append(value)
            self.data.append(code)
        else:
            self.data.append(value)

    def get(self, i: int):
        v = self.data[i]
        if self.type == "string" and v is not None:
            return self.reverse[v]
        return v

    def materialize(self) -> list:
        """Decoded vector; memoised (column stores keep hot decoded columns)."""
        if self._decoded is None:
            if self.type == "string":
                reverse = self.reverse
                self._decoded = [None if v is None else reverse[v] for v in self.data]
            else:
                self._decoded = self.data
        return self._decoded

    def memory_bytes(self) -> int:
        base = len(self.data) * 8
        if self.type == "string":
            base += sum(len(s) + 49 for s in self.reverse)
        return base


@dataclass
class ColTable:
    name: str
    columns: dict[str, _Column]
    order: tuple[str, ...]
    row_count: int = 0


class ColStore:
    """An in-memory dictionary-encoded column store."""

    def __init__(self):
        self.tables: dict[str, ColTable] = {}

    def create_table(self, name: str, columns: Sequence[str],
                     types: Sequence[str]) -> ColTable:
        if name in self.tables:
            raise WarehouseError(f"table {name!r} already exists")
        if len(columns) != len(types):
            raise WarehouseError("columns/types length mismatch")
        table = ColTable(
            name,
            {c: _Column(c, t) for c, t in zip(columns, types)},
            tuple(columns),
        )
        self.tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self.tables:
            raise WarehouseError(f"no table {name!r}")
        del self.tables[name]

    def _table(self, name: str) -> ColTable:
        try:
            return self.tables[name]
        except KeyError:
            raise WarehouseError(
                f"no table {name!r}; have: {', '.join(sorted(self.tables))}"
            ) from None

    def insert_rows(self, name: str, rows: Iterable[Sequence]) -> int:
        table = self._table(name)
        cols = [table.columns[c] for c in table.order]
        count = 0
        for row in rows:
            for col, value in zip(cols, row):
                col.append(value)
            count += 1
        table.row_count += count
        return count

    def scan(self, name: str, fields: Sequence[str] | None = None) -> Iterator[tuple]:
        """Column-at-a-time scan: materialise only requested columns, zip."""
        table = self._table(name)
        names = list(fields) if fields is not None else list(table.order)
        missing = [f for f in names if f not in table.columns]
        if missing:
            raise WarehouseError(f"table {name!r} has no columns {missing}")
        if not names:
            return (() for _ in range(table.row_count))
        cols = [table.columns[f].materialize() for f in names]
        if len(cols) == 1:
            return ((v,) for v in cols[0])
        return zip(*cols)

    def column(self, name: str, field_name: str) -> list:
        """Direct columnar access (decoded)."""
        table = self._table(name)
        if field_name not in table.columns:
            raise WarehouseError(f"table {name!r} has no column {field_name!r}")
        return table.columns[field_name].materialize()

    def iter_dicts(self, name: str, fields: Sequence[str] | None = None):
        table = self._table(name)
        names = list(fields) if fields is not None else list(table.order)
        for tup in self.scan(name, fields):
            yield dict(zip(names, tup))

    def row_count(self, name: str) -> int:
        return self._table(name).row_count

    def storage_bytes(self, name: str) -> int:
        table = self._table(name)
        return sum(col.memory_bytes() for col in table.columns.values())
