"""Row-store baseline ("RowStore" in Figure 5; PostgreSQL's role).

A disk-based slotted-page engine: loading parses the CSV, encodes binary
tuples, and packs them into 8 KB pages in heap files; querying iterates
pages through a buffer pool and decodes tuples. Like PostgreSQL, the store
enforces a **maximum attribute count per table** — the paper vertically
partitions the 17832-attribute Genetics relation for exactly this reason —
and the ETL layer splits wide inputs into partitions that scans re-stitch.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..errors import WarehouseError
from ..storage.buffer import BufferPool
from ..storage.pages import HeapFile, decode_fields, decode_tuple, encode_tuple

#: PostgreSQL's limit is 250–1600 depending on types (paper §6); we use the
#: conservative figure so wide relations genuinely partition.
MAX_ATTRS = 250


@dataclass
class TableMeta:
    name: str
    columns: tuple[str, ...]
    types: tuple[str, ...]
    heap_path: str
    row_count: int = 0
    #: names of the vertical partitions, in column order (empty = plain table)
    partitions: tuple[str, ...] = ()


class RowStore:
    """A page-based row store with a buffer pool and vertical partitioning."""

    def __init__(self, directory: str | os.PathLike, buffer_pages: int = 16384):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.tables: dict[str, TableMeta] = {}
        self.pool = BufferPool(buffer_pages)
        self._heaps: dict[str, HeapFile] = {}

    def _heap(self, meta: TableMeta) -> HeapFile:
        heap = self._heaps.get(meta.name)
        if heap is None:
            heap = HeapFile(meta.heap_path)
            self._heaps[meta.name] = heap
        return heap

    # -- DDL -----------------------------------------------------------

    def create_table(
        self, name: str, columns: Sequence[str], types: Sequence[str]
    ) -> TableMeta:
        """Create a table; raises when the attribute limit is exceeded
        (callers must vertically partition, as the paper did)."""
        if name in self.tables:
            raise WarehouseError(f"table {name!r} already exists")
        if len(columns) != len(types):
            raise WarehouseError("columns/types length mismatch")
        if len(columns) > MAX_ATTRS:
            raise WarehouseError(
                f"table {name!r} has {len(columns)} attributes; the row store "
                f"limit is {MAX_ATTRS} — vertically partition the input"
            )
        heap_path = os.path.join(self.directory, f"{name}.heap")
        if os.path.exists(heap_path):
            os.remove(heap_path)
        meta = TableMeta(name, tuple(columns), tuple(types), heap_path)
        self.tables[name] = meta
        return meta

    def create_partitioned(
        self, name: str, columns: Sequence[str], types: Sequence[str],
        key_column: str = "id",
    ) -> TableMeta:
        """Create a logical table as vertical partitions of ≤ MAX_ATTRS each.

        Every partition carries the key column so partitions stay joinable,
        mirroring how the paper's PostgreSQL deployment was set up.
        """
        if len(columns) <= MAX_ATTRS:
            return self.create_table(name, columns, types)
        if key_column not in columns:
            raise WarehouseError(f"partitioning needs key column {key_column!r}")
        key_idx = list(columns).index(key_column)
        key_type = types[key_idx]
        others = [(c, t) for c, t in zip(columns, types) if c != key_column]
        per_part = MAX_ATTRS - 1
        part_names: list[str] = []
        for p in range(0, len(others), per_part):
            chunk = others[p:p + per_part]
            part_name = f"{name}__p{p // per_part}"
            self.create_table(
                part_name,
                [key_column] + [c for c, _t in chunk],
                [key_type] + [t for _c, t in chunk],
            )
            part_names.append(part_name)
        meta = TableMeta(name, tuple(columns), tuple(types), heap_path="",
                         partitions=tuple(part_names))
        self.tables[name] = meta
        return meta

    def drop_table(self, name: str) -> None:
        meta = self.tables.pop(name, None)
        if meta is None:
            raise WarehouseError(f"no table {name!r}")
        for part in meta.partitions:
            self.drop_table(part)
        heap = self._heaps.pop(name, None)
        if heap is not None:
            heap.close()
        if meta.heap_path and os.path.exists(meta.heap_path):
            self.pool.invalidate(meta.heap_path)
            os.remove(meta.heap_path)

    def _meta(self, name: str) -> TableMeta:
        try:
            return self.tables[name]
        except KeyError:
            raise WarehouseError(
                f"no table {name!r}; have: {', '.join(sorted(self.tables))}"
            ) from None

    # -- loading -----------------------------------------------------------

    def insert_rows(self, name: str, rows: Iterable[Sequence]) -> int:
        """Bulk-insert converted rows (encode + page packing)."""
        meta = self._meta(name)
        if meta.partitions:
            raise WarehouseError(
                f"{name!r} is partitioned; insert into partitions via the ETL"
            )
        heap = self._heap(meta)
        count = 0
        types = meta.types
        for row in rows:
            heap.append(encode_tuple(tuple(row), types))
            count += 1
        heap.flush()
        meta.row_count += count
        return count

    # -- querying -----------------------------------------------------------

    def scan(self, name: str, fields: Sequence[str] | None = None) -> Iterator[tuple]:
        """Yield tuples of ``fields`` (None = all), page by page."""
        meta = self._meta(name)
        if meta.partitions:
            yield from self._scan_partitioned(meta, fields)
            return
        if fields is None:
            idx = list(range(len(meta.columns)))
        else:
            idx = [self._col_index(meta, f) for f in fields]
        heap = self._heap(meta)
        types = meta.types
        if fields is not None and len(idx) < len(types):
            # Partial tuple deform: decode only up to the last needed column.
            for _rid, payload in self.pool.scan(heap):
                yield decode_fields(payload, types, idx)
            return
        for _rid, payload in self.pool.scan(heap):
            values = decode_tuple(payload, types)
            yield tuple(values[i] for i in idx)

    def _col_index(self, meta: TableMeta, f: str) -> int:
        try:
            return meta.columns.index(f)
        except ValueError:
            raise WarehouseError(f"table {meta.name!r} has no column {f!r}") from None

    def _scan_partitioned(self, meta: TableMeta, fields: Sequence[str] | None):
        """Stitch vertical partitions back together for a scan.

        Only partitions holding requested fields are touched; rows align by
        load order (the ETL loads partitions from the same input pass).
        """
        wanted = list(fields) if fields is not None else list(meta.columns)
        plans: list[tuple[str, list[str]]] = []
        for part in meta.partitions:
            pmeta = self._meta(part)
            have = [f for f in wanted if f in pmeta.columns]
            if have:
                plans.append((part, have))
        if not plans:
            raise WarehouseError(f"none of {wanted} exist in {meta.name!r}")
        covered: list[str] = []
        for _p, have in plans:
            covered.extend(have)
        missing = [f for f in wanted if f not in covered]
        if missing:
            raise WarehouseError(f"table {meta.name!r} has no columns {missing}")
        scans = [self.scan(part, have) for part, have in plans]
        order: list[int] = []
        flat: list[str] = []
        for _p, have in plans:
            flat.extend(have)
        for f in wanted:
            order.append(flat.index(f))
        for parts in zip(*scans):
            row: list = []
            for tup in parts:
                row.extend(tup)
            yield tuple(row[i] for i in order)

    def iter_dicts(self, name: str, fields: Sequence[str] | None = None):
        meta = self._meta(name)
        names = list(fields) if fields is not None else list(meta.columns)
        for tup in self.scan(name, fields):
            yield dict(zip(names, tup))

    def row_count(self, name: str) -> int:
        meta = self._meta(name)
        if meta.partitions:
            return self._meta(meta.partitions[0]).row_count
        return meta.row_count

    def storage_bytes(self, name: str) -> int:
        meta = self._meta(name)
        if meta.partitions:
            return sum(self.storage_bytes(p) for p in meta.partitions)
        return os.path.getsize(meta.heap_path) if os.path.exists(meta.heap_path) else 0
