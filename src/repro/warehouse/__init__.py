"""Baseline warehouse systems for the Figure 5 comparison: a page-based row
store, a dictionary-encoded column store, a BSON document store, the ETL
pipelines that feed them, and the mediator integration layer."""

from .colstore import ColStore
from .docstore import DocStore
from .etl import (
    ETLReport,
    flatten_json_to_csv,
    load_csv_to_colstore,
    load_csv_to_rowstore,
    load_json_to_docstore,
)
from .integration import IntegrationLayer, MediatedAdapter, MediationStats
from .query import (
    Adapter,
    ColStoreAdapter,
    DocStoreAdapter,
    Filter,
    QuerySpec,
    RowStoreAdapter,
    run_spec,
)
from .rowstore import MAX_ATTRS, RowStore

__all__ = [
    "Adapter", "ColStore", "ColStoreAdapter", "DocStore", "DocStoreAdapter",
    "ETLReport", "Filter", "IntegrationLayer", "MAX_ATTRS", "MediatedAdapter",
    "MediationStats", "QuerySpec", "RowStore", "RowStoreAdapter",
    "flatten_json_to_csv", "load_csv_to_colstore", "load_csv_to_rowstore",
    "load_json_to_docstore", "run_spec",
]
