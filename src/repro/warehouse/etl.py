"""ETL pipelines for the warehouse baselines (Figure 5's "preparation" bars).

Three costs the paper measures before the baselines can answer a single
query:

- **Flattening** — normalising the hierarchical JSON dataset into CSV so an
  RDBMS can hold it. Nested records flatten to dotted columns; arrays of
  records flatten *relationally* (one output row per array element, parent
  scalars duplicated), which "is both time consuming and introduces
  additional redundancy in the data stored".
- **Loading — DBMS** — parsing CSV and building the row/column store's
  native structures (binary tuples in pages / typed columns), with vertical
  partitioning when the input exceeds the row store's attribute limit.
- **Loading — Mongo** — parsing JSON and importing BSON documents.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Sequence

from ..errors import WarehouseError
from ..formats.csvfmt import CSVOptions, CSVSource, write_csv
from ..formats.jsonfmt import JSONSource
from .colstore import ColStore
from .docstore import DocStore
from .rowstore import MAX_ATTRS, RowStore


@dataclass
class ETLReport:
    """Timing/volume record of one preparation step."""

    step: str
    seconds: float
    rows: int
    bytes: int = 0


def _flatten_object(obj, prefix: str = "") -> tuple[dict, list[tuple[str, list]]]:
    """Split an object into scalar dotted fields and record-array fields."""
    scalars: dict = {}
    arrays: list[tuple[str, list]] = []
    for key, value in obj.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            inner_scalars, inner_arrays = _flatten_object(value, name + ".")
            scalars.update(inner_scalars)
            arrays.extend(inner_arrays)
        elif isinstance(value, list):
            if value and all(isinstance(v, dict) for v in value):
                arrays.append((name, value))
            else:
                scalars[name] = json.dumps(value)
        else:
            scalars[name] = value
    return scalars, arrays


def flatten_json_to_csv(json_path: str, csv_path: str) -> ETLReport:
    """Relationally flatten a JSON dataset to CSV.

    One output row per element of the *first* record-array (parent scalars
    duplicated per row — the redundancy the paper calls out); objects with
    no record-array emit a single row. The column set is the union over all
    objects (missing values null).
    """
    start = time.perf_counter()
    source = JSONSource(json_path)

    rows: list[dict] = []
    columns: list[str] = []
    seen: set[str] = set()

    def note_columns(record: dict) -> None:
        for key in record:
            if key not in seen:
                seen.add(key)
                columns.append(key)

    for obj in source.scan_objects():
        scalars, arrays = _flatten_object(obj)
        if arrays:
            array_name, elements = arrays[0]
            # Remaining arrays (rare) serialise as JSON strings.
            for extra_name, extra in arrays[1:]:
                scalars[extra_name] = json.dumps(extra)
            for element in elements:
                element_scalars, nested = _flatten_object(element, array_name + ".")
                for nested_name, nested_value in nested:
                    element_scalars[nested_name] = json.dumps(nested_value)
                record = {**scalars, **element_scalars}
                note_columns(record)
                rows.append(record)
        else:
            note_columns(scalars)
            rows.append(scalars)

    write_csv(csv_path, columns, ([r.get(c) for c in columns] for r in rows))
    seconds = time.perf_counter() - start
    return ETLReport("flatten", seconds, len(rows), os.path.getsize(csv_path))


def load_csv_to_rowstore(store: RowStore, table: str, csv_path: str,
                         key_column: str = "id") -> ETLReport:
    """Parse a CSV file and load it into slotted pages (vertical partitioning
    applied automatically above the attribute limit)."""
    start = time.perf_counter()
    source = CSVSource(csv_path, CSVOptions())
    columns, types = source.columns, source.types
    if len(columns) > MAX_ATTRS:
        meta = store.create_partitioned(table, columns, types, key_column)
        part_specs = []
        for part in meta.partitions:
            pmeta = store.tables[part]
            part_specs.append((part, [columns.index(c) for c in pmeta.columns]))
        rows = 0
        # one parse pass, fan out to partitions
        buffers: dict[str, list] = {part: [] for part, _ in part_specs}
        for tup in source.scan(None):
            for part, idxs in part_specs:
                buffers[part].append(tuple(tup[i] for i in idxs))
            rows += 1
            if rows % 2000 == 0:
                for part, _ in part_specs:
                    store.insert_rows(part, buffers[part])
                    buffers[part] = []
        for part, _ in part_specs:
            if buffers[part]:
                store.insert_rows(part, buffers[part])
    else:
        store.create_table(table, columns, types)
        rows = store.insert_rows(table, source.scan(None))
    seconds = time.perf_counter() - start
    return ETLReport(f"load-rowstore:{table}", seconds, rows,
                     store.storage_bytes(table))


def load_csv_to_colstore(store: ColStore, table: str, csv_path: str) -> ETLReport:
    """Parse a CSV file and build typed in-memory columns for it."""
    start = time.perf_counter()
    source = CSVSource(csv_path, CSVOptions())
    store.create_table(table, source.columns, source.types)
    rows = store.insert_rows(table, source.scan(None))
    seconds = time.perf_counter() - start
    return ETLReport(f"load-colstore:{table}", seconds, rows,
                     store.storage_bytes(table))


def load_json_to_docstore(store: DocStore, collection: str, json_path: str,
                          index_paths: Sequence[str] = ("id",)) -> ETLReport:
    """Parse a JSON dataset and import it as BSON documents (+ indexes)."""
    start = time.perf_counter()
    source = JSONSource(json_path)
    store.create_collection(collection)
    rows = store.insert_many(collection, source.scan_objects())
    for path in index_paths:
        store.create_index(collection, path)
    seconds = time.perf_counter() - start
    return ETLReport(f"load-docstore:{collection}", seconds, rows,
                     store.stats(collection)["storage_bytes"])
