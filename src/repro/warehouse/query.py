"""Engine-neutral query specs + a hash-join runner for the baselines.

The Figure 5 experiment runs the *same* 150-query workload against ViDa and
against every warehouse configuration. ViDa takes comprehension text; the
baselines take these :class:`QuerySpec` objects — the neutral description a
BI tool would compile to either system. The runner implements the paper's
query template: conjunctive filters per dataset, equi-join on a shared key,
project 1–5 attributes.

Adapters wrap each engine's ``iter_dicts``; the integration layer (separate
module) wraps adapters of *different* systems with a mediation step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from ..errors import WarehouseError
from .colstore import ColStore
from .docstore import DocStore
from .rowstore import RowStore

_OPS: dict[str, Callable] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a is not None and a < b,
    "<=": lambda a, b: a is not None and a <= b,
    ">": lambda a, b: a is not None and a > b,
    ">=": lambda a, b: a is not None and a >= b,
    "in": lambda a, b: a in b,
}


@dataclass(frozen=True)
class Filter:
    field: str
    op: str
    value: object

    def matches(self, record: dict) -> bool:
        return _OPS[self.op](record.get(self.field), self.value)


@dataclass(frozen=True)
class QuerySpec:
    """One workload query: filters per source, equi-join, projection.

    ``project`` entries are (source, field, alias). ``aggregate`` optionally
    folds the projected rows: (func, alias-of-projected-field) with func in
    count/sum/avg/min/max. ``distinct`` deduplicates projected records (used
    when a baseline's flattened storage introduces row-multiplicity the
    object model does not have).
    """

    sources: tuple[str, ...]
    filters: dict[str, tuple[Filter, ...]] = field(default_factory=dict)
    join_key: str = "id"
    project: tuple[tuple[str, str, str], ...] = ()
    aggregate: tuple[str, str] | None = None
    distinct: bool = False

    def fields_needed(self, source: str) -> list[str]:
        needed = {self.join_key} if len(self.sources) > 1 else set()
        for f in self.filters.get(source, ()):
            needed.add(f.field)
        for src, fieldname, _alias in self.project:
            if src == source:
                needed.add(fieldname)
        return sorted(needed)


class Adapter:
    """Engine adapter protocol: fetch dict-records of selected fields.

    ``fetch_filtered`` pushes conjunctive filters down to the engine; the
    default applies them row-at-a-time, engines override with native
    strategies (columnar selection, tuple-level tests before dict build).
    """

    def fetch(self, fields: Sequence[str]) -> Iterator[dict]:
        raise NotImplementedError

    def fetch_filtered(self, fields: Sequence[str],
                       filters: Sequence[Filter]) -> Iterator[dict]:
        for record in self.fetch(fields):
            if all(f.matches(record) for f in filters):
                yield record


@dataclass
class RowStoreAdapter(Adapter):
    store: RowStore
    table: str

    def fetch(self, fields):
        return self.store.iter_dicts(self.table, list(fields))

    def fetch_filtered(self, fields, filters):
        """Decode tuples, test before building dicts (Volcano-with-projection)."""
        names = list(fields)
        fset = list(filters)
        pos = {f: i for i, f in enumerate(names)}
        tests = [(pos[f.field], _OPS[f.op], f.value) for f in fset if f.field in pos]
        for tup in self.store.scan(self.table, names):
            ok = True
            for i, op, value in tests:
                if not op(tup[i], value):
                    ok = False
                    break
            if ok:
                yield dict(zip(names, tup))


@dataclass
class ColStoreAdapter(Adapter):
    store: ColStore
    table: str

    def fetch(self, fields):
        return self.store.iter_dicts(self.table, list(fields))

    def fetch_filtered(self, fields, filters):
        """Column-at-a-time selection with chunk ``selection`` semantics.

        Each filter narrows one selection vector of surviving row indexes
        (``core.chunk.Chunk.selection``); an empty vector short-circuits
        before any projection column is fetched, and the uncompacted chunk
        is handed straight to the selection-aware
        :meth:`~repro.core.chunk.Chunk.iter_rows` — dropped rows can never
        resurface, and nothing materialises a dense copy (no
        ``range(row_count)`` fallback when nothing filtered).
        """
        from ..core.chunk import Chunk

        names = list(fields)
        selection: list[int] | None = None
        for f in filters:
            column = self.store.column(self.table, f.field)
            op = _OPS[f.op]
            value = f.value
            if selection is None:
                selection = [i for i, v in enumerate(column) if op(v, value)]
            else:
                selection = [i for i in selection if op(column[i], value)]
            if not selection:
                return
        cols = [self.store.column(self.table, f) for f in names]
        length = len(cols[0]) if cols else self.store.row_count(self.table)
        chunk = Chunk(tuple(names), tuple(cols), length, selection=selection)
        for values in chunk.iter_rows():
            yield dict(zip(names, values))


@dataclass
class DocStoreAdapter(Adapter):
    store: DocStore
    collection: str

    def fetch(self, fields):
        return self.store.iter_dicts(self.collection, list(fields))

    def fetch_filtered(self, fields, filters):
        """Decode each document once; filter on dotted paths, then project."""
        from ..formats.jsonfmt import get_path

        names = list(fields)
        fset = [(f.field, _OPS[f.op], f.value) for f in filters]
        for doc in self.store.find(self.collection):
            ok = True
            for path, op, value in fset:
                if not op(get_path(doc, path), value):
                    ok = False
                    break
            if ok:
                yield {f: get_path(doc, f) for f in names}


def run_spec(spec: QuerySpec, adapters: dict[str, Adapter]) -> list[dict] | dict:
    """Execute a spec: filtered scans → left-deep hash joins → projection."""
    missing = [s for s in spec.sources if s not in adapters]
    if missing:
        raise WarehouseError(f"no adapters for sources {missing}")

    current: list[dict] | None = None
    for source in spec.sources:
        filters = spec.filters.get(source, ())
        fields = spec.fields_needed(source)
        rows = list(adapters[source].fetch_filtered(fields, filters))
        tagged = [(source, r) for r in rows]
        if current is None:
            current = [dict(_prefix(source, r)) for r in rows]
        else:
            table: dict = {}
            for row in current:
                table.setdefault(row.get(spec.join_key), []).append(row)
            joined: list[dict] = []
            for source_name, record in tagged:
                for match in table.get(record.get(spec.join_key), ()):
                    merged = dict(match)
                    merged.update(_prefix(source_name, record))
                    merged[spec.join_key] = record.get(spec.join_key)
                    joined.append(merged)
            current = joined
    assert current is not None

    projected: list[dict] = []
    for row in current:
        out = {}
        for source, fieldname, alias in spec.project:
            key = f"{source}.{fieldname}" if len(spec.sources) > 1 else fieldname
            out[alias] = row.get(key, row.get(fieldname))
        projected.append(out)

    if spec.distinct:
        seen: set = set()
        unique: list[dict] = []
        for row in projected:
            key = tuple(sorted(row.items()))
            if key not in seen:
                seen.add(key)
                unique.append(row)
        projected = unique

    if spec.aggregate is not None:
        func, alias = spec.aggregate
        values = [r.get(alias) for r in projected if r.get(alias) is not None]
        if func == "count":
            return {"count": len(projected)}
        if not values:
            return {func: None}
        if func == "sum":
            return {"sum": sum(values)}
        if func == "avg":
            return {"avg": sum(values) / len(values)}
        if func == "min":
            return {"min": min(values)}
        if func == "max":
            return {"max": max(values)}
        raise WarehouseError(f"unknown aggregate {func!r}")
    return projected


def _prefix(source: str, record: dict) -> dict:
    return {f"{source}.{k}": v for k, v in record.items()} | {
        k: v for k, v in record.items()
    }
