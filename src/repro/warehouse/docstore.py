"""Document-store baseline ("Mongo" in Figure 5; MongoDB's role).

Collections of BSON-encoded documents with power-of-two record allocation —
the two mechanisms behind the paper's observation that "the imported JSON
data reached 12GB (twice the space of the raw JSON dataset)": BSON repeats
every field name in every document and adds fixed-width tags/lengths, and
Mongo's (2.x era) storage allocated each record a power-of-two slot to
leave room for growth.

Queries decode per document (find with a predicate over dotted paths),
optionally served by a hash index on one path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from ..errors import WarehouseError
from ..formats.jsonfmt import bson, get_path


#: on-disk record header (Mongo 2.x record: length, extent links) plus the
#: implicit ``_id`` ObjectId element (tag + name + 12 bytes) every imported
#: document gains; accounted in storage, not added to query-visible docs.
RECORD_OVERHEAD_BYTES = 16 + 17


def _pow2_slot(nbytes: int) -> int:
    slot = 32
    while slot < nbytes:
        slot <<= 1
    return slot


@dataclass
class Collection:
    name: str
    documents: list[bytes] = field(default_factory=list)
    storage_bytes: int = 0       # allocated (power-of-two slots)
    payload_bytes: int = 0       # actual BSON bytes
    indexes: dict[str, dict] = field(default_factory=dict)  # path → value → [docidx]


class DocStore:
    """A BSON document store with per-collection hash indexes."""

    def __init__(self):
        self.collections: dict[str, Collection] = {}

    def create_collection(self, name: str) -> Collection:
        if name in self.collections:
            raise WarehouseError(f"collection {name!r} already exists")
        coll = Collection(name)
        self.collections[name] = coll
        return coll

    def drop_collection(self, name: str) -> None:
        if name not in self.collections:
            raise WarehouseError(f"no collection {name!r}")
        del self.collections[name]

    def _coll(self, name: str) -> Collection:
        try:
            return self.collections[name]
        except KeyError:
            raise WarehouseError(
                f"no collection {name!r}; have: {', '.join(sorted(self.collections))}"
            ) from None

    # -- loading -----------------------------------------------------------

    def insert_many(self, name: str, documents: Iterable[dict]) -> int:
        """Encode and store documents (the paper's time/space-heavy import)."""
        coll = self._coll(name)
        count = 0
        for doc in documents:
            blob = bson.encode(doc)
            idx = len(coll.documents)
            coll.documents.append(blob)
            coll.payload_bytes += len(blob)
            coll.storage_bytes += _pow2_slot(len(blob) + RECORD_OVERHEAD_BYTES)
            for path, index in coll.indexes.items():
                index.setdefault(get_path(doc, path), []).append(idx)
            count += 1
        return count

    def create_index(self, name: str, path: str) -> None:
        """Build a hash index on a dotted path (like Mongo's secondary index)."""
        coll = self._coll(name)
        index: dict = {}
        for i, blob in enumerate(coll.documents):
            doc = bson.decode(blob)
            index.setdefault(get_path(doc, path), []).append(i)
        coll.indexes[path] = index

    # -- querying -----------------------------------------------------------

    def find(
        self,
        name: str,
        predicate: Callable[[dict], bool] | None = None,
        eq: tuple[str, object] | None = None,
    ) -> Iterator[dict]:
        """Yield decoded documents; ``eq=(path, value)`` may use an index."""
        coll = self._coll(name)
        if eq is not None and eq[0] in coll.indexes:
            for i in coll.indexes[eq[0]].get(eq[1], ()):
                doc = bson.decode(coll.documents[i])
                if predicate is None or predicate(doc):
                    yield doc
            return
        for blob in coll.documents:
            doc = bson.decode(blob)
            if eq is not None and get_path(doc, eq[0]) != eq[1]:
                continue
            if predicate is None or predicate(doc):
                yield doc

    def iter_dicts(self, name: str, fields: Sequence[str] | None = None):
        """Project dotted paths out of each document (decode-per-doc cost)."""
        for doc in self.find(name):
            if fields is None:
                yield doc
            else:
                yield {f: get_path(doc, f) for f in fields}

    def count(self, name: str) -> int:
        return len(self._coll(name).documents)

    def stats(self, name: str) -> dict:
        coll = self._coll(name)
        return {
            "count": len(coll.documents),
            "payload_bytes": coll.payload_bytes,
            "storage_bytes": coll.storage_bytes,
            "indexes": sorted(coll.indexes),
        }
