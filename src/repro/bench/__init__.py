"""Benchmark harness utilities (reporting)."""

from .report import emit, reset_log, table

__all__ = ["emit", "reset_log", "table"]
