"""Benchmark reporting: paper-shape tables that survive pytest capture.

Benchmarks print the rows/series the paper reports (Table 2, Figure 5 bars,
the §6 in-text claims). pytest captures stdout, so :func:`emit` writes to
the *real* stdout (``sys.__stdout__``) and mirrors everything into a log
file (``benchmarks/results_last_run.txt`` by default, override with the
``VIDA_BENCH_LOG`` environment variable).
"""

from __future__ import annotations

import os
import sys
from typing import Sequence

_DEFAULT_LOG = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))), "benchmarks",
    "results_last_run.txt")


def _log_path() -> str:
    return os.environ.get("VIDA_BENCH_LOG", _DEFAULT_LOG)


def emit(title: str, lines: Sequence[str]) -> None:
    """Print a titled block to the real stdout and append it to the log."""
    block = [f"", f"=== {title} ===", *lines]
    text = "\n".join(block)
    print(text, file=sys.__stdout__, flush=True)
    try:
        with open(_log_path(), "a", encoding="utf-8") as fh:
            fh.write(text + "\n")
    except OSError:
        pass  # logging is best-effort; the console copy is authoritative


def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> list[str]:
    """Format an aligned text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return lines


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def reset_log() -> None:
    """Truncate the log file (called once per benchmark session)."""
    try:
        with open(_log_path(), "w", encoding="utf-8") as fh:
            fh.write("")
    except OSError:
        pass
