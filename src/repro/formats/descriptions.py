"""Source description grammar (paper Section 3.1).

ViDa requires "an elementary description of each data format — the
equivalent concept in a DBMS is a catalog containing the schema of each
table". A description captures:

1. the **schema** of the raw dataset,
2. the **unit** of data retrieved per access (element / row / column /
   chunk / object / tuple),
3. the **access paths** the format exposes (sequential, positional via an
   auxiliary index, rowid, value index).

The grammar accepts the paper's example syntax::

    Array(Dim(i, int), Dim(j, int), Att(val))
    val = Record(Att(elevation, float), Att(temperature, float))

plus ``Record(...)``, ``Bag/Set/List(...)``, and primitive names. Named
definitions (``name = typeexpr``) resolve references of attributes declared
without an inline type.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import ParseError
from ..mcc import types as T

#: the canonical null tokens raw-text conversion tests against, shared by
#: the CSV plugin and the query runtime (one definition, imported everywhere)
NULL_TOKENS = frozenset(["", "null", "NULL", "NA", "N/A", "\\N"])

#: units of data an access path may return (paper §3.1 discussion)
UNITS = ("element", "row", "column", "chunk", "object", "tuple", "page", "cell")

#: access-path kinds a source may expose
ACCESS_PATHS = ("sequential", "positional", "rowid", "index")


@dataclass(frozen=True)
class SourceDescription:
    """A registered raw dataset's catalog entry."""

    name: str
    format: str                       # csv | json | array | xls | dbms | memory
    schema: T.Type                    # collection/array type of the whole source
    unit: str = "row"
    access_paths: tuple[str, ...] = ("sequential",)
    path: str | None = None           # backing file, when there is one
    options: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.unit not in UNITS:
            raise ParseError(f"unknown unit {self.unit!r}; choose from {UNITS}")
        for ap in self.access_paths:
            if ap not in ACCESS_PATHS:
                raise ParseError(f"unknown access path {ap!r}; choose from {ACCESS_PATHS}")

    @property
    def element_type(self) -> T.Type:
        """The type a generator variable binds to when ranging over this source."""
        schema = self.schema
        if isinstance(schema, T.CollectionType):
            return schema.elem
        if isinstance(schema, T.ArrayType):
            fields = tuple((d.name, d.type) for d in schema.dims)
            if isinstance(schema.elem, T.RecordType):
                fields += schema.elem.fields
            else:
                fields += (("value", schema.elem),)
            return T.RecordType(fields)
        return schema


# ---------------------------------------------------------------------------
# Grammar: tokenizer + recursive-descent parser for type expressions
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*|[(),=])")

_PRIMITIVES = {"int": T.INT, "float": T.FLOAT, "bool": T.BOOL,
               "string": T.STRING, "str": T.STRING, "null": T.NULL, "any": T.ANY}


class _DescParser:
    def __init__(self, text: str):
        self.tokens: list[str] = []
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if not m:
                if text[pos:].strip():
                    raise ParseError(f"bad description syntax near {text[pos:pos+20]!r}")
                break
            self.tokens.append(m.group(1))
            pos = m.end()
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def advance(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of description")
        self.pos += 1
        return tok

    def expect(self, token: str) -> None:
        tok = self.advance()
        if tok != token:
            raise ParseError(f"expected {token!r} in description, found {tok!r}")

    def type_expr(self, definitions: dict[str, T.Type]) -> T.Type:
        tok = self.advance()
        lowered = tok.lower()
        if lowered in _PRIMITIVES:
            return _PRIMITIVES[lowered]
        if lowered == "record":
            return self._record(definitions)
        if lowered == "array":
            return self._array(definitions)
        if lowered in ("bag", "set", "list"):
            self.expect("(")
            elem = self.type_expr(definitions)
            self.expect(")")
            return T.CollectionType(lowered, elem)
        if tok in definitions:
            return definitions[tok]
        raise ParseError(f"unknown type name {tok!r} in description")

    def _record(self, definitions: dict[str, T.Type]) -> T.RecordType:
        self.expect("(")
        fields: list[tuple[str, T.Type]] = []
        while True:
            kw = self.advance()
            if kw.lower() != "att":
                raise ParseError(f"expected Att(...) in Record, found {kw!r}")
            fields.append(self._att(definitions))
            nxt = self.advance()
            if nxt == ")":
                break
            if nxt != ",":
                raise ParseError(f"expected ',' or ')' in Record, found {nxt!r}")
        return T.RecordType(tuple(fields))

    def _att(self, definitions: dict[str, T.Type]) -> tuple[str, T.Type]:
        self.expect("(")
        name = self.advance()
        nxt = self.advance()
        if nxt == ")":
            # untyped attribute: resolved from a named definition or ANY
            return (name, definitions.get(name, T.ANY))
        if nxt != ",":
            raise ParseError(f"expected ',' or ')' in Att, found {nxt!r}")
        ftype = self.type_expr(definitions)
        self.expect(")")
        return (name, ftype)

    def _array(self, definitions: dict[str, T.Type]) -> T.ArrayType:
        self.expect("(")
        dims: list[T.Dim] = []
        elem: T.Type | None = None
        elem_name: str | None = None
        while True:
            kw = self.advance()
            if kw.lower() == "dim":
                self.expect("(")
                dname = self.advance()
                self.expect(",")
                dtype = self.type_expr(definitions)
                self.expect(")")
                dims.append(T.Dim(dname, dtype))
            elif kw.lower() == "att":
                name, ftype = self._att(definitions)
                elem = ftype
                elem_name = name
            else:
                raise ParseError(f"expected Dim/Att in Array, found {kw!r}")
            nxt = self.advance()
            if nxt == ")":
                break
            if nxt != ",":
                raise ParseError(f"expected ',' or ')' in Array, found {nxt!r}")
        if not dims:
            raise ParseError("Array needs at least one Dim(...)")
        if elem is None:
            raise ParseError("Array needs an Att(...) element declaration")
        if elem is T.ANY and elem_name and elem_name in definitions:
            elem = definitions[elem_name]
        return T.ArrayType(tuple(dims), elem)


def parse_description(text: str) -> T.Type:
    """Parse a (possibly multi-line) source description into a type.

    The first line is the top-level type; subsequent ``name = typeexpr``
    lines define named types referenced by untyped ``Att(name)`` entries.

    >>> t = parse_description('''
    ...     Array(Dim(i, int), Dim(j, int), Att(val))
    ...     val = Record(Att(elevation, float), Att(temperature, float))
    ... ''')
    >>> t.rank
    2
    """
    lines = [ln.strip() for ln in text.strip().splitlines() if ln.strip()]
    if not lines:
        raise ParseError("empty source description")
    definitions: dict[str, T.Type] = {}
    # Named definitions may appear after first use (as in the paper's
    # example), so parse them first.
    for line in lines[1:]:
        if "=" not in line:
            raise ParseError(f"expected 'name = typeexpr', found {line!r}")
        name, _, rhs = line.partition("=")
        definitions[name.strip()] = _DescParser(rhs).type_expr(definitions)
    return _DescParser(lines[0]).type_expr(definitions)


def describe_type(t: T.Type) -> str:
    """Inverse of :func:`parse_description` for simple types (round-trips)."""
    if isinstance(t, T.PrimitiveType):
        return t.name
    if isinstance(t, T.AnyType):
        return "any"
    if isinstance(t, T.RecordType):
        atts = ", ".join(f"Att({n}, {describe_type(ft)})" for n, ft in t.fields)
        return f"Record({atts})"
    if isinstance(t, T.CollectionType):
        return f"{t.kind.capitalize()}({describe_type(t.elem)})"
    if isinstance(t, T.ArrayType):
        dims = ", ".join(f"Dim({d.name}, {describe_type(d.type)})" for d in t.dims)
        return f"Array({dims}, Att(val, {describe_type(t.elem)}))"
    raise ParseError(f"cannot describe type {t}")
