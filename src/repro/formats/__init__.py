"""Raw-format substrates: one subpackage per file format, each exposing a
ViDa *input plugin* (paper Figure 3), plus the source-description grammar
and schema learning for unknown files.
"""

from .arrayfmt import ArraySource, write_array
from .csvfmt import CSVOptions, CSVSource, PositionalMap, write_csv
from .descriptions import SourceDescription, describe_type, parse_description
from .inference import detect_format, learn_description, sniff_delimiter
from .jsonfmt import JSONSemiIndex, JSONSource, ObjectSpan, bson, get_path
from .xlsfmt import XLSSource, write_workbook

__all__ = [
    "ArraySource", "CSVOptions", "CSVSource", "JSONSemiIndex", "JSONSource",
    "ObjectSpan", "PositionalMap", "SourceDescription", "bson",
    "describe_type", "detect_format", "get_path", "learn_description",
    "parse_description", "sniff_delimiter", "write_array", "write_csv",
    "write_workbook",
]
