"""Schema learning for files without a description (paper §3.1).

"To support arbitrary data formats with unknown a priori schemas, we design
ViDa flexible enough to support additional formats if their description can
be obtained through schema learning tools [LearnPADS]." This module is that
tool, simplified: it detects the format of an unknown file, infers its
schema, and emits a :class:`~repro.formats.descriptions.SourceDescription`.

Detection heuristics: magic bytes for the binary formats, first
non-whitespace byte for JSON, and delimiter-consistency scoring for CSV.
"""

from __future__ import annotations

import os

from ..errors import DataFormatError
from ..mcc import types as T
from .arrayfmt import ArraySource
from .arrayfmt.plugin import MAGIC as ARRAY_MAGIC
from .csvfmt import CSVOptions, CSVSource
from .descriptions import SourceDescription
from .jsonfmt import JSONSource
from .xlsfmt import XLSSource
from .xlsfmt.plugin import MAGIC as XLS_MAGIC

_CANDIDATE_DELIMITERS = (",", "\t", ";", "|")


def detect_format(path: str | os.PathLike) -> str:
    """Classify a file as csv / json / array / xls by content inspection."""
    path = os.fspath(path)
    with open(path, "rb") as fh:
        head = fh.read(4096)
    if not head:
        raise DataFormatError(f"{path}: empty file, cannot detect format")
    if head[:4] == ARRAY_MAGIC:
        return "array"
    if head[:4] == XLS_MAGIC:
        return "xls"
    stripped = head.lstrip()
    if stripped[:1] in (b"{", b"["):
        return "json"
    return "csv"


def sniff_delimiter(path: str | os.PathLike, sample_lines: int = 20) -> str:
    """Pick the delimiter whose per-line count is most consistent and > 0."""
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        lines = []
        for _ in range(sample_lines):
            line = fh.readline()
            if not line:
                break
            if line.strip():
                lines.append(line.rstrip("\n"))
    if not lines:
        raise DataFormatError(f"{path}: no content to sniff")
    best = ","
    best_score = -1.0
    for delim in _CANDIDATE_DELIMITERS:
        counts = [line.count(delim) for line in lines]
        if min(counts) == 0:
            continue
        spread = max(counts) - min(counts)
        score = min(counts) - spread * 2
        if score > best_score:
            best_score = score
            best = delim
    return best


def learn_description(path: str | os.PathLike, name: str | None = None) -> SourceDescription:
    """Infer a full catalog entry for an unknown file.

    >>> # doctest illustration; exercised in tests with real temp files
    """
    path = os.fspath(path)
    fmt = detect_format(path)
    src_name = name or os.path.splitext(os.path.basename(path))[0]
    if fmt == "csv":
        delim = sniff_delimiter(path)
        source = CSVSource(path, CSVOptions(delimiter=delim))
        return SourceDescription(
            name=src_name, format="csv", schema=source.schema(), unit="row",
            access_paths=("sequential", "positional"), path=path,
            options={"delimiter": delim, "header": True},
        )
    if fmt == "json":
        source = JSONSource(path)
        return SourceDescription(
            name=src_name, format="json", schema=source.schema(), unit="object",
            access_paths=("sequential", "positional"), path=path,
        )
    if fmt == "array":
        arr = ArraySource(path)
        return SourceDescription(
            name=src_name, format="array", schema=arr.schema(), unit="element",
            access_paths=("sequential", "positional"), path=path,
        )
    if fmt == "xls":
        wb = XLSSource(path)
        first_sheet = wb.sheet_names()[0]
        return SourceDescription(
            name=src_name, format="xls", schema=wb.schema(first_sheet), unit="row",
            access_paths=("sequential",), path=path, options={"sheet": first_sheet},
        )
    raise DataFormatError(f"{path}: unsupported format {fmt!r}")
