"""XLS-like binary workbook raw-format substrate."""

from .plugin import SheetInfo, XLSSource, write_workbook

__all__ = ["SheetInfo", "XLSSource", "write_workbook"]
