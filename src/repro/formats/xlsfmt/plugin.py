"""XLS-like binary workbook format ("VXLS").

The ViDa prototype "supports queries over JSON, CSV, XLS, ROOT, and files
containing binary arrays" (paper §6). Real XLS is a compound OLE container;
this module implements a structurally analogous binary workbook — multiple
named sheets of typed cells in a single binary file — so the engine
demonstrates a third distinct tabular wire format with its own plugin.

Layout::

    magic 'VXLS' | version u16 | nsheets u16
    per sheet:
      name (u8 len + bytes) | ncols u16 | colname (u8 len + bytes)[ncols]
      | nrows u32 | rows

    row  := cell[ncols]
    cell := tag u8 + payload   (0 null | 1 int64 | 2 float64 | 3 bool
                                | 4 utf-8 string with u16 length)
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import Iterator, Sequence

from ...errors import DataFormatError
from ...mcc import types as T
from ...storage.io import RawFile

MAGIC = b"VXLS"
VERSION = 1

_TAG_NULL, _TAG_INT, _TAG_FLOAT, _TAG_BOOL, _TAG_STR = range(5)
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")


def _encode_cell(value) -> bytes:
    if value is None:
        return bytes([_TAG_NULL])
    if isinstance(value, bool):
        return bytes([_TAG_BOOL, 1 if value else 0])
    if isinstance(value, int):
        return bytes([_TAG_INT]) + _I64.pack(value)
    if isinstance(value, float):
        return bytes([_TAG_FLOAT]) + _F64.pack(value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return bytes([_TAG_STR]) + _U16.pack(len(raw)) + raw
    raise DataFormatError(f"cannot store {type(value).__name__} in a VXLS cell")


def _decode_cell(data: bytes, pos: int):
    tag = data[pos]
    pos += 1
    if tag == _TAG_NULL:
        return None, pos
    if tag == _TAG_BOOL:
        return data[pos] == 1, pos + 1
    if tag == _TAG_INT:
        return _I64.unpack_from(data, pos)[0], pos + 8
    if tag == _TAG_FLOAT:
        return _F64.unpack_from(data, pos)[0], pos + 8
    if tag == _TAG_STR:
        (length,) = _U16.unpack_from(data, pos)
        pos += 2
        return data[pos:pos + length].decode("utf-8"), pos + length
    raise DataFormatError(f"bad VXLS cell tag {tag}")


def _write_name(buf: bytearray, name: str) -> None:
    raw = name.encode("utf-8")
    if len(raw) > 255:
        raise DataFormatError(f"name too long for VXLS: {name!r}")
    buf += struct.pack("<B", len(raw)) + raw


def write_workbook(
    path: str | os.PathLike,
    sheets: Sequence[tuple[str, Sequence[str], Sequence[Sequence[object]]]],
) -> int:
    """Write sheets as ``(sheet_name, column_names, rows)`` triples."""
    buf = bytearray()
    buf += MAGIC
    buf += struct.pack("<HH", VERSION, len(sheets))
    for name, columns, rows in sheets:
        _write_name(buf, name)
        buf += _U16.pack(len(columns))
        for col in columns:
            _write_name(buf, col)
        rows = list(rows)
        buf += _U32.pack(len(rows))
        for row in rows:
            if len(row) != len(columns):
                raise DataFormatError(
                    f"sheet {name!r}: row of {len(row)} cells, expected {len(columns)}"
                )
            for cell in row:
                buf += _encode_cell(cell)
    with open(path, "wb") as fh:
        fh.write(buf)
    return len(buf)


@dataclass(frozen=True)
class SheetInfo:
    name: str
    columns: tuple[str, ...]
    nrows: int
    data_offset: int


class XLSSource:
    """One VXLS workbook; each sheet is addressable as a table source."""

    format_name = "xls"

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self.sheets: dict[str, SheetInfo] = {}
        self._load_directory()

    def _load_directory(self) -> None:
        with open(self.path, "rb") as fh:
            data = fh.read()
        if data[:4] != MAGIC:
            raise DataFormatError(f"{self.path}: not a VXLS file")
        version, nsheets = struct.unpack_from("<HH", data, 4)
        if version != VERSION:
            raise DataFormatError(f"{self.path}: unsupported VXLS version {version}")
        pos = 8
        for _ in range(nsheets):
            nlen = data[pos]
            pos += 1
            name = data[pos:pos + nlen].decode("utf-8")
            pos += nlen
            (ncols,) = _U16.unpack_from(data, pos)
            pos += 2
            columns = []
            for _c in range(ncols):
                clen = data[pos]
                pos += 1
                columns.append(data[pos:pos + clen].decode("utf-8"))
                pos += clen
            (nrows,) = _U32.unpack_from(data, pos)
            pos += 4
            info = SheetInfo(name, tuple(columns), nrows, pos)
            self.sheets[name] = info
            # skip over the rows to find the next sheet
            for _r in range(nrows):
                for _c in range(ncols):
                    _value, pos = _decode_cell(data, pos)

    def sheet_names(self) -> list[str]:
        return list(self.sheets)

    def element_type(self, sheet: str) -> T.RecordType:
        info = self._sheet(sheet)
        # Cells are dynamically typed per row; expose ANY per column and let
        # inference refine (matches how spreadsheets actually behave).
        return T.RecordType(tuple((c, T.ANY) for c in info.columns))

    def schema(self, sheet: str) -> T.CollectionType:
        return T.bag_of(self.element_type(sheet))

    def _sheet(self, sheet: str) -> SheetInfo:
        try:
            return self.sheets[sheet]
        except KeyError:
            raise DataFormatError(
                f"{self.path}: no sheet {sheet!r}; available: {', '.join(self.sheets)}"
            ) from None

    def scan(self, sheet: str, fields: Sequence[str] | None = None,
             device=None) -> Iterator[tuple]:
        """Yield tuples for ``fields`` (None = all columns) from one sheet."""
        info = self._sheet(sheet)
        if fields is None:
            indexes = list(range(len(info.columns)))
        else:
            col_index = {c: i for i, c in enumerate(info.columns)}
            try:
                indexes = [col_index[f] for f in fields]
            except KeyError as exc:
                raise DataFormatError(
                    f"sheet {sheet!r}: unknown column {exc.args[0]!r}"
                ) from None
        with RawFile(self.path, device=device) as raw:
            data = raw.read()
        pos = info.data_offset
        for _r in range(info.nrows):
            row = []
            for _c in range(len(info.columns)):
                value, pos = _decode_cell(data, pos)
                row.append(value)
            yield tuple(row[i] for i in indexes)

    def scan_batches(
        self, sheet: str, fields: Sequence[str] | None = None,
        batch_size: int = 1024, device=None,
    ) -> Iterator[list[tuple]]:
        """Decode rows sequentially, crossing the plugin boundary in batches.

        Cells are tagged and variable-width, so decoding cannot be
        vectorized; batching the generator handoff is still worth it.
        """
        from ...core.chunk import chunked

        yield from chunked(self.scan(sheet, fields, device=device), batch_size)

    def scan_chunks(
        self, sheet: str, fields: Sequence[str] | None = None,
        batch_size: int = 1024, device=None, whole: bool = False,
    ):
        """Batched scan yielding :class:`~repro.core.chunk.Chunk` objects."""
        from ...core.chunk import Chunk

        info = self._sheet(sheet)
        field_list = list(fields) if fields is not None else list(info.columns)
        # whole-record binding needs every column; project afterwards
        read_fields = list(info.columns) if whole else field_list
        picks = [read_fields.index(f) for f in field_list]
        for batch in self.scan_batches(sheet, read_fields, batch_size,
                                       device=device):
            if not picks and not whole:
                yield Chunk((), (), len(batch))
                continue
            columns = [[t[i] for t in batch] for i in picks]
            whole_rows = [dict(zip(read_fields, t)) for t in batch] if whole else None
            yield Chunk.from_columns(field_list, columns, whole=whole_rows)
