"""Binary array (ROOT/FITS/NetCDF-like) raw-format substrate."""

from .plugin import ArrayHeader, ArraySource, read_header, write_array

__all__ = ["ArrayHeader", "ArraySource", "read_header", "write_array"]
