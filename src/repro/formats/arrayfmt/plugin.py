"""Binary array format: a ROOT/FITS/NetCDF-style scientific container.

The paper's running description example (§3.1) is an array file::

    Array(Dim(i, int), Dim(j, int), Att(val))
    val = Record(Att(elevation, float), Att(temperature, float))

This module defines a self-describing binary container ("VARR") holding one
such dense, row-major array of fixed-width records, and a plugin exposing
the access units the paper enumerates: single **element**, matrix **row**,
matrix **column**, and **n×m chunk**.

File layout::

    magic 'VARR' | version u16 | rank u16 | dim sizes u32[rank]
    | nfields u16 | (name_len u8, name, type_code u8)[nfields]
    | payload: row-major elements, fields packed in declared order

Type codes: 0 = int64, 1 = float64, 2 = bool(1 byte).
"""

from __future__ import annotations

import itertools
import os
import struct
from dataclasses import dataclass
from typing import Iterator, Sequence

from ...errors import DataFormatError
from ...mcc import types as T
from ...storage.io import RawFile

MAGIC = b"VARR"
VERSION = 1

_TYPE_CODES = {"int": 0, "float": 1, "bool": 2}
_CODE_TYPES = {v: k for k, v in _TYPE_CODES.items()}
_TYPE_STRUCT = {"int": struct.Struct("<q"), "float": struct.Struct("<d"),
                "bool": struct.Struct("<?")}
_PRIM = {"int": T.INT, "float": T.FLOAT, "bool": T.BOOL}


@dataclass(frozen=True)
class ArrayHeader:
    dims: tuple[int, ...]
    fields: tuple[tuple[str, str], ...]  # (name, type-name)
    payload_offset: int

    @property
    def element_size(self) -> int:
        return sum(_TYPE_STRUCT[t].size for _n, t in self.fields)

    @property
    def element_count(self) -> int:
        count = 1
        for d in self.dims:
            count *= d
        return count


def write_array(
    path: str | os.PathLike,
    dims: Sequence[int],
    fields: Sequence[tuple[str, str]],
    values: Iterator[tuple] | Sequence[tuple],
) -> int:
    """Write a dense array file; ``values`` yields one tuple per element in
    row-major order. Returns bytes written."""
    for _name, tname in fields:
        if tname not in _TYPE_CODES:
            raise DataFormatError(f"unsupported array field type {tname!r}")
    header = bytearray()
    header += MAGIC
    header += struct.pack("<HH", VERSION, len(dims))
    for d in dims:
        header += struct.pack("<I", d)
    header += struct.pack("<H", len(fields))
    for name, tname in fields:
        raw = name.encode("utf-8")
        header += struct.pack("<B", len(raw)) + raw + struct.pack("<B", _TYPE_CODES[tname])
    expected = 1
    for d in dims:
        expected *= d
    structs = [_TYPE_STRUCT[t] for _n, t in fields]
    written = 0
    count = 0
    with open(path, "wb") as fh:
        fh.write(header)
        written += len(header)
        for tup in values:
            if len(tup) != len(fields):
                raise DataFormatError(
                    f"element {count}: expected {len(fields)} fields, got {len(tup)}"
                )
            for st, v in zip(structs, tup):
                fh.write(st.pack(v))
            written += sum(st.size for st in structs)
            count += 1
    if count != expected:
        raise DataFormatError(f"wrote {count} elements, dims require {expected}")
    return written


def read_header(path: str | os.PathLike) -> ArrayHeader:
    with open(path, "rb") as fh:
        magic = fh.read(4)
        if magic != MAGIC:
            raise DataFormatError(f"{path}: not a VARR file (magic {magic!r})")
        version, rank = struct.unpack("<HH", fh.read(4))
        if version != VERSION:
            raise DataFormatError(f"{path}: unsupported VARR version {version}")
        dims = tuple(struct.unpack("<I", fh.read(4))[0] for _ in range(rank))
        (nfields,) = struct.unpack("<H", fh.read(2))
        fields = []
        for _ in range(nfields):
            (nlen,) = struct.unpack("<B", fh.read(1))
            name = fh.read(nlen).decode("utf-8")
            (code,) = struct.unpack("<B", fh.read(1))
            fields.append((name, _CODE_TYPES[code]))
        return ArrayHeader(dims, tuple(fields), fh.tell())


class ArraySource:
    """One VARR file exposed as a dimensioned array source."""

    format_name = "array"

    def __init__(self, path: str | os.PathLike, dim_names: Sequence[str] | None = None):
        self.path = os.fspath(path)
        self.header = read_header(self.path)
        self.dim_names = list(dim_names) if dim_names else [
            f"d{i}" for i in range(len(self.header.dims))
        ]
        if len(self.dim_names) != len(self.header.dims):
            raise DataFormatError(
                f"{self.path}: {len(self.header.dims)} dims but "
                f"{len(self.dim_names)} dim names"
            )
        self._structs = [_TYPE_STRUCT[t] for _n, t in self.header.fields]
        self._field_offsets: list[int] = []
        pos = 0
        for st in self._structs:
            self._field_offsets.append(pos)
            pos += st.size
        # one fused struct decoding a whole element; standard ('<') sizes
        # have no padding, so iter_unpack walks the payload element-by-element
        _CODES = {"int": "q", "float": "d", "bool": "?"}
        self._element_struct = struct.Struct(
            "<" + "".join(_CODES[t] for _n, t in self.header.fields)
        )

    # -- schema ---------------------------------------------------------------

    def schema(self) -> T.ArrayType:
        dims = tuple(T.Dim(n, T.INT) for n in self.dim_names)
        elem = T.RecordType(tuple((n, _PRIM[t]) for n, t in self.header.fields))
        return T.ArrayType(dims, elem)

    def element_type(self) -> T.RecordType:
        """Iteration binds records of (dim coords..., field values...)."""
        fields = tuple((n, T.INT) for n in self.dim_names)
        fields += tuple((n, _PRIM[t]) for n, t in self.header.fields)
        return T.RecordType(fields)

    # -- offsets ---------------------------------------------------------------

    def _linear_index(self, coords: Sequence[int]) -> int:
        dims = self.header.dims
        if len(coords) != len(dims):
            raise DataFormatError(
                f"rank-{len(dims)} array indexed with {len(coords)} coords"
            )
        idx = 0
        for c, d in zip(coords, dims):
            if not 0 <= c < d:
                raise DataFormatError(f"index {c} out of bounds for dim of size {d}")
            idx = idx * d + c
        return idx

    def element_offset(self, coords: Sequence[int]) -> int:
        return self.header.payload_offset + self._linear_index(coords) * self.header.element_size

    # -- access paths (units: element / row / column / chunk) -----------------

    def read_element(self, coords: Sequence[int], device=None) -> tuple:
        with RawFile(self.path, device=device) as raw:
            payload = raw.read_at(self.element_offset(coords), self.header.element_size)
        return self._unpack(payload, 0)

    def _unpack(self, data: bytes, offset: int) -> tuple:
        return tuple(
            st.unpack_from(data, offset + off)[0]
            for st, off in zip(self._structs, self._field_offsets)
        )

    def scan(self, device=None) -> Iterator[tuple]:
        """Row-major full scan yielding (coords..., fields...) tuples."""
        esize = self.header.element_size
        dims = self.header.dims
        with RawFile(self.path, device=device) as raw:
            raw.seek(self.header.payload_offset)
            for coords in itertools.product(*(range(d) for d in dims)):
                payload = raw.read(esize)
                if len(payload) != esize:
                    raise DataFormatError(f"{self.path}: truncated array payload")
                yield coords + self._unpack(payload, 0)

    def scan_splits(self, dop: int) -> list:
        """Independently scannable morsels: linear element ranges.

        Fixed-width elements make the split exact — a worker seeks straight
        to ``payload_offset + lo × element_size``.
        """
        from ...core.chunk import split_ranges

        return split_ranges(self.header.element_count, dop, "elements")

    def scan_batches(self, batch_size: int = 1024, device=None,
                     element_range: tuple[int, int] | None = None) -> Iterator[list[tuple]]:
        """Row-major scan decoding ``batch_size`` elements per read.

        Each yielded batch is a list of ``(coords..., fields...)`` tuples;
        the fused element struct's ``iter_unpack`` decodes the whole batch
        at C speed instead of one ``read``+unpack round-trip per element.
        ``element_range`` restricts the pass to elements ``[lo, hi)``.
        """
        esize = self.header.element_size
        dims = self.header.dims
        lo, hi = element_range if element_range is not None \
            else (0, self.header.element_count)
        hi = min(hi, self.header.element_count)
        if lo >= hi:
            return
        remaining = hi - lo
        if lo and dims:
            # start the (C-speed) coordinate product at lo's first-dim
            # block and discard only the within-block prefix — never O(lo)
            stride0 = 1
            for d in dims[1:]:
                stride0 *= d
            first = lo // stride0
            coords_iter = itertools.product(
                range(first, dims[0]), *(range(d) for d in dims[1:])
            )
            coords_iter = itertools.islice(coords_iter, lo - first * stride0,
                                           None)
        else:
            coords_iter = itertools.product(*(range(d) for d in dims))
        unpack_all = self._element_struct.iter_unpack
        with RawFile(self.path, device=device) as raw:
            raw.seek(self.header.payload_offset + lo * esize)
            while remaining > 0:
                n = min(batch_size, remaining)
                payload = raw.read(esize * n)
                if len(payload) != esize * n:
                    raise DataFormatError(f"{self.path}: truncated array payload")
                yield [c + v for v, c in zip(unpack_all(payload), coords_iter)]
                remaining -= n

    def scan_chunks(
        self,
        fields: Sequence[str] | None = None,
        batch_size: int = 1024,
        device=None,
        whole: bool = False,
        split=None,
        stats_sink=None,
    ):
        """Batched scan yielding :class:`~repro.core.chunk.Chunk` objects.

        ``fields`` may name dimensions or element attributes; ``whole``
        additionally materialises full record dicts on ``chunk.whole``.
        ``split`` restricts the scan to one element-range morsel from
        :meth:`scan_splits`.

        ``stats_sink`` (a :class:`~repro.stats.StatsPartial`) requests
        table-statistics byproduct emission over its named components,
        advanced once per batch.
        """
        from ...core.chunk import Chunk

        element_range = None
        if split is not None and split.kind != "all":
            if split.kind != "elements":
                raise DataFormatError(
                    f"{self.path}: array scans cannot interpret a "
                    f"{split.kind!r} morsel"
                )
            element_range = (split.lo, split.hi)
        names = list(self.dim_names) + [n for n, _t in self.header.fields]
        field_list = list(fields) if fields is not None else names
        for f in field_list:
            if f not in names:
                raise DataFormatError(
                    f"{self.path}: array source has no component {f!r}"
                )
        picks = [names.index(f) for f in field_list]
        spicks = []
        if stats_sink is not None:
            spicks = [(f, names.index(f)) for f in stats_sink.fields
                      if f in names]
        for batch in self.scan_batches(batch_size, device=device,
                                       element_range=element_range):
            if stats_sink is not None:
                stats_sink.advance(0, len(batch))
                if spicks:
                    stats_sink.record(0, {
                        f: [t[i] for t in batch] for f, i in spicks
                    })
            if not picks and not whole:
                yield Chunk((), (), len(batch))
                continue
            columns = [[t[i] for t in batch] for i in picks]
            whole_rows = [dict(zip(names, t)) for t in batch] if whole else None
            yield Chunk.from_columns(field_list, columns, whole=whole_rows)

    def read_row(self, i: int, device=None) -> list[tuple]:
        """Unit 'row' of a rank-2 array: all elements with first coord = i."""
        dims = self.header.dims
        if len(dims) != 2:
            raise DataFormatError("read_row requires a rank-2 array")
        esize = self.header.element_size
        with RawFile(self.path, device=device) as raw:
            payload = raw.read_at(self.element_offset((i, 0)), esize * dims[1])
        return [self._unpack(payload, j * esize) for j in range(dims[1])]

    def read_column(self, j: int, device=None) -> list[tuple]:
        """Unit 'column' of a rank-2 array (strided positioned reads)."""
        dims = self.header.dims
        if len(dims) != 2:
            raise DataFormatError("read_column requires a rank-2 array")
        esize = self.header.element_size
        out = []
        with RawFile(self.path, device=device) as raw:
            for i in range(dims[0]):
                payload = raw.read_at(self.element_offset((i, j)), esize)
                out.append(self._unpack(payload, 0))
        return out

    def read_chunk(self, i0: int, j0: int, n: int, m: int, device=None) -> list[list[tuple]]:
        """Unit 'n×m chunk' of a rank-2 array (array-database style)."""
        dims = self.header.dims
        if len(dims) != 2:
            raise DataFormatError("read_chunk requires a rank-2 array")
        if i0 + n > dims[0] or j0 + m > dims[1]:
            raise DataFormatError("chunk exceeds array bounds")
        esize = self.header.element_size
        out: list[list[tuple]] = []
        with RawFile(self.path, device=device) as raw:
            for i in range(i0, i0 + n):
                payload = raw.read_at(self.element_offset((i, j0)), esize * m)
                out.append([self._unpack(payload, k * esize) for k in range(m)])
        return out
