"""A conventional DBMS as a ViDa data source (paper §2.1).

"The 'capabilities' exposed by each underlying data source dictate the
efficiency of the generated code. For example, in the case that ViDa treats
a conventional DBMS as a data source, ViDa's access paths can utilize
existing indexes to speed-up queries to this data source."

:class:`DBMSSource` adapts one table/collection of the warehouse engines
(row store, column store, document store) into the plugin interface ViDa
scans expect, advertising the store's indexes so the planner can push
equality predicates down into an index lookup instead of a full scan.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..errors import DataFormatError
from ..mcc import types as T
from ..warehouse.colstore import ColStore
from ..warehouse.docstore import DocStore
from ..warehouse.rowstore import RowStore

_PRIM = {"int": T.INT, "float": T.FLOAT, "bool": T.BOOL, "string": T.STRING}


class DBMSSource:
    """One store table/collection exposed as a ViDa source."""

    format_name = "dbms"

    def __init__(self, store: RowStore | ColStore | DocStore, table: str):
        self.store = store
        self.table = table
        if isinstance(store, (RowStore, ColStore)):
            meta = store.tables.get(table) if isinstance(store, RowStore) else None
            if isinstance(store, RowStore):
                if meta is None:
                    raise DataFormatError(f"row store has no table {table!r}")
                self.columns = list(meta.columns)
                self.types = list(meta.types)
            else:
                ctable = store.tables.get(table)
                if ctable is None:
                    raise DataFormatError(f"column store has no table {table!r}")
                self.columns = list(ctable.order)
                self.types = [ctable.columns[c].type for c in ctable.order]
        elif isinstance(store, DocStore):
            if table not in store.collections:
                raise DataFormatError(f"document store has no collection {table!r}")
            self.columns = []
            self.types = []
        else:
            raise DataFormatError(
                f"unsupported store type {type(store).__name__} for a DBMS source"
            )

    # -- schema ----------------------------------------------------------------

    def element_type(self) -> T.Type:
        if isinstance(self.store, DocStore):
            elem: T.Type = T.ANY
            for i, doc in enumerate(self.store.find(self.table)):
                inferred = T.type_of_python_value(doc)
                unified = T.unify(elem, inferred)
                elem = unified if unified is not None else T.ANY
                if i >= 20:
                    break
            return elem
        return T.RecordType(tuple(
            (c, _PRIM.get(t, T.ANY)) for c, t in zip(self.columns, self.types)
        ))

    def schema(self) -> T.CollectionType:
        return T.bag_of(self.element_type())

    # -- capabilities -----------------------------------------------------------

    def indexed_fields(self) -> tuple[str, ...]:
        """Fields the underlying store can look up without a scan."""
        if isinstance(self.store, DocStore):
            return tuple(sorted(self.store.collections[self.table].indexes))
        return ()

    def row_count(self) -> int:
        if isinstance(self.store, DocStore):
            return self.store.count(self.table)
        return self.store.row_count(self.table)

    # -- access paths --------------------------------------------------------------

    def scan(self, fields: Sequence[str] | None = None) -> Iterator[dict]:
        """Full scan yielding dict records of the requested fields."""
        if isinstance(self.store, DocStore):
            yield from self.store.iter_dicts(self.table, list(fields) if fields else None)
            return
        yield from self.store.iter_dicts(self.table, list(fields) if fields else None)

    def scan_chunks(
        self,
        fields: Sequence[str] | None = None,
        batch_size: int = 1024,
        whole: bool = False,
    ):
        """Batched scan yielding :class:`~repro.core.chunk.Chunk` objects.

        The stores themselves hand records over one at a time; chunking at
        the source boundary still amortises the plugin → runtime → engine
        handoff, so every registered source speaks the batch protocol.
        Tabular stores columnarise the requested ``fields`` per batch
        (tuples straight off ``store.scan``, no dict round-trip); document
        stores carry whole nested documents on ``chunk.whole``.
        """
        from ..core.chunk import Chunk, chunked

        if isinstance(self.store, DocStore) or whole or not fields:
            names = list(fields) if fields else None
            for batch in chunked(self.scan(names), batch_size):
                yield Chunk((), (), len(batch), whole=batch)
            return
        field_list = list(fields)
        for batch in chunked(self.store.scan(self.table, field_list), batch_size):
            columns = [[t[i] for t in batch] for i in range(len(field_list))]
            yield Chunk.from_columns(field_list, columns)

    def index_lookup(self, field: str, value) -> Iterator[dict]:
        """Index access path: only documents/rows with ``field == value``."""
        if isinstance(self.store, DocStore):
            if field not in self.store.collections[self.table].indexes:
                raise DataFormatError(
                    f"collection {self.table!r} has no index on {field!r}"
                )
            yield from self.store.find(self.table, eq=(field, value))
            return
        raise DataFormatError(
            f"store {type(self.store).__name__} exposes no index on {field!r}"
        )
