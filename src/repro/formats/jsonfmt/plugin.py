"""JSON input plugin: hierarchical data as a first-class ViDa source.

Supports newline-delimited JSON and single-top-level-array files. Offers the
access paths the engine's optimizer chooses between (paper §5, Figure 4):

- ``scan_objects`` — parse every object (cold scan; builds the semi-index),
- ``scan_positions`` — yield only ``(start, end)`` spans via the semi-index,
  never parsing (the pollution-avoiding layout (d)),
- ``load_span`` / ``load_object`` — positional access path: parse one object
  on demand from its byte range,
- ``scan_paths`` — project dotted paths, parsing objects but materialising
  only the requested scalars.

Schema inference unions record types over a sample of objects.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Iterator, Sequence

from ...errors import DataFormatError
from ...mcc import types as T
from ...storage.io import RawFile
from .semi_index import JSONSemiIndex, ObjectSpan


def get_path(obj, path: str):
    """Navigate a dotted path through dicts (and list indexes) — None on miss.

    >>> get_path({'a': {'b': [10, 20]}}, 'a.b.1')
    20
    """
    current = obj
    for step in path.split("."):
        if isinstance(current, dict):
            current = current.get(step)
        elif isinstance(current, list):
            try:
                current = current[int(step)]
            except (ValueError, IndexError):
                return None
        else:
            return None
        if current is None:
            return None
    return current


@dataclass(frozen=True)
class JSONOptions:
    encoding: str = "utf-8"
    sample_objects: int = 50


class JSONSource:
    """One JSON file exposed as a bag of (nested) records."""

    format_name = "json"

    def __init__(self, path: str | os.PathLike, options: JSONOptions | None = None):
        self.path = os.fspath(path)
        self.options = options or JSONOptions()
        self._semi_index: JSONSemiIndex | None = None
        self._schema: T.CollectionType | None = None
        self._aux_lock = threading.Lock()

    # -- auxiliary structure -------------------------------------------------

    @property
    def semi_index(self) -> JSONSemiIndex:
        """The structural index; built on first use (one raw pass, no
        parsing). Double-checked under a lock so concurrent sessions build
        it once and always observe a fully-constructed index."""
        if self._semi_index is None:
            with self._aux_lock:
                if self._semi_index is None:
                    self._semi_index = JSONSemiIndex.build_from_file(self.path)
        return self._semi_index

    def has_semi_index(self) -> bool:
        return self._semi_index is not None

    def invalidate_auxiliary(self) -> None:
        """Drop the semi-index (underlying file changed in place)."""
        self._semi_index = None
        self._schema = None

    def extend_for_append(
        self, old_size: int, new_size: int, device=None
    ) -> tuple[list, int, int]:
        """Delta refresh for an append-classified mutation: O(delta) rescan.

        Reads only the tail bytes ``[old_size, new_size)``, boundary-scans
        them into tail spans (the appended region must be self-contained
        JSON — true for NDJSON appends, since the old content was balanced
        at depth 0), parses the appended objects once, and atomically swaps
        in an extended semi-index. The superseded index object is never
        mutated: in-flight scans and pinned generation snapshots keep
        reading its prefix spans.

        Returns ``(tail_objects, start_row, bytes_read)`` where
        ``start_row`` is the object count before the append. Raises
        :class:`DataFormatError` when no semi-index exists or the tail is
        not self-contained JSON — callers fall back to full invalidation,
        leaving the live index untouched.
        """
        with self._aux_lock:
            old_index = self._semi_index
        if old_index is None:
            raise DataFormatError(
                f"{self.path}: delta refresh needs an existing semi-index"
            )
        with RawFile(self.path, device=device) as raw:
            tail = raw.read_at(old_size, new_size - old_size)
        tail_index = JSONSemiIndex.build(tail)  # DataFormatError on truncation
        encoding = self.options.encoding
        try:
            tail_objects = [
                json.loads(tail[s.start:s.end].decode(encoding))
                for s in tail_index.spans
            ]
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise DataFormatError(
                f"{self.path}: bad JSON object in appended tail: {exc}"
            ) from exc
        shifted = [ObjectSpan(s.start + old_size, s.end + old_size)
                   for s in tail_index.spans]
        new_index = JSONSemiIndex(list(old_index.spans) + shifted)
        with self._aux_lock:
            self._semi_index = new_index
        return tail_objects, len(old_index.spans), new_size - old_size

    # -- schema ----------------------------------------------------------------

    def schema(self) -> T.CollectionType:
        """Schema by sampling. Reads only a bounded file prefix unless the
        semi-index already exists — registration must stay cheap (NoDB: costs
        are paid at first *query*, not at registration)."""
        if self._schema is None:
            elem: T.Type = T.ANY
            if self._semi_index is not None:
                sample = (
                    self.load_span(span)
                    for span in self._semi_index.spans[: self.options.sample_objects]
                )
            else:
                sample = self._iter_prefix_objects(self.options.sample_objects)
            for obj in sample:
                inferred = T.type_of_python_value(obj)
                unified = T.unify(elem, inferred)
                elem = unified if unified is not None else T.ANY
            self._schema = T.bag_of(elem)
        return self._schema

    def _iter_prefix_objects(self, limit: int, prefix_bytes: int = 1 << 20):
        """Parse up to ``limit`` objects from the first ``prefix_bytes`` only."""
        with open(self.path, "rb") as fh:
            data = fh.read(prefix_bytes)
        in_string = False
        escaped = False
        depth = 0
        start = -1
        count = 0
        for i, byte in enumerate(data):
            ch = chr(byte)
            if in_string:
                if escaped:
                    escaped = False
                elif ch == "\\":
                    escaped = True
                elif ch == '"':
                    in_string = False
                continue
            if ch == '"':
                in_string = True
            elif ch == "{":
                if depth == 0:
                    start = i
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0 and start >= 0:
                    try:
                        yield json.loads(data[start:i + 1].decode(self.options.encoding))
                    except (json.JSONDecodeError, UnicodeDecodeError):
                        return
                    count += 1
                    if count >= limit:
                        return
                    start = -1

    def element_type(self) -> T.Type:
        return self.schema().elem

    # -- access paths --------------------------------------------------------------

    def object_count(self) -> int:
        return len(self.semi_index)

    def scan_objects(self, device=None) -> Iterator[dict]:
        """Parse and yield every top-level object (builds the semi-index)."""
        spans = self.semi_index.spans
        encoding = self.options.encoding
        with RawFile(self.path, device=device) as raw:
            data = raw.read()
        for span in spans:
            try:
                yield json.loads(data[span.start:span.end].decode(encoding))
            except json.JSONDecodeError as exc:
                raise DataFormatError(
                    f"{self.path}: bad JSON object at bytes "
                    f"{span.start}-{span.end}: {exc}"
                ) from exc

    def scan_splits(self, dop: int) -> list:
        """Independently scannable morsels: contiguous semi-index span ranges.

        Builds the semi-index if absent (one raw pass, no parsing) — the
        split decision runs on the coordinating thread before workers start,
        so the index is read-only by the time morsels execute.
        """
        from ...core.chunk import split_ranges

        return split_ranges(len(self.semi_index.spans), dop, "spans")

    def scan_object_chunks(self, batch_size: int = 1024, device=None,
                           span_range: tuple[int, int] | None = None) -> Iterator[list]:
        """Parse top-level objects a batch at a time (chunk pipeline).

        Same contract as :meth:`scan_objects` (builds the semi-index as a
        side effect) but amortises the per-object Python iteration overhead
        over ``batch_size`` objects. ``span_range`` restricts the pass to
        spans ``[lo, hi)`` and reads only the bytes covering them.
        """
        spans = self.semi_index.spans
        base = 0
        encoding = self.options.encoding
        loads = json.loads
        with RawFile(self.path, device=device) as raw:
            if span_range is None:
                data = raw.read()
            else:
                lo, hi = span_range
                spans = spans[lo:hi]
                if not spans:
                    return
                base = spans[0].start
                data = raw.read_at(base, spans[-1].end - base)
        for i in range(0, len(spans), batch_size):
            group = spans[i:i + batch_size]
            try:
                yield [loads(data[s.start - base:s.end - base].decode(encoding))
                       for s in group]
            except json.JSONDecodeError:
                for span in group:  # locate the bad object for the error
                    try:
                        loads(data[span.start - base:span.end - base].decode(encoding))
                    except json.JSONDecodeError as exc:
                        raise DataFormatError(
                            f"{self.path}: bad JSON object at bytes "
                            f"{span.start}-{span.end}: {exc}"
                        ) from exc

    @staticmethod
    def project_paths(objs: list, paths: Sequence[str]) -> list[list]:
        """Columnarize dotted-path projections over an object batch.

        One comprehension per path — the JSON column kernel; top-level
        attributes skip the generic path walker entirely.
        """
        cols: list[list] = []
        for p in paths:
            if "." in p:
                cols.append([get_path(o, p) for o in objs])
            else:
                cols.append([o.get(p) for o in objs])
        return cols

    def scan_chunks(
        self,
        paths: Sequence[str] = (),
        batch_size: int = 1024,
        device=None,
        whole: bool = False,
        split=None,
        index_sink=None,
        stats_sink=None,
    ):
        """Batched scan yielding :class:`~repro.core.chunk.Chunk` objects.

        ``paths`` become aligned columns; ``whole`` keeps the parsed objects
        on ``chunk.whole`` for scans that bind the full element. ``split``
        restricts the scan to one span-range morsel from :meth:`scan_splits`.

        ``index_sink`` (an :class:`~repro.indexing.IndexPartial`) requests
        value-index byproduct emission over its dotted paths; rows are
        global semi-index span numbers, so partials merge without shifting.

        ``stats_sink`` (a :class:`~repro.stats.StatsPartial`) requests
        table-statistics byproduct emission over its dotted paths, with an
        explicit ``advance`` per batch so row counts stay exact even for
        sinks that record no columns.
        """
        from ...core.chunk import Chunk

        span_range = None
        row = 0
        if split is not None and split.kind != "all":
            if split.kind != "spans":
                raise DataFormatError(
                    f"{self.path}: JSON scans cannot interpret a "
                    f"{split.kind!r} morsel"
                )
            span_range = (split.lo, split.hi)
            row = split.lo
        paths = tuple(paths)
        for objs in self.scan_object_chunks(batch_size, device=device,
                                            span_range=span_range):
            columns = self.project_paths(objs, paths) if paths else []
            if index_sink is not None:
                index_sink.record(row, dict(zip(
                    index_sink.fields,
                    self.project_paths(objs, index_sink.fields),
                )))
            if stats_sink is not None:
                stats_sink.advance(row, len(objs))
                if stats_sink.fields:
                    stats_sink.record(row, dict(zip(
                        stats_sink.fields,
                        self.project_paths(objs, stats_sink.fields),
                    )))
            row += len(objs)
            yield Chunk.from_columns(paths, columns,
                                     whole=objs if whole or not paths else None)

    def scan_positions(self) -> Iterator[ObjectSpan]:
        """Yield object spans only — no parsing, no materialisation."""
        yield from self.semi_index

    def load_span(self, span: ObjectSpan, device=None) -> dict:
        """Parse one object from its byte range (positional access path)."""
        with RawFile(self.path, device=device) as raw:
            payload = raw.read_at(span.start, span.length)
        try:
            return json.loads(payload.decode(self.options.encoding))
        except json.JSONDecodeError as exc:
            raise DataFormatError(
                f"{self.path}: bad JSON object at bytes {span.start}-{span.end}: {exc}"
            ) from exc

    def load_object(self, index: int, device=None) -> dict:
        return self.load_span(self.semi_index[index], device=device)

    def scan_paths(
        self, paths: Sequence[str], device=None
    ) -> Iterator[tuple]:
        """Yield tuples of dotted-path projections, one per object."""
        for obj in self.scan_objects(device=device):
            yield tuple(get_path(obj, p) for p in paths)

    def assemble(self, spans: Sequence[ObjectSpan], device=None) -> list[dict]:
        """Late materialisation: parse exactly the qualifying objects.

        This is the projection-time re-assembly of Figure 4(d): carry
        positions through the plan, touch raw bytes once per survivor.
        """
        out: list[dict] = []
        with RawFile(self.path, device=device) as raw:
            for span in spans:
                payload = raw.read_at(span.start, span.length)
                out.append(json.loads(payload.decode(self.options.encoding)))
        return out
