"""JSON raw-format substrate: plugin, structural semi-index, BSON-lite codec."""

from . import bson
from .plugin import JSONOptions, JSONSource, get_path
from .semi_index import JSONSemiIndex, ObjectSpan

__all__ = [
    "JSONOptions", "JSONSemiIndex", "JSONSource", "ObjectSpan", "bson",
    "get_path",
]
