"""BSON-lite: a binary JSON serialization (subset of real BSON).

Used in two places, both from the paper:

- as the document store baseline's on-disk format (MongoDB stores BSON; the
  paper reports the imported JSON *doubling* in size — field names are
  repeated per document and values carry fixed-width tags/lengths, which
  this codec reproduces), and
- as one of ViDa's materialisation layouts (Figure 4 layout (b)): "binary
  JSON serializations are more compact than JSON [text]" for *nested* data
  while staying cheaper to traverse than re-parsing text.

Wire format (faithful BSON subset)::

    document := int32 total_size, element*, 0x00
    element  := tag byte, cstring field-name, payload
    tags     := 0x01 double | 0x02 string | 0x03 document | 0x04 array
              | 0x08 bool | 0x0A null | 0x12 int64

Arrays are encoded as documents with "0", "1", ... keys, exactly like BSON.
"""

from __future__ import annotations

import struct

from ...errors import DataFormatError

_INT32 = struct.Struct("<i")
_INT64 = struct.Struct("<q")
_DOUBLE = struct.Struct("<d")

TAG_DOUBLE = 0x01
TAG_STRING = 0x02
TAG_DOCUMENT = 0x03
TAG_ARRAY = 0x04
TAG_BOOL = 0x08
TAG_NULL = 0x0A
TAG_INT64 = 0x12


def encode(document: dict) -> bytes:
    """Encode a dict (JSON-compatible values only) to BSON-lite bytes."""
    if not isinstance(document, dict):
        raise DataFormatError(f"BSON top level must be a document, got {type(document).__name__}")
    return _encode_document(document)


def _encode_document(doc: dict) -> bytes:
    body = bytearray()
    for key, value in doc.items():
        body += _encode_element(str(key), value)
    total = _INT32.size + len(body) + 1
    return _INT32.pack(total) + bytes(body) + b"\x00"


def _encode_element(name: str, value) -> bytes:
    name_bytes = name.encode("utf-8") + b"\x00"
    if value is None:
        return bytes([TAG_NULL]) + name_bytes
    if isinstance(value, bool):
        return bytes([TAG_BOOL]) + name_bytes + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        return bytes([TAG_INT64]) + name_bytes + _INT64.pack(value)
    if isinstance(value, float):
        return bytes([TAG_DOUBLE]) + name_bytes + _DOUBLE.pack(value)
    if isinstance(value, str):
        raw = value.encode("utf-8") + b"\x00"
        return bytes([TAG_STRING]) + name_bytes + _INT32.pack(len(raw)) + raw
    if isinstance(value, dict):
        return bytes([TAG_DOCUMENT]) + name_bytes + _encode_document(value)
    if isinstance(value, (list, tuple)):
        as_doc = {str(i): v for i, v in enumerate(value)}
        return bytes([TAG_ARRAY]) + name_bytes + _encode_document(as_doc)
    raise DataFormatError(f"cannot BSON-encode value of type {type(value).__name__}")


def decode(data: bytes) -> dict:
    """Decode BSON-lite bytes back to a dict."""
    doc, consumed = _decode_document(data, 0)
    if consumed != len(data):
        raise DataFormatError(
            f"trailing bytes after BSON document ({len(data) - consumed} extra)"
        )
    return doc


def _decode_document(data: bytes, offset: int) -> tuple[dict, int]:
    if offset + _INT32.size > len(data):
        raise DataFormatError("truncated BSON document header")
    (total,) = _INT32.unpack_from(data, offset)
    end = offset + total
    if end > len(data) or total < 5:
        raise DataFormatError(f"bad BSON document length {total}")
    pos = offset + _INT32.size
    doc: dict = {}
    while pos < end - 1:
        tag = data[pos]
        pos += 1
        name_end = data.index(b"\x00", pos)
        name = data[pos:name_end].decode("utf-8")
        pos = name_end + 1
        value, pos = _decode_value(tag, data, pos)
        doc[name] = value
    if data[end - 1] != 0:
        raise DataFormatError("missing BSON document terminator")
    return doc, end


def _decode_value(tag: int, data: bytes, pos: int):
    if tag == TAG_NULL:
        return None, pos
    if tag == TAG_BOOL:
        return data[pos] == 1, pos + 1
    if tag == TAG_INT64:
        return _INT64.unpack_from(data, pos)[0], pos + 8
    if tag == TAG_DOUBLE:
        return _DOUBLE.unpack_from(data, pos)[0], pos + 8
    if tag == TAG_STRING:
        (length,) = _INT32.unpack_from(data, pos)
        pos += 4
        raw = data[pos:pos + length - 1]
        return raw.decode("utf-8"), pos + length
    if tag == TAG_DOCUMENT:
        return _decode_document(data, pos)
    if tag == TAG_ARRAY:
        doc, new_pos = _decode_document(data, pos)
        return [doc[k] for k in sorted(doc, key=int)], new_pos
    raise DataFormatError(f"unknown BSON tag 0x{tag:02x}")


def encoded_size(document: dict) -> int:
    """Size in bytes of the BSON-lite encoding (without encoding twice)."""
    return len(encode(document))
