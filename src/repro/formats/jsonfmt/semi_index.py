"""Structural semi-index for JSON files (paper §3.1/§6; Ottaviano & Grossi).

ViDa "maintains positional information such as starting and ending positions
of JSON objects and arrays". This index records, for every *top-level*
object in a file (newline-delimited JSON or a single top-level JSON array),
its ``(start, end)`` byte range — enough to:

- jump straight to the i-th object (positional access path),
- carry cheap ``(start, end)`` pairs through query plans instead of parsed
  objects (Figure 4 layout (d), the cache-pollution avoidance device), and
- re-assemble qualifying objects only at projection time.

The boundary scanner is a single pass over the raw bytes tracking string
state and brace depth; it never builds parsed objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import DataFormatError


@dataclass(frozen=True)
class ObjectSpan:
    """Byte range of one top-level JSON object: ``data[start:end]``."""

    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


class JSONSemiIndex:
    """Positions of all top-level objects in a JSON file."""

    def __init__(self, spans: list[ObjectSpan]):
        self.spans = spans

    def __len__(self) -> int:
        return len(self.spans)

    def __getitem__(self, i: int) -> ObjectSpan:
        return self.spans[i]

    def __iter__(self):
        return iter(self.spans)

    def memory_bytes(self) -> int:
        return len(self.spans) * 16

    @staticmethod
    def build(data: bytes) -> "JSONSemiIndex":
        """Scan raw bytes once, recording top-level object boundaries.

        Handles both NDJSON (objects at depth 0) and a single enclosing
        array (objects at depth 1 inside ``[...]``).
        """
        spans: list[ObjectSpan] = []
        in_string = False
        escaped = False
        depth = 0
        array_depth = 0
        object_start = -1
        top_is_array = None

        for i, byte in enumerate(data):
            ch = chr(byte)
            if in_string:
                if escaped:
                    escaped = False
                elif ch == "\\":
                    escaped = True
                elif ch == '"':
                    in_string = False
                continue
            if ch == '"':
                in_string = True
            elif ch == "{":
                if depth == 0:
                    object_start = i
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth < 0:
                    raise DataFormatError(f"unbalanced '}}' at byte {i}")
                if depth == 0 and object_start >= 0:
                    spans.append(ObjectSpan(object_start, i + 1))
                    object_start = -1
            elif ch == "[" and depth == 0:
                if top_is_array is None and not spans:
                    top_is_array = True
                array_depth += 1
            elif ch == "]" and depth == 0:
                array_depth -= 1
        if depth != 0 or in_string:
            raise DataFormatError("truncated JSON: unbalanced braces or open string")
        return JSONSemiIndex(spans)

    @staticmethod
    def build_from_file(path: str, chunk_size: int = 1 << 22) -> "JSONSemiIndex":
        """Build from a file without holding it all in memory (chunked scan)."""
        spans: list[ObjectSpan] = []
        in_string = False
        escaped = False
        depth = 0
        object_start = -1
        base = 0
        with open(path, "rb") as fh:
            while True:
                chunk = fh.read(chunk_size)
                if not chunk:
                    break
                for j, byte in enumerate(chunk):
                    i = base + j
                    ch = chr(byte)
                    if in_string:
                        if escaped:
                            escaped = False
                        elif ch == "\\":
                            escaped = True
                        elif ch == '"':
                            in_string = False
                        continue
                    if ch == '"':
                        in_string = True
                    elif ch == "{":
                        if depth == 0:
                            object_start = i
                        depth += 1
                    elif ch == "}":
                        depth -= 1
                        if depth < 0:
                            raise DataFormatError(f"unbalanced '}}' at byte {i}")
                        if depth == 0 and object_start >= 0:
                            spans.append(ObjectSpan(object_start, i + 1))
                            object_start = -1
                base += len(chunk)
        if depth != 0 or in_string:
            raise DataFormatError("truncated JSON: unbalanced braces or open string")
        return JSONSemiIndex(spans)
