"""CSV raw-format substrate: plugin, positional maps, writer."""

from .plugin import CSVOptions, CSVSource
from .positional_map import PositionalMap, PosMapStats
from .writer import append_csv, format_value, write_csv

__all__ = [
    "CSVOptions", "CSVSource", "PositionalMap", "PosMapStats",
    "append_csv", "format_value", "write_csv",
]
