"""Positional maps for CSV files (paper §3.1/§5; Alagiannis et al., NoDB).

A positional map stores "binary positions of a file's fields ... during
initial accesses, used to facilitate navigation in the file for later
queries". We store:

- the absolute byte offset of every data row (``row_offsets``), and
- for a *subset* of columns, the offset of the field start **relative to its
  row start** (``_col_offsets``). Columns enter the map when a query accesses
  them (access-driven population) plus an optional fixed stride so later
  queries for unseen columns can start tokenizing from a nearby anchor
  instead of the row start.

The cost model consequence (paper §5): retrieving column ``c`` costs
tokenizing from the nearest recorded anchor column ≤ ``c``; an unmapped file
pays full tokenization from the row start.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PosMapStats:
    """Counters describing how useful the map was during scans."""

    direct_hits: int = 0        # field located exactly from a recorded offset
    anchored_scans: int = 0     # tokenized forward from a nearby anchor
    full_scans: int = 0         # tokenized from row start (map useless)


class PositionalMap:
    """Positional index over one CSV file.

    ``stride`` controls eager anchor density: during a full parse, every
    ``stride``-th column is recorded even if not requested (0 disables).
    """

    def __init__(self, ncols: int, delimiter: str = ",", stride: int = 8):
        self.ncols = ncols
        self.delimiter = delimiter
        self.stride = stride
        self.row_offsets: list[int] = []
        self._col_offsets: dict[int, list[int]] = {}
        self.complete = False  # True once every row offset is recorded
        self.stats = PosMapStats()

    # -- population ---------------------------------------------------------

    def anchor_columns(self, requested: list[int]) -> list[int]:
        """Columns to record during a parse: requested + stride anchors."""
        cols = set(requested)
        if self.stride:
            cols.update(range(0, self.ncols, self.stride))
        cols.update(self._col_offsets)
        return sorted(cols)

    def begin_population(self, columns: list[int]) -> None:
        """Prepare per-column offset lists for a fresh full-file parse."""
        self.row_offsets = []
        for col in columns:
            self._col_offsets[col] = []

    def record_row(self, offset: int, line: str, columns: list[int]) -> None:
        """Record one row's start offset and the relative offsets of ``columns``.

        ``line`` is the decoded row content (without the newline).
        """
        self.row_offsets.append(offset)
        if not columns:
            return
        delim = self.delimiter
        pos = 0
        col = 0
        want = iter(columns)
        target = next(want)
        while True:
            if col == target:
                self._col_offsets[target].append(pos)
                nxt = next(want, None)
                if nxt is None:
                    break
                target = nxt
            cut = line.find(delim, pos)
            if cut < 0:
                # row ended early; remaining targets point past the line
                for t in [target] + list(want):
                    self._col_offsets[t].append(len(line))
                break
            pos = cut + 1
            col += 1

    def finish_population(self) -> None:
        self.complete = True

    def clone_for_extension(self) -> "PositionalMap":
        """A fresh, *incomplete* map seeded with this map's offsets.

        The delta-refresh path records an appended tail onto the clone and
        swaps it in whole — never mutating this map, whose identity is the
        adopt-or-discard guard for in-flight scans (and whose offsets a
        pinned generation may still be navigating). Cheap: C-level list
        copies, no re-read of mapped bytes.
        """
        pm = PositionalMap(self.ncols, self.delimiter, self.stride)
        pm.row_offsets = list(self.row_offsets)
        pm._col_offsets = {c: list(v) for c, v in self._col_offsets.items()}
        return pm

    def adopt_partials(self, partials: list["PositionalMap"]) -> None:
        """Merge per-morsel partial maps, in morsel order, into this map.

        A parallel cold scan records offsets into one fresh partial map per
        byte-range morsel; byte ranges tile the data region in file order,
        so concatenating the partials' row and column offset lists
        reconstructs exactly the sequential population. All partials must
        have been populated with the same anchor-column set.
        """
        if self.complete or not partials:
            return
        columns = partials[0].mapped_columns
        self.begin_population(columns)
        for pm in partials:
            self.row_offsets.extend(pm.row_offsets)
            for col in columns:
                self._col_offsets[col].extend(pm._col_offsets[col])
        self.finish_population()

    # -- lookup ---------------------------------------------------------------

    @property
    def mapped_columns(self) -> list[int]:
        return sorted(self._col_offsets)

    def has_column(self, col: int) -> bool:
        return col in self._col_offsets

    def nearest_anchor(self, col: int) -> int | None:
        """The largest mapped column ≤ ``col``, or None."""
        best: int | None = None
        for c in self._col_offsets:
            if c <= col and (best is None or c > best):
                best = c
        return best

    def field_in_line(self, line: str, row: int, col: int) -> str:
        """Extract column ``col`` of ``row`` from its decoded line text."""
        delim = self.delimiter
        anchor = self.nearest_anchor(col)
        if anchor is None:
            self.stats.full_scans += 1
            pos = 0
            skip = col
        elif anchor == col:
            self.stats.direct_hits += 1
            pos = self._col_offsets[col][row]
            skip = 0
        else:
            self.stats.anchored_scans += 1
            pos = self._col_offsets[anchor][row]
            skip = col - anchor
        for _ in range(skip):
            cut = line.find(delim, pos)
            if cut < 0:
                return ""
            pos = cut + 1
        end = line.find(delim, pos)
        return line[pos:] if end < 0 else line[pos:end]

    def navigation_cost(self, col: int) -> int:
        """Number of delimiter hops needed to reach ``col`` (cost model input)."""
        anchor = self.nearest_anchor(col)
        if anchor is None:
            return col
        return col - anchor

    def memory_bytes(self) -> int:
        """Rough in-memory footprint (for cache/pollution accounting)."""
        per_list = 8  # CPython small-int list entries, order of magnitude
        total = len(self.row_offsets) * per_list
        for offsets in self._col_offsets.values():
            total += len(offsets) * per_list
        return total
