"""CSV input plugin: schema inference, conversion, and scan access paths.

The plugin is the format-specific component a ViDa operator invokes for each
input binding (paper Figure 3). It offers:

- schema inference (header + type sniffing over a sample),
- a **cold scan** that tokenizes rows while *building the positional map*
  (NoDB-style piggybacking), and
- a **warm scan** that navigates straight to requested fields using the map.

Parsing scope: delimiter-separated text without quoted-field delimiters
(the HBP-style exports the paper processes). ``None`` is produced for empty
fields and configured null tokens.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from ...errors import DataFormatError
from ...mcc import types as T
from ...storage.io import RawFile
from ..descriptions import NULL_TOKENS as _NULL_TOKENS
from .positional_map import PositionalMap


@dataclass(frozen=True)
class CSVOptions:
    delimiter: str = ","
    header: bool = True
    null_tokens: frozenset = _NULL_TOKENS
    sample_rows: int = 100
    encoding: str = "utf-8"


def _parse_int(text: str) -> int:
    return int(text)


def _parse_float(text: str) -> float:
    return float(text)


def _parse_bool(text: str) -> bool:
    lowered = text.lower()
    if lowered in ("true", "t", "1", "yes"):
        return True
    if lowered in ("false", "f", "0", "no"):
        return False
    raise ValueError(f"not a bool: {text!r}")


_CONVERTERS: dict[str, Callable[[str], object]] = {
    "int": _parse_int,
    "float": _parse_float,
    "bool": _parse_bool,
    "string": str,
}


def _sniff_type(values: list[str]) -> str:
    """Infer a column type from sample values (int ⊂ float ⊂ string)."""
    non_null = [v for v in values if v not in _NULL_TOKENS]
    if not non_null:
        return "string"
    for name in ("int", "float", "bool"):
        conv = _CONVERTERS[name]
        try:
            for v in non_null:
                conv(v)
            return name
        except ValueError:
            continue
    return "string"


class CSVSource:
    """One CSV file exposed as a bag of records.

    ``columns``/``types`` may be given explicitly (from a source description)
    or inferred from the file. The positional map is owned by the source and
    persists across scans — exactly the amortisation the paper measures.
    """

    format_name = "csv"

    def __init__(
        self,
        path: str | os.PathLike,
        options: CSVOptions | None = None,
        columns: Sequence[str] | None = None,
        types: Sequence[str] | None = None,
        posmap_stride: int = 8,
    ):
        self.path = os.fspath(path)
        self.options = options or CSVOptions()
        if columns is not None and types is not None:
            self.columns = list(columns)
            self.types = list(types)
        else:
            self.columns, self.types = self._infer_schema()
        if len(self.columns) != len(self.types):
            raise DataFormatError(
                f"{self.path}: {len(self.columns)} columns but {len(self.types)} types"
            )
        self.posmap = PositionalMap(len(self.columns), self.options.delimiter,
                                    stride=posmap_stride)
        self.col_index = {name: i for i, name in enumerate(self.columns)}
        self._data_start = self._header_length()
        # serialises posmap adoption/invalidation when sessions share the
        # plugin (leaf lock; the runtime's catalog source lock orders it
        # against generation bumps)
        self._aux_lock = threading.Lock()

    # -- schema ----------------------------------------------------------------

    def _header_length(self) -> int:
        if not self.options.header:
            return 0
        with open(self.path, "rb") as fh:
            first = fh.readline()
        return len(first)

    def _infer_schema(self) -> tuple[list[str], list[str]]:
        opts = self.options
        with open(self.path, "r", encoding=opts.encoding) as fh:
            first = fh.readline().rstrip("\n")
            if not first:
                raise DataFormatError(f"{self.path}: empty CSV file")
            cells = first.split(opts.delimiter)
            if opts.header:
                names = cells
                sample_source = fh
            else:
                names = [f"c{i}" for i in range(len(cells))]
                sample_source = None
            samples: list[list[str]] = [[] for _ in names]
            if sample_source is None:
                for i, cell in enumerate(cells):
                    samples[i].append(cell)
            rows_read = 0
            for line in fh:
                line = line.rstrip("\n")
                if not line:
                    continue
                for i, cell in enumerate(line.split(opts.delimiter)[: len(names)]):
                    samples[i].append(cell)
                rows_read += 1
                if rows_read >= opts.sample_rows:
                    break
        types = [_sniff_type(col) for col in samples]
        return names, types

    def element_type(self) -> T.RecordType:
        prim = {"int": T.INT, "float": T.FLOAT, "bool": T.BOOL, "string": T.STRING}
        return T.RecordType(tuple((n, prim[t]) for n, t in zip(self.columns, self.types)))

    def schema(self) -> T.CollectionType:
        return T.bag_of(self.element_type())

    # -- conversion --------------------------------------------------------------

    def converter(self, col: int) -> Callable[[str], object]:
        conv = _CONVERTERS[self.types[col]]
        null_tokens = self.options.null_tokens

        def convert(text: str):
            if text in null_tokens:
                return None
            try:
                return conv(text)
            except ValueError as exc:
                raise DataFormatError(
                    f"{self.path}: cannot parse {text!r} as {self.types[col]} "
                    f"(column {self.columns[col]!r})"
                ) from exc

        return convert

    def field_indexes(self, fields: Sequence[str]) -> list[int]:
        try:
            return [self.col_index[f] for f in fields]
        except KeyError as exc:
            raise DataFormatError(
                f"{self.path}: unknown column {exc.args[0]!r}; "
                f"available: {', '.join(self.columns)}"
            ) from None

    # -- access paths --------------------------------------------------------------

    def scan(
        self,
        fields: Sequence[str] | None = None,
        device=None,
        clean=None,
    ) -> Iterator[tuple]:
        """Yield tuples of converted values for ``fields`` (None = all).

        Dispatches to the warm (map-navigated) or cold (map-building) scan.
        ``clean`` is an optional :class:`repro.cleaning.CleaningPolicy`.
        """
        field_list = list(fields) if fields is not None else list(self.columns)
        cols = self.field_indexes(field_list)
        if self.posmap.complete:
            return self._warm_scan(cols, device, clean)
        return self._cold_scan(cols, device, clean)

    def _cold_scan(self, cols: list[int], device, clean) -> Iterator[tuple]:
        """Full tokenizing scan; piggybacks positional-map population.

        Population is recorded into a *detached* partial map and adopted
        atomically at scan end (adopt-or-discard): concurrent cold scans of
        the same source each build their own partial, exactly one installs.
        """
        target = self.posmap
        partial = self.new_posmap_partial()
        anchors = target.anchor_columns(cols)
        partial.begin_population(anchors)
        convs = [self.converter(c) for c in cols]
        delim = self.options.delimiter
        encoding = self.options.encoding
        validate = clean is not None and getattr(clean, "validate_always", False)
        with RawFile(self.path, device=device) as raw:
            row = 0
            for offset, line_bytes in raw.iter_lines():
                if offset < self._data_start:
                    continue
                line = line_bytes.decode(encoding)
                if not line:
                    continue
                partial.record_row(offset, line, anchors)
                cells = line.split(delim)
                if validate:
                    values = clean.repair(self, row, cells, cols)
                    row += 1
                    if values is None:
                        continue
                    yield values
                    continue
                try:
                    values = tuple(conv(cells[c]) for c, conv in zip(cols, convs))
                except (DataFormatError, IndexError) as exc:
                    if clean is not None:
                        repaired = clean.handle_row(row, cells, cols, convs, self, exc)
                        if repaired is None:
                            row += 1
                            continue
                        values = repaired
                    else:
                        raise
                yield values
                row += 1
        self.adopt_posmap_partials([partial], expect=target)

    def _warm_scan(self, cols: list[int], device, clean) -> Iterator[tuple]:
        """Map-navigated scan: jump to recorded field offsets, no full split."""
        convs = [self.converter(c) for c in cols]
        pm = self.posmap
        encoding = self.options.encoding
        validate = clean is not None and getattr(clean, "validate_always", False)
        with RawFile(self.path, device=device) as raw:
            row = 0
            for offset, line_bytes in raw.iter_lines():
                if offset < self._data_start:
                    continue
                line = line_bytes.decode(encoding)
                if not line:
                    continue
                if validate:
                    values = clean.repair(self, row, line.split(self.options.delimiter), cols)
                    row += 1
                    if values is None:
                        continue
                    yield values
                    continue
                try:
                    values = tuple(
                        conv(pm.field_in_line(line, row, c))
                        for c, conv in zip(cols, convs)
                    )
                except DataFormatError as exc:
                    if clean is not None:
                        cells = line.split(self.options.delimiter)
                        repaired = clean.handle_row(row, cells, cols, convs, self, exc)
                        if repaired is None:
                            row += 1
                            continue
                        values = repaired
                    else:
                        raise
                yield values
                row += 1

    # -- batched access path (chunk pipeline) ----------------------------------

    def scan_splits(self, dop: int) -> list:
        """Independently scannable morsels for a parallel scan.

        With a complete positional map the file splits into exact row
        ranges (workers know their global row numbers and navigate with the
        map); otherwise the data region splits into byte ranges that each
        worker aligns to line boundaries at read time — no pre-pass.
        """
        from ...core.chunk import Morsel, split_ranges

        if self.posmap.complete:
            return split_ranges(len(self.posmap.row_offsets), dop, "rows")
        size = os.path.getsize(self.path)
        start = self._data_start
        if dop <= 1 or size - start <= dop:
            return [Morsel("all")]
        bounds = [start + (size - start) * i // dop for i in range(dop + 1)]
        return [Morsel("bytes", lo, hi)
                for lo, hi in zip(bounds, bounds[1:]) if hi > lo]

    def iter_line_batches(
        self,
        batch_size: int,
        device=None,
        record_anchors: list[int] | None = None,
        byte_range: tuple[int, int] | None = None,
        start_row: int = 0,
        record_map: "PositionalMap | None" = None,
    ) -> Iterator[tuple[int, list[str]]]:
        """Yield ``(start_row, lines)`` batches of decoded data lines.

        When ``record_anchors`` is given, positional-map population is
        piggybacked on the pass (the caller brackets it with
        ``posmap.begin_population``/``finish_population``).

        ``byte_range`` restricts the pass to lines *starting* inside
        ``[lo, hi)``: a line belongs to the range holding its first byte,
        so ranges tiling the data region partition the rows exactly. The
        reader self-aligns — a range starting mid-line skips that line
        (it belongs to the previous range). ``start_row`` seeds the row
        numbering for ranges that know their global position.
        ``record_map`` redirects positional-map recording (per-morsel
        partial maps); default is the source's own map.
        """
        encoding = self.options.encoding
        record_map = record_map if record_map is not None else self.posmap
        record = record_map.record_row if record_anchors is not None else None
        if byte_range is None:
            # a full scan is the degenerate range: the whole data region
            byte_range = (self._data_start, os.path.getsize(self.path))
        lo, hi = byte_range
        with RawFile(self.path, device=device) as raw:
            skip_first = False
            if lo > self._data_start:
                skip_first = raw.read_at(lo - 1, 1) != b"\n"
            else:
                lo = self._data_start
            raw.seek(lo)
            pos = lo
            carry = b""
            row = start_row
            start = row
            batch = []
            done = False
            while not done:
                data = raw.read(1 << 20)
                if not data:
                    break
                parts = (carry + data).split(b"\n")
                carry = parts.pop()
                for line_bytes in parts:
                    line_start = pos
                    pos += len(line_bytes) + 1
                    if skip_first:
                        skip_first = False
                        continue
                    if line_start >= hi:
                        done = True
                        break
                    line = line_bytes.decode(encoding)
                    if not line:
                        continue
                    if record is not None:
                        record(line_start, line, record_anchors)
                    batch.append(line)
                    row += 1
                    if len(batch) >= batch_size:
                        yield start, batch
                        start = row
                        batch = []
            if carry and not done and not skip_first and pos < hi:
                # trailing line without a final newline starts at ``pos``
                line = carry.decode(encoding)
                if line:
                    if record is not None:
                        record(pos, line, record_anchors)
                    batch.append(line)
            if batch:
                yield start, batch

    def convert_batch(self, cols: list[int], cells_rows: list[list[str]]) -> list[list]:
        """Convert split rows into per-column value lists (column kernels).

        One tight list comprehension per requested column; raises
        ``ValueError``/``IndexError`` on the first dirty value, at which
        point callers with a cleaning policy fall back to row-at-a-time
        conversion for the batch.
        """
        null_tokens = self.options.null_tokens
        out: list[list] = []
        for c in cols:
            tname = self.types[c]
            if tname == "string":
                out.append([None if (v := r[c]) in null_tokens else v
                            for r in cells_rows])
            else:
                conv = _CONVERTERS[tname]
                out.append([None if (v := r[c]) in null_tokens else conv(v)
                            for r in cells_rows])
        return out

    def convert_row(self, cols: list[int], cells: list[str]) -> tuple:
        """Row-at-a-time conversion with descriptive errors (slow path)."""
        return tuple(
            self.converter(c)(cells[c] if c < len(cells) else "") for c in cols
        )

    def scan_chunks(
        self,
        fields: Sequence[str] | None = None,
        batch_size: int = 1024,
        device=None,
        clean=None,
        whole: bool = False,
        access: str | None = None,
        split=None,
        posmap_partial: PositionalMap | None = None,
        pred_fields: Sequence[str] | None = None,
        pred_kernel=None,
        index_sink=None,
        stats_sink=None,
    ):
        """Batched scan: yield :class:`~repro.core.chunk.Chunk` objects.

        The vectorized analogue of :meth:`scan`: rows are tokenized and
        converted a batch at a time with per-column kernels, and positional
        map population piggybacks on cold passes exactly as in the row path.
        ``whole`` additionally materialises full row dicts (``chunk.whole``).
        ``access`` forces ``"cold"``/``"warm"``; default picks by map state.

        ``split`` restricts the scan to one :class:`~repro.core.chunk.Morsel`
        from :meth:`scan_splits` (parallel workers). Cold byte-range morsels
        piggyback population into ``posmap_partial`` (a fresh per-worker map
        from :meth:`new_posmap_partial`); the scan coordinator merges the
        partials in morsel order via :meth:`adopt_posmap_partials`.

        ``pred_kernel`` + ``pred_fields`` push the selection vector into the
        scan (late materialization, warm navigated path only): the kernel —
        a callable over the predicate columns returning surviving row
        indexes — runs right after the predicate columns are navigated, an
        empty vector skips the batch, and the remaining columns materialise
        *only at the surviving indexes*. Yielded chunks are dense survivors;
        ``Chunk.scanned`` preserves the physical row count for accounting.

        ``index_sink`` (an :class:`~repro.indexing.IndexPartial`) requests
        value-index byproduct emission: for each of its fields, the scan
        records the column's converted values for *every* physical row of
        each batch — predicate columns are navigated densely before the
        selection kernel narrows them, so pushed-down scans emit full
        coverage for free. Batches a cleaning policy touched are skipped
        (repairs desynchronise values from physical rows), but the sink's
        row cursor still advances so morsel partials merge exactly.

        ``stats_sink`` (a :class:`~repro.stats.StatsPartial`) requests
        table-statistics byproduct emission under the same coverage rules
        as ``index_sink``: dense per-batch values for each of its fields,
        plus an ``advance`` per batch so the partial's row count is exact
        even when a batch records nothing.
        """
        from ...core.chunk import Chunk

        field_list = list(fields) if fields is not None else list(self.columns)
        cols = self.field_indexes(field_list)
        if access is None:
            access = "warm" if self.posmap.complete else "cold"
        byte_range = None
        start_row = 0
        if split is not None and split.kind != "all":
            if split.kind == "rows":
                offsets = self.posmap.row_offsets
                if split.lo >= len(offsets) or split.lo >= split.hi:
                    return
                end = offsets[split.hi] if split.hi < len(offsets) \
                    else os.path.getsize(self.path)
                byte_range = (offsets[split.lo], end)
                start_row = split.lo
            elif split.kind == "bytes":
                byte_range = (split.lo, split.hi)
            else:
                raise DataFormatError(
                    f"{self.path}: CSV scans cannot interpret a "
                    f"{split.kind!r} morsel"
                )
        all_cols = list(range(len(self.columns))) if whole else None
        conv_cols = all_cols if whole else cols
        record_anchors = None
        record_map = None
        if access == "cold" and byte_range is None:
            record_anchors = self.posmap.anchor_columns(cols)
            if posmap_partial is not None:
                # detached population (adopt-or-discard by the caller):
                # concurrent cold scans never write the shared map in place
                posmap_partial.begin_population(record_anchors)
                record_map = posmap_partial
            else:
                self.posmap.begin_population(record_anchors)
        elif access == "cold" and posmap_partial is not None \
                and split is not None and split.kind == "bytes":
            # sharded population: record into the worker's partial map
            record_anchors = self.posmap.anchor_columns(cols)
            posmap_partial.begin_population(record_anchors)
            record_map = posmap_partial
        delim = self.options.delimiter
        validate = clean is not None and getattr(clean, "validate_always", False)
        # Warm narrow projections navigate with the positional map: one jump
        # per requested field instead of tokenizing the whole (possibly very
        # wide) line. Whole-row binding and cleaning need the full cell list.
        navigate = (access == "warm" and self.posmap.complete and not whole
                    and bool(cols) and clean is None)
        push = navigate and pred_kernel is not None and pred_fields
        if push:
            pred_cols = self.field_indexes(list(pred_fields))
            pred_pos = {c: i for i, c in enumerate(pred_cols)}
        sink = index_sink
        sink_cols: dict[str, int] = {}
        if sink is not None:
            for f in sink.fields:
                c = self.col_index.get(f)
                if c is not None:
                    sink_cols[f] = c
            if not sink_cols:
                sink = None
        ssink = stats_sink
        ssink_cols: dict[str, int] = {}
        if ssink is not None:
            for f in ssink.fields:
                c = self.col_index.get(f)
                if c is not None:
                    ssink_cols[f] = c
        for start, lines in self.iter_line_batches(batch_size, device=device,
                                                   record_anchors=record_anchors,
                                                   byte_range=byte_range,
                                                   start_row=start_row,
                                                   record_map=record_map):
            if sink is not None:
                # the row cursor advances whether or not this batch records,
                # so byte-morsel partials always know their exact row count
                sink.advance(start, len(lines))
            if ssink is not None:
                ssink.advance(start, len(lines))
            if push:
                # late materialization: navigate predicate columns, run the
                # selection kernel, then fetch the rest only for survivors
                pcols = self._navigate_batch(pred_cols, lines, start)
                if sink is not None:
                    sink.record(start, {
                        f: (pcols[pred_pos[c]] if c in pred_pos
                            else self._navigate_batch([c], lines, start)[0])
                        for f, c in sink_cols.items()
                    })
                if ssink_cols:
                    ssink.record(start, {
                        f: (pcols[pred_pos[c]] if c in pred_pos
                            else self._navigate_batch([c], lines, start)[0])
                        for f, c in ssink_cols.items()
                    })
                sel = pred_kernel(*pcols)
                if not sel:
                    # account the physically scanned lines, carry no rows
                    yield Chunk(tuple(field_list), tuple([] for _ in cols),
                                0, scanned=len(lines))
                    continue
                dense = len(sel) == len(lines)
                out: list[list] = []
                for c in cols:
                    if c in pred_pos:
                        pc = pcols[pred_pos[c]]
                        out.append(pc if dense else [pc[i] for i in sel])
                    else:
                        out.append(self._navigate_rows(c, lines, start, sel))
                chunk = Chunk.from_columns(field_list, out)
                chunk.scanned = len(lines)
                yield chunk
                continue
            if navigate:
                converted = self._navigate_batch(cols, lines, start)
                if sink is not None:
                    sink.record(start, {
                        f: (converted[cols.index(c)] if c in cols
                            else self._navigate_batch([c], lines, start)[0])
                        for f, c in sink_cols.items()
                    })
                if ssink_cols:
                    ssink.record(start, {
                        f: (converted[cols.index(c)] if c in cols
                            else self._navigate_batch([c], lines, start)[0])
                        for f, c in ssink_cols.items()
                    })
                yield Chunk.from_columns(field_list, converted)
                continue
            cells_rows = [line.split(delim) for line in lines]
            columns, selection = self._convert_clean_batch(
                conv_cols, cells_rows, start, clean, validate
            )
            if sink is not None and selection is None and clean is None:
                vals = {f: columns[conv_cols.index(c)]
                        for f, c in sink_cols.items() if c in conv_cols}
                if vals:
                    sink.record(start, vals)
            if ssink_cols and selection is None and clean is None:
                svals = {f: columns[conv_cols.index(c)]
                         for f, c in ssink_cols.items() if c in conv_cols}
                if svals:
                    ssink.record(start, svals)
            if whole:
                names = self.columns
                whole_rows = [dict(zip(names, vals)) for vals in zip(*columns)] \
                    if columns else [dict() for _ in range(len(cells_rows))]
                picked = [columns[c] for c in cols]
                chunk = Chunk.from_columns(field_list, picked, whole=whole_rows)
            elif cols:
                chunk = Chunk.from_columns(field_list, columns)
            else:
                # pure-count projection: no columns, but the row count matters
                chunk = Chunk((), (), len(cells_rows))
            if selection is not None:
                # cleaning dropped rows: carry the selection vector as-is —
                # consumers honour it (selection-aware iteration / compaction
                # kernels), so the chunk crosses the boundary uncompacted
                chunk.selection = selection
            yield chunk
        if record_anchors is not None and record_map is None:
            self.posmap.finish_population()

    def _navigate_rows(self, c: int, lines: list[str], start_row: int,
                       sel: list[int]) -> list:
        """Navigate + convert one column at the selected row indexes only
        (late materialization: filtered-out rows never pay conversion)."""
        pmf = self.posmap.field_in_line
        null_tokens = self.options.null_tokens
        raw = [pmf(lines[i], start_row + i, c) for i in sel]
        tname = self.types[c]
        if tname == "string":
            return [None if v in null_tokens else v for v in raw]
        conv = _CONVERTERS[tname]
        return [None if v in null_tokens else conv(v) for v in raw]

    def _navigate_batch(self, cols: list[int], lines: list[str],
                        start_row: int) -> list[list]:
        """Warm-path column kernels: positional-map jumps, then conversion.

        Two comprehensions per column — one navigating to the raw field text
        via the map's recorded offsets, one converting — instead of a full
        ``split`` of every line.
        """
        pmf = self.posmap.field_in_line
        null_tokens = self.options.null_tokens
        out: list[list] = []
        for c in cols:
            raw = [pmf(line, start_row + i, c) for i, line in enumerate(lines)]
            tname = self.types[c]
            if tname == "string":
                out.append([None if v in null_tokens else v for v in raw])
            else:
                conv = _CONVERTERS[tname]
                out.append([None if v in null_tokens else conv(v) for v in raw])
        return out

    def _convert_clean_batch(
        self, cols: list[int], cells_rows: list[list[str]], start_row: int,
        clean, validate: bool,
    ) -> tuple[list[list], list[int] | None]:
        """Convert one batch, routing failures through the cleaning policy.

        Mirrors the row path's contract: validating policies see every row;
        otherwise the fast kernels run and only the *columns* of a dirty
        batch degrade to per-value conversion — dirty rows are repaired in
        place afterwards, so a few bad values don't tax the whole batch.

        Returns ``(columns, selection)``: when the policy dropped rows the
        columns keep their full batch length and ``selection`` lists the
        surviving row indexes (the caller compacts the chunk); otherwise
        ``selection`` is None.
        """
        if not cols:
            return [], None
        if clean is None:
            try:
                return self.convert_batch(cols, cells_rows), None
            except (ValueError, IndexError):
                # locate the offending row for a descriptive error
                max_col = max(cols)
                for i, cells in enumerate(cells_rows):
                    if len(cells) <= max_col:
                        raise DataFormatError(
                            f"{self.path}: row {start_row + i} has "
                            f"{len(cells)} cells but column "
                            f"{self.columns[max_col]!r} was requested"
                        ) from None
                    self.convert_row(cols, cells)
                raise  # pragma: no cover - the re-run above raises first
        if validate:
            rows_out: list[tuple] = []
            for i, cells in enumerate(cells_rows):
                values = clean.repair(self, start_row + i, cells, cols)
                if values is not None:
                    rows_out.append(values)
            if not rows_out:
                return [[] for _ in cols], None
            return [list(col) for col in zip(*rows_out)], None
        null_tokens = self.options.null_tokens
        columns: list[list] = []
        bad_rows: set[int] = set()
        for c in cols:
            try:
                columns.append(self.convert_batch([c], cells_rows)[0])
                continue
            except (ValueError, IndexError):
                pass
            conv = _CONVERTERS[self.types[c]]
            col_vals: list = []
            for i, r in enumerate(cells_rows):
                if c < len(r):
                    v = r[c]
                    if v in null_tokens:
                        col_vals.append(None)
                        continue
                    try:
                        col_vals.append(conv(v))
                        continue
                    except ValueError:
                        pass
                col_vals.append(None)
                bad_rows.add(i)
            columns.append(col_vals)
        if not bad_rows:
            return columns, None
        dropped: set[int] = set()
        for i in sorted(bad_rows):
            values = clean.repair(self, start_row + i, cells_rows[i], cols)
            if values is None:
                dropped.add(i)
            else:
                for j in range(len(cols)):
                    columns[j][i] = values[j]
        if not dropped:
            return columns, None
        selection = [i for i in range(len(cells_rows)) if i not in dropped]
        return columns, selection

    def new_posmap_partial(self) -> PositionalMap:
        """A fresh per-morsel recorder for sharded positional-map population."""
        return PositionalMap(len(self.columns), self.options.delimiter,
                             self.posmap.stride)

    def adopt_posmap_partials(self, partials: list[PositionalMap],
                              expect: PositionalMap | None = None) -> bool:
        """Atomically merge morsel-ordered partial maps into the source's
        map — or discard them. Adoption proceeds only if the map is still
        incomplete and (when ``expect`` is given) is still the same object
        observed at scan start — an in-place file update swaps the map, so
        a stale scan's offsets can never poison the fresh one. Returns True
        when the partials were adopted (one winner per cold-scan race)."""
        with self._aux_lock:
            target = self.posmap
            if expect is not None and target is not expect:
                return False
            if target.complete or not partials:
                return False
            target.adopt_partials(partials)
            return target.complete

    def fetch_row(self, row: int, fields: Sequence[str], device=None) -> tuple:
        """Positional access path: fetch one row's fields via the map."""
        if not self.posmap.complete:
            raise DataFormatError(
                f"{self.path}: positional access requires a populated map; scan first"
            )
        cols = self.field_indexes(list(fields))
        convs = [self.converter(c) for c in cols]
        offsets = self.posmap.row_offsets
        start = offsets[row]
        end = offsets[row + 1] - 1 if row + 1 < len(offsets) else None
        with RawFile(self.path, device=device) as raw:
            if end is None:
                raw.seek(start)
                line = raw.read().split(b"\n", 1)[0].decode(self.options.encoding)
            else:
                line = raw.read_at(start, end - start).decode(self.options.encoding)
        return tuple(conv(self.posmap.field_in_line(line, row, c))
                     for c, conv in zip(cols, convs))

    def fetch_rows(self, rows: Sequence[int], fields: Sequence[str],
                   device=None) -> list[list]:
        """Batched positional fetch: per-column value lists for ``rows``.

        One file handle serves the whole batch (unlike :meth:`fetch_row`,
        which opens per call) — this is the index-lookup access path's
        workhorse, where a query fetches many scattered rows at once.
        """
        if not self.posmap.complete:
            raise DataFormatError(
                f"{self.path}: positional access requires a populated map; scan first"
            )
        cols = self.field_indexes(list(fields))
        convs = [self.converter(c) for c in cols]
        offsets = self.posmap.row_offsets
        nrows = len(offsets)
        encoding = self.options.encoding
        out: list[list] = [[] for _ in cols]
        pmf = self.posmap.field_in_line
        with RawFile(self.path, device=device) as raw:
            for row in rows:
                start = offsets[row]
                if row + 1 < nrows:
                    line = raw.read_at(
                        start, offsets[row + 1] - 1 - start
                    ).decode(encoding)
                else:
                    raw.seek(start)
                    line = raw.read().split(b"\n", 1)[0].decode(encoding)
                for k, (c, conv) in enumerate(zip(cols, convs)):
                    out[k].append(conv(pmf(line, row, c)))
        return out

    def row_count(self) -> int:
        """Number of data rows (cheap once the positional map is complete)."""
        if self.posmap.complete:
            return len(self.posmap.row_offsets)
        count = 0
        with open(self.path, "rb") as fh:
            if self.options.header:
                fh.readline()
            for line in fh:
                if line.strip():
                    count += 1
        return count

    def invalidate_auxiliary(self) -> None:
        """Drop the positional map (file changed in place, paper §2.1).

        Swaps in a fresh map object rather than mutating: scans that
        captured the old map discard their partials at adoption time."""
        with self._aux_lock:
            self.posmap = PositionalMap(
                len(self.columns), self.options.delimiter, self.posmap.stride
            )

    def extend_for_append(
        self,
        old_size: int,
        new_size: int,
        fields: Sequence[str],
        batch_size: int = 4096,
        device=None,
    ) -> tuple[dict[str, list], int, int]:
        """Delta refresh for an append-classified mutation: O(delta) rescan.

        Re-reads only the tail bytes ``[old_size, new_size)``, records the
        appended rows onto a :meth:`~PositionalMap.clone_for_extension` of
        the complete map (same anchor set, so every existing offset stays
        valid), converts ``fields`` for just those rows, and atomically
        swaps the extended map in. The superseded map object is never
        mutated — its identity remains the adopt-or-discard guard for
        in-flight scans, and pinned generation snapshots keep navigating
        its prefix.

        Returns ``(tail_columns, tail_rows, bytes_read)``. Raises
        :class:`DataFormatError` if the map is incomplete (nothing to
        extend — the caller falls back to a cold rebuild); a conversion
        error on dirty tail rows propagates the same way, leaving the
        live map untouched.
        """
        with self._aux_lock:
            old_map = self.posmap
        if not old_map.complete:
            raise DataFormatError(
                f"{self.path}: delta refresh needs a complete positional map"
            )
        newmap = old_map.clone_for_extension()
        anchors = newmap.mapped_columns
        old_rows = len(newmap.row_offsets)
        field_list = list(fields)
        cols = self.field_indexes(field_list)
        delim = self.options.delimiter
        tail_columns: dict[str, list] = {f: [] for f in field_list}
        tail_rows = 0
        for _start, lines in self.iter_line_batches(
            batch_size, device=device, record_anchors=anchors,
            byte_range=(old_size, new_size), start_row=old_rows,
            record_map=newmap,
        ):
            if cols:
                cells_rows = [line.split(delim) for line in lines]
                converted = self.convert_batch(cols, cells_rows)
                for f, values in zip(field_list, converted):
                    tail_columns[f].extend(values)
            tail_rows += len(lines)
        newmap.finish_population()
        with self._aux_lock:
            self.posmap = newmap
        return tail_columns, tail_rows, new_size - old_size
