"""CSV input plugin: schema inference, conversion, and scan access paths.

The plugin is the format-specific component a ViDa operator invokes for each
input binding (paper Figure 3). It offers:

- schema inference (header + type sniffing over a sample),
- a **cold scan** that tokenizes rows while *building the positional map*
  (NoDB-style piggybacking), and
- a **warm scan** that navigates straight to requested fields using the map.

Parsing scope: delimiter-separated text without quoted-field delimiters
(the HBP-style exports the paper processes). ``None`` is produced for empty
fields and configured null tokens.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from ...errors import DataFormatError
from ...mcc import types as T
from ...storage.io import RawFile
from .positional_map import PositionalMap

_NULL_TOKENS = frozenset(["", "null", "NULL", "NA", "N/A", "\\N"])


@dataclass(frozen=True)
class CSVOptions:
    delimiter: str = ","
    header: bool = True
    null_tokens: frozenset = _NULL_TOKENS
    sample_rows: int = 100
    encoding: str = "utf-8"


def _parse_int(text: str) -> int:
    return int(text)


def _parse_float(text: str) -> float:
    return float(text)


def _parse_bool(text: str) -> bool:
    lowered = text.lower()
    if lowered in ("true", "t", "1", "yes"):
        return True
    if lowered in ("false", "f", "0", "no"):
        return False
    raise ValueError(f"not a bool: {text!r}")


_CONVERTERS: dict[str, Callable[[str], object]] = {
    "int": _parse_int,
    "float": _parse_float,
    "bool": _parse_bool,
    "string": str,
}


def _sniff_type(values: list[str]) -> str:
    """Infer a column type from sample values (int ⊂ float ⊂ string)."""
    non_null = [v for v in values if v not in _NULL_TOKENS]
    if not non_null:
        return "string"
    for name in ("int", "float", "bool"):
        conv = _CONVERTERS[name]
        try:
            for v in non_null:
                conv(v)
            return name
        except ValueError:
            continue
    return "string"


class CSVSource:
    """One CSV file exposed as a bag of records.

    ``columns``/``types`` may be given explicitly (from a source description)
    or inferred from the file. The positional map is owned by the source and
    persists across scans — exactly the amortisation the paper measures.
    """

    format_name = "csv"

    def __init__(
        self,
        path: str | os.PathLike,
        options: CSVOptions | None = None,
        columns: Sequence[str] | None = None,
        types: Sequence[str] | None = None,
        posmap_stride: int = 8,
    ):
        self.path = os.fspath(path)
        self.options = options or CSVOptions()
        if columns is not None and types is not None:
            self.columns = list(columns)
            self.types = list(types)
        else:
            self.columns, self.types = self._infer_schema()
        if len(self.columns) != len(self.types):
            raise DataFormatError(
                f"{self.path}: {len(self.columns)} columns but {len(self.types)} types"
            )
        self.posmap = PositionalMap(len(self.columns), self.options.delimiter,
                                    stride=posmap_stride)
        self.col_index = {name: i for i, name in enumerate(self.columns)}
        self._data_start = self._header_length()

    # -- schema ----------------------------------------------------------------

    def _header_length(self) -> int:
        if not self.options.header:
            return 0
        with open(self.path, "rb") as fh:
            first = fh.readline()
        return len(first)

    def _infer_schema(self) -> tuple[list[str], list[str]]:
        opts = self.options
        with open(self.path, "r", encoding=opts.encoding) as fh:
            first = fh.readline().rstrip("\n")
            if not first:
                raise DataFormatError(f"{self.path}: empty CSV file")
            cells = first.split(opts.delimiter)
            if opts.header:
                names = cells
                sample_source = fh
            else:
                names = [f"c{i}" for i in range(len(cells))]
                sample_source = None
            samples: list[list[str]] = [[] for _ in names]
            if sample_source is None:
                for i, cell in enumerate(cells):
                    samples[i].append(cell)
            rows_read = 0
            for line in fh:
                line = line.rstrip("\n")
                if not line:
                    continue
                for i, cell in enumerate(line.split(opts.delimiter)[: len(names)]):
                    samples[i].append(cell)
                rows_read += 1
                if rows_read >= opts.sample_rows:
                    break
        types = [_sniff_type(col) for col in samples]
        return names, types

    def element_type(self) -> T.RecordType:
        prim = {"int": T.INT, "float": T.FLOAT, "bool": T.BOOL, "string": T.STRING}
        return T.RecordType(tuple((n, prim[t]) for n, t in zip(self.columns, self.types)))

    def schema(self) -> T.CollectionType:
        return T.bag_of(self.element_type())

    # -- conversion --------------------------------------------------------------

    def converter(self, col: int) -> Callable[[str], object]:
        conv = _CONVERTERS[self.types[col]]
        null_tokens = self.options.null_tokens

        def convert(text: str):
            if text in null_tokens:
                return None
            try:
                return conv(text)
            except ValueError as exc:
                raise DataFormatError(
                    f"{self.path}: cannot parse {text!r} as {self.types[col]} "
                    f"(column {self.columns[col]!r})"
                ) from exc

        return convert

    def field_indexes(self, fields: Sequence[str]) -> list[int]:
        try:
            return [self.col_index[f] for f in fields]
        except KeyError as exc:
            raise DataFormatError(
                f"{self.path}: unknown column {exc.args[0]!r}; "
                f"available: {', '.join(self.columns)}"
            ) from None

    # -- access paths --------------------------------------------------------------

    def scan(
        self,
        fields: Sequence[str] | None = None,
        device=None,
        clean=None,
    ) -> Iterator[tuple]:
        """Yield tuples of converted values for ``fields`` (None = all).

        Dispatches to the warm (map-navigated) or cold (map-building) scan.
        ``clean`` is an optional :class:`repro.cleaning.CleaningPolicy`.
        """
        field_list = list(fields) if fields is not None else list(self.columns)
        cols = self.field_indexes(field_list)
        if self.posmap.complete:
            return self._warm_scan(cols, device, clean)
        return self._cold_scan(cols, device, clean)

    def _cold_scan(self, cols: list[int], device, clean) -> Iterator[tuple]:
        """Full tokenizing scan; piggybacks positional-map population."""
        anchors = self.posmap.anchor_columns(cols)
        self.posmap.begin_population(anchors)
        convs = [self.converter(c) for c in cols]
        delim = self.options.delimiter
        encoding = self.options.encoding
        validate = clean is not None and getattr(clean, "validate_always", False)
        with RawFile(self.path, device=device) as raw:
            row = 0
            for offset, line_bytes in raw.iter_lines():
                if offset < self._data_start:
                    continue
                line = line_bytes.decode(encoding)
                if not line:
                    continue
                self.posmap.record_row(offset, line, anchors)
                cells = line.split(delim)
                if validate:
                    values = clean.repair(self, row, cells, cols)
                    row += 1
                    if values is None:
                        continue
                    yield values
                    continue
                try:
                    values = tuple(conv(cells[c]) for c, conv in zip(cols, convs))
                except (DataFormatError, IndexError) as exc:
                    if clean is not None:
                        repaired = clean.handle_row(row, cells, cols, convs, self, exc)
                        if repaired is None:
                            row += 1
                            continue
                        values = repaired
                    else:
                        raise
                yield values
                row += 1
        self.posmap.finish_population()

    def _warm_scan(self, cols: list[int], device, clean) -> Iterator[tuple]:
        """Map-navigated scan: jump to recorded field offsets, no full split."""
        convs = [self.converter(c) for c in cols]
        pm = self.posmap
        encoding = self.options.encoding
        validate = clean is not None and getattr(clean, "validate_always", False)
        with RawFile(self.path, device=device) as raw:
            row = 0
            for offset, line_bytes in raw.iter_lines():
                if offset < self._data_start:
                    continue
                line = line_bytes.decode(encoding)
                if not line:
                    continue
                if validate:
                    values = clean.repair(self, row, line.split(self.options.delimiter), cols)
                    row += 1
                    if values is None:
                        continue
                    yield values
                    continue
                try:
                    values = tuple(
                        conv(pm.field_in_line(line, row, c))
                        for c, conv in zip(cols, convs)
                    )
                except DataFormatError as exc:
                    if clean is not None:
                        cells = line.split(self.options.delimiter)
                        repaired = clean.handle_row(row, cells, cols, convs, self, exc)
                        if repaired is None:
                            row += 1
                            continue
                        values = repaired
                    else:
                        raise
                yield values
                row += 1

    def fetch_row(self, row: int, fields: Sequence[str], device=None) -> tuple:
        """Positional access path: fetch one row's fields via the map."""
        if not self.posmap.complete:
            raise DataFormatError(
                f"{self.path}: positional access requires a populated map; scan first"
            )
        cols = self.field_indexes(list(fields))
        convs = [self.converter(c) for c in cols]
        offsets = self.posmap.row_offsets
        start = offsets[row]
        end = offsets[row + 1] - 1 if row + 1 < len(offsets) else None
        with RawFile(self.path, device=device) as raw:
            if end is None:
                raw.seek(start)
                line = raw.read().split(b"\n", 1)[0].decode(self.options.encoding)
            else:
                line = raw.read_at(start, end - start).decode(self.options.encoding)
        return tuple(conv(self.posmap.field_in_line(line, row, c))
                     for c, conv in zip(cols, convs))

    def row_count(self) -> int:
        """Number of data rows (cheap once the positional map is complete)."""
        if self.posmap.complete:
            return len(self.posmap.row_offsets)
        count = 0
        with open(self.path, "rb") as fh:
            if self.options.header:
                fh.readline()
            for line in fh:
                if line.strip():
                    count += 1
        return count

    def invalidate_auxiliary(self) -> None:
        """Drop the positional map (file changed in place, paper §2.1)."""
        self.posmap = PositionalMap(
            len(self.columns), self.options.delimiter, self.posmap.stride
        )
