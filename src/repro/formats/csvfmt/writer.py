"""CSV writing — used by dataset generators and by the ETL flattening step."""

from __future__ import annotations

import os
from typing import Iterable, Sequence


def format_value(value: object) -> str:
    """Render one value the way our CSV dialect expects (empty = null)."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def write_csv(
    path: str | os.PathLike,
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
    delimiter: str = ",",
    header: bool = True,
) -> int:
    """Write ``rows`` to ``path``; returns the number of data rows written."""
    count = 0
    with open(path, "w", encoding="utf-8", newline="") as fh:
        if header:
            fh.write(delimiter.join(columns) + "\n")
        for row in rows:
            fh.write(delimiter.join(format_value(v) for v in row) + "\n")
            count += 1
    return count


def append_csv(
    path: str | os.PathLike,
    rows: Iterable[Sequence[object]],
    delimiter: str = ",",
) -> int:
    """Append data rows (no header) — models the paper's append-like workloads."""
    count = 0
    with open(path, "a", encoding="utf-8", newline="") as fh:
        for row in rows:
            fh.write(delimiter.join(format_value(v) for v in row) + "\n")
            count += 1
    return count
