"""Storage substrate: tracked raw-file I/O, simulated devices, slotted pages,
and a buffer pool. Raw-format plugins and the warehouse baselines build on
this layer.
"""

from .buffer import BufferPool, BufferStats
from .device import (
    DRAM,
    FLASH,
    HDD,
    PCM,
    PROFILES,
    DeviceProfile,
    DeviceStats,
    PlacementPlan,
    StorageDevice,
)
from .io import FileFingerprint, IOStats, RawFile, file_size
from .pages import PAGE_SIZE, HeapFile, SlottedPage, decode_tuple, encode_tuple

__all__ = [
    "BufferPool", "BufferStats", "DeviceProfile", "DeviceStats", "DRAM",
    "FLASH", "FileFingerprint", "HDD", "HeapFile", "IOStats", "PAGE_SIZE",
    "PCM", "PROFILES", "PlacementPlan", "RawFile", "SlottedPage",
    "StorageDevice", "decode_tuple", "encode_tuple", "file_size",
]
