"""Tracked raw-file access.

All raw-data reads in the library flow through :class:`RawFile` so benchmarks
can report exactly how many bytes/seeks each strategy caused (the paper's
Section 6 discussion attributes most of ViDa's cumulative time to *initial*
raw accesses — we measure that directly). Optionally a simulated
:class:`~repro.storage.device.StorageDevice` is charged for each access.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from .device import StorageDevice


@dataclass
class IOStats:
    """Byte/seek/call counters for one file (or aggregated)."""

    bytes_read: int = 0
    read_calls: int = 0
    seeks: int = 0

    def add(self, other: "IOStats") -> None:
        self.bytes_read += other.bytes_read
        self.read_calls += other.read_calls
        self.seeks += other.seeks


@dataclass(frozen=True)
class FileFingerprint:
    """Identity of a file's content at registration time.

    ViDa handles in-place updates by dropping auxiliary structures whose
    underlying file changed (paper Section 2.1); a fingerprint mismatch is
    the trigger.
    """

    size: int
    mtime_ns: int

    @staticmethod
    def of(path: str | os.PathLike) -> "FileFingerprint":
        st = os.stat(path)
        return FileFingerprint(st.st_size, st.st_mtime_ns)

    def matches(self, path: str | os.PathLike) -> bool:
        try:
            return FileFingerprint.of(path) == self
        except FileNotFoundError:
            return False


class RawFile:
    """A byte-oriented file handle with read/seek accounting.

    Not thread-safe; one instance per scan. Supports the context-manager
    protocol. ``device`` (optional) is charged simulated latency/energy.
    """

    def __init__(self, path: str | os.PathLike, device: StorageDevice | None = None):
        self.path = os.fspath(path)
        self._fh = open(self.path, "rb")
        self.stats = IOStats()
        self.device = device
        self._pos = 0

    def __enter__(self) -> "RawFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    @property
    def size(self) -> int:
        return os.fstat(self._fh.fileno()).st_size

    def seek(self, offset: int) -> None:
        if offset != self._pos:
            self.stats.seeks += 1
        self._fh.seek(offset)
        self._pos = offset

    def tell(self) -> int:
        return self._pos

    def read(self, nbytes: int = -1) -> bytes:
        data = self._fh.read(nbytes)
        self.stats.bytes_read += len(data)
        self.stats.read_calls += 1
        if self.device is not None:
            self.device.read(len(data), offset=self._pos)
        self._pos += len(data)
        return data

    def read_at(self, offset: int, nbytes: int) -> bytes:
        """Positioned read (seek + read), the access pattern of positional maps."""
        self.seek(offset)
        return self.read(nbytes)

    def iter_lines(self, chunk_size: int = 1 << 20):
        """Yield ``(start_offset, line_bytes)`` pairs, newline stripped.

        Reads in large chunks (sequential pattern); offsets are byte
        positions of each line start, suitable for positional maps.
        """
        offset = 0
        carry = b""
        self.seek(0)
        while True:
            chunk = self.read(chunk_size)
            if not chunk:
                break
            data = carry + chunk
            lines = data.split(b"\n")
            carry = lines.pop()
            for line in lines:
                yield offset, line
                offset += len(line) + 1
        if carry:
            yield offset, carry


def file_size(path: str | os.PathLike) -> int:
    """Size of ``path`` in bytes (convenience for benchmark reporting)."""
    return os.stat(path).st_size
