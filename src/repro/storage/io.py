"""Tracked raw-file access.

All raw-data reads in the library flow through :class:`RawFile` so benchmarks
can report exactly how many bytes/seeks each strategy caused (the paper's
Section 6 discussion attributes most of ViDa's cumulative time to *initial*
raw accesses — we measure that directly). Optionally a simulated
:class:`~repro.storage.device.StorageDevice` is charged for each access.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field

from .device import StorageDevice

#: bytes of file head/tail folded into a :class:`FileFingerprint` content
#: hash — bounded, so fingerprinting a multi-GB file stays O(1)
FINGERPRINT_REGION = 64 << 10


@dataclass
class IOStats:
    """Byte/seek/call counters for one file (or aggregated)."""

    bytes_read: int = 0
    read_calls: int = 0
    seeks: int = 0

    def add(self, other: "IOStats") -> None:
        self.bytes_read += other.bytes_read
        self.read_calls += other.read_calls
        self.seeks += other.seeks


def _region_hash(fh, offset: int, nbytes: int) -> str:
    fh.seek(offset)
    return hashlib.blake2b(fh.read(nbytes), digest_size=16).hexdigest()


@dataclass(frozen=True)
class FileFingerprint:
    """Identity of a file's content at registration time.

    ViDa handles in-place updates by dropping (or delta-extending)
    auxiliary structures whose underlying file changed (paper Section
    2.1); a fingerprint mismatch is the trigger. ``size``/``mtime_ns``
    alone miss same-size rewrites under a frozen mtime (coarse-mtime
    filesystems, fast tests), so the fingerprint also folds in bounded
    blake2b hashes of the file's head and tail (``FINGERPRINT_REGION``
    bytes each) and whether the file ends in a newline — the latter is
    what append classification needs to know that the last record was
    complete when the fingerprint was taken.
    """

    size: int
    mtime_ns: int
    head_hash: str = ""
    tail_hash: str = ""
    ends_nl: bool = False

    @staticmethod
    def of(path: str | os.PathLike) -> "FileFingerprint":
        st = os.stat(path)
        size = st.st_size
        with open(path, "rb") as fh:
            head = _region_hash(fh, 0, min(size, FINGERPRINT_REGION))
            tail_lo = max(0, size - FINGERPRINT_REGION)
            tail = _region_hash(fh, tail_lo, size - tail_lo)
            ends_nl = False
            if size:
                fh.seek(size - 1)
                ends_nl = fh.read(1) == b"\n"
        return FileFingerprint(size, st.st_mtime_ns, head, tail, ends_nl)

    def stat_matches(self, path: str | os.PathLike) -> bool:
        """Cheap size+mtime comparison (no content read) — the mid-scan
        adoption gate uses it to drop partials of a file that visibly
        changed while the scan ran."""
        try:
            st = os.stat(path)
        except FileNotFoundError:
            return False
        return st.st_size == self.size and st.st_mtime_ns == self.mtime_ns

    def matches(self, path: str | os.PathLike) -> bool:
        """Full freshness check: a stat mismatch is a definite change; a
        stat *match* is confirmed against the head/tail content hashes so
        an in-place rewrite under a frozen mtime is still caught."""
        try:
            st = os.stat(path)
            if st.st_size != self.size or st.st_mtime_ns != self.mtime_ns:
                return False
            return FileFingerprint.of(path) == self
        except FileNotFoundError:
            return False

    def is_prefix_of(self, path: str | os.PathLike) -> bool:
        """True when this fingerprint's content survives as a byte-prefix
        of the (larger) file now at ``path`` — the append-classification
        rule. Verified by re-hashing the regions this fingerprint hashed,
        over the file's *current* bytes at the old offsets."""
        try:
            st = os.stat(path)
        except FileNotFoundError:
            return False
        if st.st_size <= self.size:
            return False
        try:
            with open(path, "rb") as fh:
                head = _region_hash(fh, 0, min(self.size, FINGERPRINT_REGION))
                if head != self.head_hash:
                    return False
                tail_lo = max(0, self.size - FINGERPRINT_REGION)
                return _region_hash(fh, tail_lo, self.size - tail_lo) \
                    == self.tail_hash
        except OSError:
            return False


class RawFile:
    """A byte-oriented file handle with read/seek accounting.

    Not thread-safe; one instance per scan. Supports the context-manager
    protocol. ``device`` (optional) is charged simulated latency/energy.
    """

    def __init__(self, path: str | os.PathLike, device: StorageDevice | None = None):
        self.path = os.fspath(path)
        self._fh = open(self.path, "rb")
        self.stats = IOStats()
        self.device = device
        self._pos = 0

    def __enter__(self) -> "RawFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    @property
    def size(self) -> int:
        return os.fstat(self._fh.fileno()).st_size

    def seek(self, offset: int) -> None:
        if offset != self._pos:
            self.stats.seeks += 1
        self._fh.seek(offset)
        self._pos = offset

    def tell(self) -> int:
        return self._pos

    def read(self, nbytes: int = -1) -> bytes:
        data = self._fh.read(nbytes)
        self.stats.bytes_read += len(data)
        self.stats.read_calls += 1
        if self.device is not None:
            self.device.read(len(data), offset=self._pos)
        self._pos += len(data)
        return data

    def read_at(self, offset: int, nbytes: int) -> bytes:
        """Positioned read (seek + read), the access pattern of positional maps."""
        self.seek(offset)
        return self.read(nbytes)

    def iter_lines(self, chunk_size: int = 1 << 20):
        """Yield ``(start_offset, line_bytes)`` pairs, newline stripped.

        Reads in large chunks (sequential pattern); offsets are byte
        positions of each line start, suitable for positional maps.
        """
        offset = 0
        carry = b""
        self.seek(0)
        while True:
            chunk = self.read(chunk_size)
            if not chunk:
                break
            data = carry + chunk
            lines = data.split(b"\n")
            carry = lines.pop()
            for line in lines:
                yield offset, line
                offset += len(line) + 1
        if carry:
            yield offset, carry


def file_size(path: str | os.PathLike) -> int:
    """Size of ``path`` in bytes (convenience for benchmark reporting)."""
    return os.stat(path).st_size
