"""Simulated storage devices with cost and energy accounting (paper Section 7,
"Integrating new storage technologies" / "Energy Awareness").

The paper's main experiments run on real disks; this repo's main benchmarks
likewise use real files. The *device simulation* here exists for the
Section-7 extension study: it models seek/transfer latency and energy of
HDD, flash (SSD), PCM, and DRAM so placement strategies (where to put raw
data, positional maps, and caches) can be compared deterministically on a
laptop. Simulated delays are **accounted, not slept** by default, so benches
stay fast; ``realtime=True`` opts into actual sleeping.

Profiles are rough but defensible magnitudes (c. 2015 hardware):

=========  ==========  ============  ================  ============
device     seek (ms)   MB/s (read)   MB/s (write)      nJ per byte
=========  ==========  ============  ================  ============
hdd        8.5         150           140               ~2.0
flash      0.08        500           250 (rand. slow)  ~0.5
pcm        0.005       900           300               ~0.3
dram       0.0005      10000         10000             ~0.05
=========  ==========  ============  ================  ============
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import StorageError


@dataclass(frozen=True)
class DeviceProfile:
    """Latency/bandwidth/energy parameters of a storage technology."""

    name: str
    seek_ms: float
    read_mb_s: float
    write_mb_s: float
    energy_nj_per_byte: float
    #: penalty multiplier for random (non-appending) writes; models the
    #: flash erase-block effect the paper proposes to avoid by converting
    #: random writes into sequential ones.
    random_write_penalty: float = 1.0

    def read_seconds(self, nbytes: int, seeks: int = 0) -> float:
        return seeks * self.seek_ms / 1e3 + nbytes / (self.read_mb_s * 1e6)

    def write_seconds(self, nbytes: int, seeks: int = 0, random: bool = False) -> float:
        base = seeks * self.seek_ms / 1e3 + nbytes / (self.write_mb_s * 1e6)
        return base * (self.random_write_penalty if random else 1.0)

    def energy_joules(self, nbytes: int) -> float:
        return nbytes * self.energy_nj_per_byte / 1e9


HDD = DeviceProfile("hdd", seek_ms=8.5, read_mb_s=150, write_mb_s=140,
                    energy_nj_per_byte=2.0, random_write_penalty=1.2)
FLASH = DeviceProfile("flash", seek_ms=0.08, read_mb_s=500, write_mb_s=250,
                      energy_nj_per_byte=0.5, random_write_penalty=8.0)
PCM = DeviceProfile("pcm", seek_ms=0.005, read_mb_s=900, write_mb_s=300,
                    energy_nj_per_byte=0.3, random_write_penalty=1.0)
DRAM = DeviceProfile("dram", seek_ms=0.0005, read_mb_s=10000, write_mb_s=10000,
                     energy_nj_per_byte=0.05, random_write_penalty=1.0)

PROFILES = {p.name: p for p in (HDD, FLASH, PCM, DRAM)}


@dataclass
class DeviceStats:
    """Accumulated access statistics of a simulated device."""

    bytes_read: int = 0
    bytes_written: int = 0
    read_seeks: int = 0
    write_seeks: int = 0
    random_writes: int = 0
    simulated_seconds: float = 0.0
    energy_joules: float = 0.0

    def merged(self, other: "DeviceStats") -> "DeviceStats":
        return DeviceStats(
            self.bytes_read + other.bytes_read,
            self.bytes_written + other.bytes_written,
            self.read_seeks + other.read_seeks,
            self.write_seeks + other.write_seeks,
            self.random_writes + other.random_writes,
            self.simulated_seconds + other.simulated_seconds,
            self.energy_joules + other.energy_joules,
        )


class StorageDevice:
    """A simulated device accumulating cost/energy for reads and writes.

    Used by the Section-7 placement benchmarks; the object is cheap and
    side-effect free unless ``realtime=True`` (then it actually sleeps the
    simulated latency, for demos).
    """

    def __init__(self, profile: DeviceProfile | str, realtime: bool = False):
        if isinstance(profile, str):
            try:
                profile = PROFILES[profile]
            except KeyError:
                raise StorageError(
                    f"unknown device profile {profile!r}; choose from {sorted(PROFILES)}"
                ) from None
        self.profile = profile
        self.realtime = realtime
        self.stats = DeviceStats()
        self._last_offset = 0

    def read(self, nbytes: int, offset: int | None = None) -> float:
        """Account a read of ``nbytes`` at ``offset`` (None = sequential)."""
        seeks = 0
        if offset is not None and offset != self._last_offset:
            seeks = 1
        if offset is not None:
            self._last_offset = offset + nbytes
        else:
            self._last_offset += nbytes
        seconds = self.profile.read_seconds(nbytes, seeks)
        self.stats.bytes_read += nbytes
        self.stats.read_seeks += seeks
        self.stats.simulated_seconds += seconds
        self.stats.energy_joules += self.profile.energy_joules(nbytes)
        if self.realtime and seconds > 0:
            time.sleep(seconds)
        return seconds

    def write(self, nbytes: int, offset: int | None = None) -> float:
        """Account a write; non-sequential offsets count as random writes."""
        seeks = 0
        random = False
        if offset is not None and offset != self._last_offset:
            seeks = 1
            random = True
        if offset is not None:
            self._last_offset = offset + nbytes
        else:
            self._last_offset += nbytes
        seconds = self.profile.write_seconds(nbytes, seeks, random=random)
        self.stats.bytes_written += nbytes
        self.stats.write_seeks += seeks
        self.stats.random_writes += 1 if random else 0
        self.stats.simulated_seconds += seconds
        self.stats.energy_joules += self.profile.energy_joules(nbytes)
        if self.realtime and seconds > 0:
            time.sleep(seconds)
        return seconds

    def reset(self) -> None:
        self.stats = DeviceStats()
        self._last_offset = 0


@dataclass
class PlacementPlan:
    """Assignment of ViDa artifact classes to devices (Section 7 study).

    Artifact classes: ``raw`` (the raw files), ``posmap`` (positional
    structures), ``cache`` (ViDa's data caches), ``temp`` (query scratch).
    """

    raw: StorageDevice
    posmap: StorageDevice
    cache: StorageDevice
    temp: StorageDevice

    def total_seconds(self) -> float:
        return sum(d.stats.simulated_seconds for d in self._devices())

    def total_energy(self) -> float:
        return sum(d.stats.energy_joules for d in self._devices())

    def _devices(self) -> tuple[StorageDevice, ...]:
        # A device object may back several classes; count each once.
        seen: list[StorageDevice] = []
        for dev in (self.raw, self.posmap, self.cache, self.temp):
            if all(dev is not s for s in seen):
                seen.append(dev)
        return tuple(seen)
