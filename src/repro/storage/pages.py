"""Slotted pages and heap files — the row store's on-disk substrate.

The paper contrasts ViDa with engines built around "hard-coded data
structures — in a row-store, this structure is the database page". This
module implements that structure faithfully: fixed-size slotted pages with a
slot directory growing from the tail, a heap file of pages, and binary tuple
encoding, so the row-store baseline pays realistic load costs (parse +
encode + page packing) and query costs (page iteration + decode).
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import Sequence

from ..errors import StorageError

PAGE_SIZE = 8192
_HEADER = struct.Struct("<HH")  # (slot_count, free_offset)
_SLOT = struct.Struct("<HH")    # (tuple_offset, tuple_length)


class SlottedPage:
    """A fixed-size page with a slot directory (PostgreSQL-style).

    Layout: ``[header][tuple data → grows right][... free ...][← slot dir]``.
    """

    def __init__(self, data: bytearray | None = None):
        if data is None:
            self.data = bytearray(PAGE_SIZE)
            self.slot_count = 0
            self.free_offset = _HEADER.size
            self._sync_header()
        else:
            if len(data) != PAGE_SIZE:
                raise StorageError(f"page must be {PAGE_SIZE} bytes, got {len(data)}")
            self.data = bytearray(data)
            self.slot_count, self.free_offset = _HEADER.unpack_from(self.data, 0)

    def _sync_header(self) -> None:
        _HEADER.pack_into(self.data, 0, self.slot_count, self.free_offset)

    def free_space(self) -> int:
        slot_dir_start = PAGE_SIZE - (self.slot_count + 1) * _SLOT.size
        return max(0, slot_dir_start - self.free_offset)

    def insert(self, payload: bytes) -> int | None:
        """Insert ``payload``; return its slot id or None when full."""
        need = len(payload)
        if need > self.free_space():
            return None
        offset = self.free_offset
        self.data[offset:offset + need] = payload
        slot_id = self.slot_count
        slot_pos = PAGE_SIZE - (slot_id + 1) * _SLOT.size
        _SLOT.pack_into(self.data, slot_pos, offset, need)
        self.slot_count += 1
        self.free_offset += need
        self._sync_header()
        return slot_id

    def read(self, slot_id: int) -> bytes:
        if not 0 <= slot_id < self.slot_count:
            raise StorageError(f"slot {slot_id} out of range (page has {self.slot_count})")
        slot_pos = PAGE_SIZE - (slot_id + 1) * _SLOT.size
        offset, length = _SLOT.unpack_from(self.data, slot_pos)
        return bytes(self.data[offset:offset + length])

    def __iter__(self):
        for slot_id in range(self.slot_count):
            yield self.read(slot_id)

    def __len__(self) -> int:
        return self.slot_count


class HeapFile:
    """An append-oriented file of slotted pages with sequential scan support."""

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        if not os.path.exists(self.path):
            with open(self.path, "wb"):
                pass
        self._append_page: SlottedPage | None = None
        self._append_page_no: int | None = None
        self._read_fh = None  # persistent read handle (a DBMS keeps fds open)

    def _reader(self):
        if self._read_fh is None or self._read_fh.closed:
            self._read_fh = open(self.path, "rb")
        return self._read_fh

    def close(self) -> None:
        if self._read_fh is not None and not self._read_fh.closed:
            self._read_fh.close()

    @property
    def page_count(self) -> int:
        return os.stat(self.path).st_size // PAGE_SIZE

    def read_page(self, page_no: int) -> SlottedPage:
        if self._append_page_no == page_no and self._append_page is not None:
            return self._append_page
        fh = self._reader()
        fh.seek(page_no * PAGE_SIZE)
        data = fh.read(PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            raise StorageError(f"short page read at page {page_no} of {self.path}")
        return SlottedPage(bytearray(data))

    def append(self, payload: bytes) -> tuple[int, int]:
        """Append a tuple, returning its (page_no, slot_id) record id."""
        if len(payload) > PAGE_SIZE - _HEADER.size - _SLOT.size:
            raise StorageError(f"tuple of {len(payload)} bytes exceeds page capacity")
        if self._append_page is None:
            self._append_page = SlottedPage()
            self._append_page_no = self.page_count
        slot = self._append_page.insert(payload)
        if slot is None:
            self.flush()
            self._append_page = SlottedPage()
            self._append_page_no = self.page_count
            slot = self._append_page.insert(payload)
            assert slot is not None
        return (self._append_page_no, slot)  # type: ignore[return-value]

    def flush(self) -> None:
        """Write the in-progress append page to disk."""
        if self._append_page is None or self._append_page_no is None:
            return
        with open(self.path, "r+b") as fh:
            fh.seek(self._append_page_no * PAGE_SIZE)
            fh.write(self._append_page.data)
        self._append_page = None
        self._append_page_no = None

    def scan(self):
        """Yield every tuple payload, page by page (with rid)."""
        self.flush()
        for page_no in range(self.page_count):
            page = self.read_page(page_no)
            for slot_id in range(len(page)):
                yield (page_no, slot_id), page.read(slot_id)

    def fetch(self, rid: tuple[int, int]) -> bytes:
        page_no, slot_id = rid
        self.flush()
        return self.read_page(page_no).read(slot_id)


# ---------------------------------------------------------------------------
# Binary tuple encoding (row store wire format)
# ---------------------------------------------------------------------------

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

_TYPE_CODES = {"int": 0, "float": 1, "string": 2, "bool": 3, "null": 4}


def encode_tuple(values: tuple, types: tuple[str, ...]) -> bytes:
    """Encode a tuple per its declared column types (nullable everywhere)."""
    parts: list[bytes] = []
    null_bitmap = 0
    for i, v in enumerate(values):
        if v is None:
            null_bitmap |= 1 << i
    parts.append(_U32.pack(null_bitmap & 0xFFFFFFFF))
    if len(values) > 32:
        # wide tuples: extend bitmap in 32-column units
        extra = (len(values) - 1) // 32
        for unit in range(1, extra + 1):
            bits = 0
            for i in range(unit * 32, min(len(values), (unit + 1) * 32)):
                if values[i] is None:
                    bits |= 1 << (i - unit * 32)
            parts.append(_U32.pack(bits))
    for v, t in zip(values, types):
        if v is None:
            continue
        if t == "int":
            parts.append(_I64.pack(int(v)))
        elif t == "float":
            parts.append(_F64.pack(float(v)))
        elif t == "bool":
            parts.append(b"\x01" if v else b"\x00")
        else:  # string
            raw = str(v).encode("utf-8")
            parts.append(_U32.pack(len(raw)))
            parts.append(raw)
    return b"".join(parts)


def decode_fields(payload: bytes, types: tuple[str, ...],
                  indexes: Sequence[int]) -> tuple:
    """Decode only ``indexes`` (ascending output in given order), skipping
    other columns and stopping at the last needed one — the "tuple deform up
    to the max required attnum" behaviour of real row stores.
    """
    ncols = len(types)
    nunits = 1 + (ncols - 1) // 32 if ncols > 32 else 1
    bitmaps = [_U32.unpack_from(payload, i * 4)[0] for i in range(nunits)]
    pos = nunits * 4
    wanted = set(indexes)
    last = max(wanted) if wanted else -1
    found: dict[int, object] = {}
    for i in range(last + 1):
        if bitmaps[i // 32] >> (i % 32) & 1:
            if i in wanted:
                found[i] = None
            continue
        t = types[i]
        if i in wanted:
            if t == "int":
                found[i] = _I64.unpack_from(payload, pos)[0]
                pos += 8
            elif t == "float":
                found[i] = _F64.unpack_from(payload, pos)[0]
                pos += 8
            elif t == "bool":
                found[i] = payload[pos] == 1
                pos += 1
            else:
                (length,) = _U32.unpack_from(payload, pos)
                pos += 4
                found[i] = payload[pos:pos + length].decode("utf-8")
                pos += length
        else:
            if t == "int" or t == "float":
                pos += 8
            elif t == "bool":
                pos += 1
            else:
                (length,) = _U32.unpack_from(payload, pos)
                pos += 4 + length
    return tuple(found[i] for i in indexes)


def decode_tuple(payload: bytes, types: tuple[str, ...]) -> tuple:
    """Decode a tuple encoded by :func:`encode_tuple`."""
    ncols = len(types)
    nunits = 1 + (ncols - 1) // 32 if ncols > 32 else 1
    bitmaps = [_U32.unpack_from(payload, i * 4)[0] for i in range(nunits)]
    pos = nunits * 4
    out: list = []
    for i, t in enumerate(types):
        if bitmaps[i // 32] >> (i % 32) & 1:
            out.append(None)
            continue
        if t == "int":
            out.append(_I64.unpack_from(payload, pos)[0])
            pos += 8
        elif t == "float":
            out.append(_F64.unpack_from(payload, pos)[0])
            pos += 8
        elif t == "bool":
            out.append(payload[pos] == 1)
            pos += 1
        else:
            (length,) = _U32.unpack_from(payload, pos)
            pos += 4
            out.append(payload[pos:pos + length].decode("utf-8"))
            pos += length
    return tuple(out)
