"""A small LRU buffer pool over heap files.

The row-store baseline reads pages through this pool, so repeated scans of a
hot table are memory-speed (as in a warmed-up DBMS) while cold scans pay real
file I/O — matching the cost structure the paper compares ViDa against.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .pages import HeapFile, SlottedPage


@dataclass
class BufferStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferPool:
    """LRU cache of (file, page_no) → :class:`SlottedPage`."""

    def __init__(self, capacity_pages: int = 1024):
        if capacity_pages <= 0:
            raise ValueError("buffer pool needs capacity >= 1 page")
        self.capacity = capacity_pages
        self._pages: OrderedDict[tuple[str, int], SlottedPage] = OrderedDict()
        self.stats = BufferStats()

    def get(self, heap: HeapFile, page_no: int) -> SlottedPage:
        key = (heap.path, page_no)
        page = self._pages.get(key)
        if page is not None:
            self._pages.move_to_end(key)
            self.stats.hits += 1
            return page
        self.stats.misses += 1
        page = heap.read_page(page_no)
        self._pages[key] = page
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
        return page

    def scan(self, heap: HeapFile):
        """Buffered sequential scan yielding (rid, payload)."""
        heap.flush()
        for page_no in range(heap.page_count):
            page = self.get(heap, page_no)
            for slot_id in range(len(page)):
                yield (page_no, slot_id), page.read(slot_id)

    def invalidate(self, heap_path: str) -> None:
        """Drop all cached pages of one heap file (after file replacement)."""
        for key in [k for k in self._pages if k[0] == heap_path]:
            del self._pages[key]

    def clear(self) -> None:
        self._pages.clear()
