"""ViDa: Just-In-Time Data Virtualization (CIDR 2015) — Python reproduction.

Public API:

- :class:`ViDa` — the session facade: register raw files, run queries.
- :class:`EngineContext` — shared engine state (cache, posmaps, indexes,
  compile cache) many :class:`ViDa` tenant sessions multiplex over.
- :mod:`repro.server` — asyncio NDJSON query server over one context.
- :mod:`repro.mcc` — the monoid comprehension calculus (parse/normalize/…).
- :mod:`repro.formats` — raw-format plugins (CSV, JSON, arrays, XLS).
- :mod:`repro.warehouse` — the baseline systems the paper compares against.
- :mod:`repro.workloads` — the Human Brain Project synthetic workload.
- :mod:`repro.cleaning` — scan-time data-cleaning policies.
- :mod:`repro.storage` — tracked I/O and simulated storage devices.
"""

from .core.engine import EngineContext, EngineStats, QuotaCacheView
from .core.session import QueryResult, QueryStats, ViDa
from .errors import (
    CatalogError,
    CleaningError,
    CodegenError,
    DataFormatError,
    ExecutionError,
    GenerationError,
    ParseError,
    PlanningError,
    StorageError,
    TypeCheckError,
    ViDaError,
    WarehouseError,
)

__version__ = "0.1.0"

__all__ = [
    "CatalogError", "CleaningError", "CodegenError", "DataFormatError",
    "EngineContext", "EngineStats", "ExecutionError", "GenerationError",
    "ParseError", "PlanningError", "QueryResult", "QueryStats",
    "QuotaCacheView", "StorageError", "TypeCheckError", "ViDa", "ViDaError",
    "WarehouseError", "__version__",
]
