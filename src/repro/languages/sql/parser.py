"""SQL lexer + recursive-descent parser for the supported subset."""

from __future__ import annotations

import re

from ...errors import ParseError
from . import ast as S

_KEYWORDS = frozenset(
    "select from where join inner left on and or not as group by having order "
    "limit asc desc distinct like in is null true false between".split()
)
_AGGREGATES = frozenset(["count", "sum", "avg", "min", "max", "median"])
_FUNCS = frozenset(["lower", "upper", "abs", "length", "round", "substr"])

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<float>\d+\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
      | (?P<int>\d+)
      | (?P<string>'(?:[^']|'')*')
      | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
      | (?P<symbol><>|!=|<=|>=|=|<|>|\(|\)|,|\.|\+|-|\*|/|%|;)
    )""",
    re.VERBOSE,
)


def tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            if text[pos:].strip():
                raise ParseError(f"bad SQL near {text[pos:pos+20]!r}")
            break
        pos = m.end()
        if m.lastgroup == "ident":
            word = m.group("ident")
            lowered = word.lower()
            if lowered in _KEYWORDS:
                tokens.append(("KW", lowered))
            else:
                tokens.append(("IDENT", word))
        elif m.lastgroup == "string":
            raw = m.group("string")[1:-1].replace("''", "'")
            tokens.append(("STRING", raw))
        elif m.lastgroup == "int":
            tokens.append(("INT", m.group("int")))
        elif m.lastgroup == "float":
            tokens.append(("FLOAT", m.group("float")))
        else:
            tokens.append(("SYM", m.group("symbol")))
    tokens.append(("EOF", ""))
    return tokens


class SQLParser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    def peek(self, offset: int = 0) -> tuple[str, str]:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> tuple[str, str]:
        tok = self.tokens[self.pos]
        if tok[0] != "EOF":
            self.pos += 1
        return tok

    def match(self, kind: str, value: str | None = None) -> bool:
        k, v = self.peek()
        if k == kind and (value is None or v == value):
            self.advance()
            return True
        return False

    def expect(self, kind: str, value: str | None = None) -> tuple[str, str]:
        k, v = self.peek()
        if k != kind or (value is not None and v != value):
            raise ParseError(f"expected {value or kind!r}, found {v!r} in SQL")
        return self.advance()

    # -- statement ---------------------------------------------------------

    def parse(self) -> S.SelectStmt:
        stmt = self.select()
        self.match("SYM", ";")
        k, v = self.peek()
        if k != "EOF":
            raise ParseError(f"unexpected trailing SQL {v!r}")
        return stmt

    def select(self) -> S.SelectStmt:
        self.expect("KW", "select")
        distinct = self.match("KW", "distinct")
        items = [self.select_item()]
        while self.match("SYM", ","):
            items.append(self.select_item())
        self.expect("KW", "from")
        table = self.table_ref()
        joins: list[S.Join] = []
        while True:
            if self.match("KW", "inner"):
                self.expect("KW", "join")
            elif self.match("KW", "join"):
                pass
            else:
                break
            joined = self.table_ref()
            self.expect("KW", "on")
            joins.append(S.Join(joined, self.expression()))
        where = self.expression() if self.match("KW", "where") else None
        group_by: list = []
        if self.match("KW", "group"):
            self.expect("KW", "by")
            group_by.append(self.expression())
            while self.match("SYM", ","):
                group_by.append(self.expression())
        having = self.expression() if self.match("KW", "having") else None
        order_by: list[S.OrderItem] = []
        if self.match("KW", "order"):
            self.expect("KW", "by")
            order_by.append(self.order_item())
            while self.match("SYM", ","):
                order_by.append(self.order_item())
        limit = None
        if self.match("KW", "limit"):
            limit = int(self.expect("INT")[1])
        return S.SelectStmt(
            items=tuple(items), table=table, joins=tuple(joins), where=where,
            group_by=tuple(group_by), having=having, order_by=tuple(order_by),
            limit=limit, distinct=distinct,
        )

    def select_item(self) -> S.SelectItem:
        if self.peek() == ("SYM", "*"):
            self.advance()
            return S.SelectItem(S.ColumnRef(None, "*"), None)
        expr = self.expression()
        alias = None
        if self.match("KW", "as"):
            alias = self.expect("IDENT")[1]
        elif self.peek()[0] == "IDENT":
            alias = self.advance()[1]
        return S.SelectItem(expr, alias)

    def order_item(self) -> S.OrderItem:
        expr = self.expression()
        descending = False
        if self.match("KW", "desc"):
            descending = True
        else:
            self.match("KW", "asc")
        return S.OrderItem(expr, descending)

    def table_ref(self) -> S.TableRef:
        name = self.expect("IDENT")[1]
        alias = name
        as_of = self._as_of_generation()
        if as_of is None:
            if self.match("KW", "as"):
                alias = self.expect("IDENT")[1]
            elif self.peek()[0] == "IDENT":
                alias = self.advance()[1]
            as_of = self._as_of_generation()
        return S.TableRef(name, alias, as_of)

    def _as_of_generation(self) -> int | None:
        """Match ``AS OF GENERATION <int>`` (time travel), else None.

        ``of`` and ``generation`` are *not* keywords — columns named
        ``generation`` keep working — so the whole four-token pattern must
        be present before anything is consumed; ``t AS of`` with no
        ``GENERATION <int>`` still reads as aliasing ``t`` to ``of``.
        """
        if (self.peek() == ("KW", "as")
                and self.peek(1)[0] == "IDENT"
                and self.peek(1)[1].lower() == "of"
                and self.peek(2)[0] == "IDENT"
                and self.peek(2)[1].lower() == "generation"
                and self.peek(3)[0] == "INT"):
            self.advance()
            self.advance()
            self.advance()
            return int(self.advance()[1])
        return None

    # -- expressions (precedence climbing) ------------------------------------

    def expression(self):
        return self.or_expr()

    def or_expr(self):
        left = self.and_expr()
        while self.match("KW", "or"):
            left = S.SQLBinOp("or", left, self.and_expr())
        return left

    def and_expr(self):
        left = self.not_expr()
        while self.match("KW", "and"):
            left = S.SQLBinOp("and", left, self.not_expr())
        return left

    def not_expr(self):
        if self.match("KW", "not"):
            return S.SQLUnOp("not", self.not_expr())
        return self.comparison()

    def comparison(self):
        left = self.additive()
        k, v = self.peek()
        if k == "SYM" and v in ("=", "<>", "!=", "<", "<=", ">", ">="):
            self.advance()
            op = "!=" if v == "<>" else v
            return S.SQLBinOp(op, left, self.additive())
        if k == "KW" and v == "like":
            self.advance()
            return S.SQLBinOp("like", left, self.additive())
        if k == "KW" and v == "between":
            self.advance()
            lo = self.additive()
            self.expect("KW", "and")
            hi = self.additive()
            return S.SQLBinOp(
                "and", S.SQLBinOp(">=", left, lo), S.SQLBinOp("<=", left, hi)
            )
        if k == "KW" and v == "is":
            self.advance()
            negated = self.match("KW", "not")
            self.expect("KW", "null")
            op = "!=" if negated else "="
            return S.SQLBinOp(op, left, S.Literal(None))
        if k == "KW" and v == "in":
            self.advance()
            self.expect("SYM", "(")
            items = [self.additive()]
            while self.match("SYM", ","):
                items.append(self.additive())
            self.expect("SYM", ")")
            return S.InList(left, tuple(items))
        if k == "KW" and v == "not" and self.peek(1) == ("KW", "in"):
            self.advance()
            self.advance()
            self.expect("SYM", "(")
            items = [self.additive()]
            while self.match("SYM", ","):
                items.append(self.additive())
            self.expect("SYM", ")")
            return S.InList(left, tuple(items), negated=True)
        return left

    def additive(self):
        left = self.multiplicative()
        while True:
            k, v = self.peek()
            if k == "SYM" and v in ("+", "-"):
                self.advance()
                left = S.SQLBinOp(v, left, self.multiplicative())
            else:
                return left

    def multiplicative(self):
        left = self.unary()
        while True:
            k, v = self.peek()
            if k == "SYM" and v in ("*", "/", "%"):
                self.advance()
                left = S.SQLBinOp(v, left, self.unary())
            else:
                return left

    def unary(self):
        if self.match("SYM", "-"):
            return S.SQLUnOp("-", self.unary())
        return self.primary()

    def primary(self):
        k, v = self.peek()
        if k == "INT":
            self.advance()
            return S.Literal(int(v))
        if k == "FLOAT":
            self.advance()
            return S.Literal(float(v))
        if k == "STRING":
            self.advance()
            return S.Literal(v)
        if k == "KW" and v in ("true", "false"):
            self.advance()
            return S.Literal(v == "true")
        if k == "KW" and v == "null":
            self.advance()
            return S.Literal(None)
        if k == "SYM" and v == "(":
            self.advance()
            inner = self.expression()
            self.expect("SYM", ")")
            return inner
        if k == "IDENT":
            name = self.advance()[1]
            lowered = name.lower()
            if self.peek() == ("SYM", "("):
                self.advance()
                if lowered in _AGGREGATES:
                    distinct = self.match("KW", "distinct")
                    if self.peek() == ("SYM", "*"):
                        self.advance()
                        arg = None
                    else:
                        arg = self.expression()
                    self.expect("SYM", ")")
                    return S.Aggregate(lowered, arg, distinct)
                args: list = []
                if self.peek() != ("SYM", ")"):
                    args.append(self.expression())
                    while self.match("SYM", ","):
                        args.append(self.expression())
                self.expect("SYM", ")")
                if lowered not in _FUNCS:
                    raise ParseError(f"unknown SQL function {name!r}")
                return S.FuncCall(lowered, tuple(args))
            if self.peek() == ("SYM", ".") and self.peek(1)[0] == "IDENT":
                self.advance()
                column = self.advance()[1]
                return S.ColumnRef(name, column)
            return S.ColumnRef(None, name)
        raise ParseError(f"unexpected SQL token {v!r}")


def parse_sql(text: str) -> S.SelectStmt:
    """Parse one SELECT statement.

    >>> stmt = parse_sql("SELECT COUNT(*) FROM T WHERE T.a > 3")
    >>> stmt.items[0].expr.func
    'count'
    """
    return SQLParser(text).parse()
