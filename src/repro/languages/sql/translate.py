"""SQL → monoid comprehension translation (paper §3.2).

"Support for a variety of query languages can be provided through a
'syntactic sugar' translation layer, which maps queries written in the
original language to the internal notation." This module is that layer for
SQL. Shapes produced:

- plain SELECT → ``for { gens, filters } yield bag ⟨items⟩``
  (``set`` for DISTINCT);
- single top-level aggregate → the corresponding primitive monoid
  (COUNT(e) counts non-null e, exactly SQL's semantics);
- several aggregates, no GROUP BY → a record of independent comprehensions
  (evaluated by the interpreter);
- GROUP BY → the classic nested-comprehension encoding: the outer
  comprehension ranges over the ``set`` of keys, aggregates are correlated
  subqueries per key [Fegaras & Maier §2];
- ORDER BY → the ordering monoid; LIMIT is applied by the session after
  folding (top-k shortcut when combined with a single ORDER BY key).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ParseError, TypeCheckError
from ...mcc import ast as A
from ...mcc.monoids import get_monoid, make_orderby
from ...mcc import types as T
from . import ast as S
from .parser import parse_sql

_AGG_MONOID = {"sum": "sum", "avg": "avg", "min": "min", "max": "max",
               "median": "median"}


@dataclass
class _Scope:
    """Alias → (source name, element type) for column resolution."""

    tables: dict[str, tuple[str, T.Type]]

    def resolve(self, ref: S.ColumnRef) -> A.Expr:
        if ref.table is not None:
            if ref.table not in self.tables:
                raise ParseError(f"unknown table alias {ref.table!r}")
            return A.Proj(A.Var(ref.table), ref.name)
        owners = []
        for alias, (_src, etype) in self.tables.items():
            if isinstance(etype, T.RecordType) and etype.field_type(ref.name) is not None:
                owners.append(alias)
            elif isinstance(etype, T.AnyType):
                owners.append(alias)
        if not owners:
            raise TypeCheckError(f"column {ref.name!r} not found in any FROM table")
        if len(owners) > 1:
            raise TypeCheckError(
                f"column {ref.name!r} is ambiguous (in {', '.join(owners)})"
            )
        return A.Proj(A.Var(owners[0]), ref.name)


def translate_sql(statement: str | S.SelectStmt, catalog) -> A.Expr:
    """Translate a SQL statement into a calculus expression.

    ``catalog`` provides source schemas for unqualified-column resolution.
    """
    stmt = parse_sql(statement) if isinstance(statement, str) else statement

    tables: dict[str, tuple[str, T.Type]] = {}
    gens: list[A.Qualifier] = []
    filters: list[A.Expr] = []

    def add_table(ref: S.TableRef) -> None:
        entry = catalog.get(ref.name)
        if ref.alias in tables:
            raise ParseError(f"duplicate table alias {ref.alias!r}")
        tables[ref.alias] = (ref.name, entry.description.element_type)
        gens.append(A.Generator(ref.alias, A.Var(ref.name)))

    add_table(stmt.table)
    scope = _Scope(tables)
    for join in stmt.joins:
        add_table(join.table)
        filters.append(_expr(join.condition, scope))
    if stmt.where is not None:
        filters.append(_expr(stmt.where, scope))

    qualifiers = tuple(gens) + tuple(A.Filter(f) for f in filters)

    if stmt.group_by:
        return _translate_group_by(stmt, scope, qualifiers)

    aggregates = [
        (item, item.expr) for item in stmt.items if isinstance(item.expr, S.Aggregate)
    ]
    if aggregates:
        if len(aggregates) != len(stmt.items):
            raise ParseError(
                "mixing aggregates and plain columns requires GROUP BY"
            )
        if len(aggregates) == 1:
            return _aggregate_comprehension(aggregates[0][1], scope, qualifiers)
        fields = []
        for i, (item, agg) in enumerate(aggregates):
            name = item.alias or f"agg{i}"
            fields.append((name, _aggregate_comprehension(agg, scope, qualifiers)))
        return A.RecordCons(tuple(fields))

    head = _select_head(stmt, scope)
    if stmt.order_by:
        return _translate_order_by(stmt, scope, qualifiers, head)
    monoid = get_monoid("set" if stmt.distinct else "bag")
    return A.Comprehension(monoid, head, qualifiers)


def _select_head(stmt: S.SelectStmt, scope: _Scope) -> A.Expr:
    if len(stmt.items) == 1 and isinstance(stmt.items[0].expr, S.ColumnRef) \
            and stmt.items[0].expr.name == "*" and stmt.items[0].expr.table is None:
        if len(scope.tables) == 1:
            return A.Var(next(iter(scope.tables)))
        return A.RecordCons(tuple((alias, A.Var(alias)) for alias in scope.tables))
    fields = []
    for i, item in enumerate(stmt.items):
        name = item.alias or _default_name(item.expr, i)
        fields.append((name, _expr(item.expr, scope)))
    return A.RecordCons(tuple(fields))


def _default_name(expr, i: int) -> str:
    if isinstance(expr, S.ColumnRef):
        return expr.name
    return f"col{i}"


def _aggregate_comprehension(agg: S.Aggregate, scope: _Scope,
                             qualifiers: tuple) -> A.Comprehension:
    if agg.func == "count":
        if agg.arg is None:
            return A.Comprehension(get_monoid("count"), A.Const(1), qualifiers)
        arg = _expr(agg.arg, scope)
        if agg.distinct:
            inner = A.Comprehension(get_monoid("set"), arg, qualifiers)
            var = A.fresh_var("d")
            return A.Comprehension(
                get_monoid("count"), A.Const(1), (A.Generator(var, inner),)
            )
        head = A.If(A.BinOp("=", arg, A.Null()), A.Const(0), A.Const(1))
        return A.Comprehension(get_monoid("sum"), head, qualifiers)
    monoid = get_monoid(_AGG_MONOID[agg.func])
    if agg.arg is None:
        raise ParseError(f"{agg.func.upper()} requires an argument")
    return A.Comprehension(monoid, _expr(agg.arg, scope), qualifiers)


def _translate_group_by(stmt: S.SelectStmt, scope: _Scope,
                        qualifiers: tuple) -> A.Expr:
    """GROUP BY via the classic nested-comprehension encoding."""
    key_exprs = [_expr(g, scope) for g in stmt.group_by]
    key_names = [
        _default_name(g, i) if isinstance(g, S.ColumnRef) else f"k{i}"
        for i, g in enumerate(stmt.group_by)
    ]
    keys_head = A.RecordCons(tuple(zip(key_names, key_exprs)))
    keys_comp = A.Comprehension(get_monoid("set"), keys_head, qualifiers)

    gvar = A.fresh_var("g")
    # per-group qualifiers: original ones + key-equality correlation
    corr = tuple(
        A.Filter(A.BinOp("=", ke, A.Proj(A.Var(gvar), kn)))
        for ke, kn in zip(key_exprs, key_names)
    )
    group_quals = qualifiers + corr

    fields = []
    for i, item in enumerate(stmt.items):
        name = item.alias or _default_name(item.expr, i)
        if isinstance(item.expr, S.Aggregate):
            fields.append((name, _aggregate_comprehension(item.expr, scope, group_quals)))
        else:
            key_expr = _expr(item.expr, scope)
            matched = None
            for ke, kn in zip(key_exprs, key_names):
                if ke == key_expr:
                    matched = kn
                    break
            if matched is None:
                raise ParseError(
                    f"non-aggregated SELECT item {name!r} must appear in GROUP BY"
                )
            fields.append((name, A.Proj(A.Var(gvar), matched)))
    head = A.RecordCons(tuple(fields))
    quals: tuple[A.Qualifier, ...] = (A.Generator(gvar, keys_comp),)
    if stmt.having is not None:
        having_scope = scope  # aggregates in HAVING become correlated comps
        quals = quals + (A.Filter(_having_expr(stmt.having, having_scope, group_quals)),)
    return A.Comprehension(get_monoid("bag"), head, quals)


def _having_expr(expr, scope: _Scope, group_quals: tuple) -> A.Expr:
    if isinstance(expr, S.Aggregate):
        return _aggregate_comprehension(expr, scope, group_quals)
    if isinstance(expr, S.SQLBinOp):
        return A.BinOp(
            expr.op if expr.op != "<>" else "!=",
            _having_expr(expr.left, scope, group_quals),
            _having_expr(expr.right, scope, group_quals),
        )
    if isinstance(expr, S.SQLUnOp):
        return A.UnOp(expr.op, _having_expr(expr.expr, scope, group_quals))
    return _expr(expr, scope)


def _translate_order_by(stmt: S.SelectStmt, scope: _Scope, qualifiers: tuple,
                        head: A.Expr) -> A.Expr:
    if len(stmt.order_by) != 1:
        raise ParseError("only single-key ORDER BY is supported")
    item = stmt.order_by[0]
    key = _expr(item.expr, scope)
    monoid = make_orderby(descending=item.descending)
    pair = A.ListLit((key, head))
    return A.Comprehension(monoid, pair, qualifiers)


def _expr(expr, scope: _Scope) -> A.Expr:
    if isinstance(expr, S.Literal):
        return A.Null() if expr.value is None else A.Const(expr.value)
    if isinstance(expr, S.ColumnRef):
        if expr.name == "*":
            raise ParseError("'*' is only valid as the whole select list")
        return scope.resolve(expr)
    if isinstance(expr, S.SQLBinOp):
        return A.BinOp(expr.op, _expr(expr.left, scope), _expr(expr.right, scope))
    if isinstance(expr, S.SQLUnOp):
        return A.UnOp(expr.op, _expr(expr.expr, scope))
    if isinstance(expr, S.FuncCall):
        name = {"length": "len"}.get(expr.name, expr.name)
        return A.Call(name, tuple(_expr(a, scope) for a in expr.args))
    if isinstance(expr, S.InList):
        result: A.Expr = A.BinOp(
            "in", _expr(expr.expr, scope),
            A.ListLit(tuple(_expr(i, scope) for i in expr.items)),
        )
        return A.UnOp("not", result) if expr.negated else result
    if isinstance(expr, S.Aggregate):
        raise ParseError("aggregate used outside the SELECT list / HAVING")
    raise ParseError(f"cannot translate SQL node {type(expr).__name__}")
