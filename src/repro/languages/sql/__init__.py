"""SQL syntactic-sugar layer: SQL → monoid comprehensions (paper §3.2)."""

from .parser import parse_sql
from .translate import translate_sql

__all__ = ["parse_sql", "translate_sql"]
