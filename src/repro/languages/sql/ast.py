"""SQL AST (the subset the translation layer supports).

The paper positions SQL as one of the languages translated onto the monoid
comprehension calculus through "a 'syntactic sugar' translation layer"
(§3.2). The supported subset covers the evaluation workload and the usual
analytical shapes: SELECT [DISTINCT] with expressions/aggregates, FROM with
INNER JOIN ... ON, WHERE, GROUP BY/HAVING, ORDER BY, LIMIT.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ColumnRef:
    table: str | None  # alias, or None when unqualified
    name: str


@dataclass(frozen=True)
class Literal:
    value: object


@dataclass(frozen=True)
class SQLBinOp:
    op: str
    left: object
    right: object


@dataclass(frozen=True)
class SQLUnOp:
    op: str
    expr: object


@dataclass(frozen=True)
class FuncCall:
    name: str
    args: tuple


@dataclass(frozen=True)
class Aggregate:
    func: str          # count | sum | avg | min | max | median
    arg: object | None  # None for COUNT(*)
    distinct: bool = False


@dataclass(frozen=True)
class InList:
    expr: object
    items: tuple
    negated: bool = False


@dataclass(frozen=True)
class SelectItem:
    expr: object
    alias: str | None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str
    #: time travel: pin the scan to a retained file generation
    #: (``FROM t AS OF GENERATION k``); None queries the live file
    as_of: int | None = None


@dataclass(frozen=True)
class Join:
    table: TableRef
    condition: object


@dataclass(frozen=True)
class OrderItem:
    expr: object
    descending: bool = False


@dataclass(frozen=True)
class SelectStmt:
    items: tuple[SelectItem, ...]
    table: TableRef
    joins: tuple[Join, ...] = ()
    where: object | None = None
    group_by: tuple = ()
    having: object | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False
