"""PathQL: an XPath-flavoured path language over ViDa sources (paper §3.2).

The paper's language layer exists so "users have the power to choose the
language best suited for an analysis" — SQL for relational shapes, and a
path language for hierarchical ones (its examples cite XQuery, whose FLWOR
expressions the monoid comprehension calculus models). PathQL is that
second dialect: navigational queries that translate mechanically onto
comprehensions.

Syntax::

    /Source                              all elements
    /Source[pred]                        filtered elements
    /Source[pred]/field                  project a field
    /Source/items[pred]/name             descend into a collection-valued
                                         field (becomes an unnest generator)

Predicates use the comprehension expression grammar with *relative* field
references: ``age > 60 and gender = "f"`` — bare identifiers resolve
against the current step's element.

Examples::

    /Patients[age > 60]/id
    /Scans/regions[volume > 12.5]/name
    /Scans[quality >= 0.9]/regions/volume
"""

from __future__ import annotations

from ..errors import ParseError
from ..mcc import ast as A
from ..mcc.monoids import get_monoid
from ..mcc.parser import parse as parse_expr


def _split_steps(query: str) -> list[str]:
    """Split on '/' at bracket depth zero; validates bracket balance."""
    if not query.startswith("/"):
        raise ParseError("PathQL queries start with '/'")
    steps: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in query[1:]:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth < 0:
                raise ParseError("unbalanced ']' in PathQL query")
        if ch == "/" and depth == 0:
            steps.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise ParseError("unbalanced '[' in PathQL query")
    steps.append("".join(current))
    if any(not s.strip() for s in steps):
        raise ParseError("empty step in PathQL query")
    return [s.strip() for s in steps]


def _parse_step(step: str) -> tuple[str, str | None]:
    """Split ``name[pred]`` into (name, predicate-text or None)."""
    if "[" in step:
        name, _, rest = step.partition("[")
        if not rest.endswith("]"):
            raise ParseError(f"malformed step {step!r}")
        return name.strip(), rest[:-1].strip()
    return step.strip(), None


def _relativise(pred: A.Expr, var: str, bound: set[str]) -> A.Expr:
    """Rewrite bare field references to projections off the step variable."""
    if isinstance(pred, A.Var):
        if pred.name in bound:
            return pred
        return A.Proj(A.Var(var), pred.name)
    children = pred.children()
    if not children:
        return pred
    if isinstance(pred, A.Comprehension):
        # nested comprehensions keep their own scoping; leave untouched
        return pred
    return pred.replace_children([_relativise(c, var, bound) for c in children])


def translate_path(query: str, catalog) -> A.Expr:
    """Translate a PathQL query into a comprehension.

    ``catalog`` supplies the source names (the first step must name one).
    """
    steps = _split_steps(query)
    source_name, source_pred = _parse_step(steps[0])
    if source_name not in catalog.names():
        raise ParseError(
            f"unknown source {source_name!r}; registered: "
            f"{', '.join(sorted(catalog.names()))}"
        )

    qualifiers: list[A.Qualifier] = []
    bound: set[str] = set()
    var = "_s0"
    qualifiers.append(A.Generator(var, A.Var(source_name)))
    bound.add(var)
    if source_pred:
        qualifiers.append(A.Filter(_relativise(parse_expr(source_pred), var, bound)))

    head: A.Expr = A.Var(var)
    remaining = steps[1:]
    for i, step in enumerate(remaining):
        name, pred = _parse_step(step)
        is_last = i == len(remaining) - 1
        if is_last and pred is None:
            # terminal projection step
            head = A.Proj(A.Var(var), name)
            break
        # descend: the field is a collection — new generator
        new_var = f"_s{i + 1}"
        qualifiers.append(A.Generator(new_var, A.Proj(A.Var(var), name)))
        bound.add(new_var)
        var = new_var
        head = A.Var(var)
        if pred:
            qualifiers.append(
                A.Filter(_relativise(parse_expr(pred), var, bound))
            )
    return A.Comprehension(get_monoid("bag"), head, tuple(qualifiers))
