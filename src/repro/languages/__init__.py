"""Query-language translation layers onto the comprehension calculus."""

from .pathql import translate_path
from .sql import parse_sql, translate_sql

__all__ = ["parse_sql", "translate_path", "translate_sql"]
