"""§7 extension — storage-technology placement for raw-data processing.

"Our goal is to determine the most suitable storage device for the various
tasks of raw data processing, such as raw data storage, temporary
structures for query processing, and data caches storage."

Simulated HDD/flash/PCM devices account latency and energy for a cold +
warm raw scan workload; the table compares raw-data placements and reports
the speedups newer technologies buy for the *same* ViDa workload.
"""

from repro.bench import emit, table
from repro.core.session import ViDa
from repro.storage import StorageDevice


def _run_on(profile: str, datasets) -> StorageDevice:
    device = StorageDevice(profile)
    db = ViDa()
    db.register_csv("Patients", datasets.patients_csv)
    db.register_json("BrainRegions", datasets.brain_json)
    db.set_device("*", device)
    db.query("for { p <- Patients, p.age > 50 } yield avg p.protein_1")
    db.query("for { b <- BrainRegions } yield max b.volume_total")
    db.cache.clear()
    db.query("for { p <- Patients, p.age > 60 } yield avg p.protein_2")
    return device


def test_device_placement_study(benchmark, hbp):
    datasets, _queries = hbp

    def run():
        return {p: _run_on(p, datasets) for p in ("hdd", "flash", "pcm")}

    devices = benchmark.pedantic(run, rounds=1, iterations=1)

    hdd_seconds = devices["hdd"].stats.simulated_seconds
    rows = []
    for profile, device in devices.items():
        s = device.stats
        rows.append([
            profile, f"{s.simulated_seconds:.3f}",
            f"{hdd_seconds / s.simulated_seconds:.1f}x",
            f"{s.energy_joules:.4f}", f"{s.bytes_read / 1e6:.1f}",
        ])
    lines = table(
        ["raw-data device", "sim time (s)", "vs HDD", "energy (J)", "MB read"],
        rows,
    )
    lines.append("")
    lines.append("raw scans are bandwidth-bound: flash/PCM placements buy the")
    lines.append("speedups above; caches/posmaps are small and latency-bound.")
    emit("§7 — storage technology placement (simulated)", lines)

    assert devices["flash"].stats.simulated_seconds < hdd_seconds
    assert devices["pcm"].stats.simulated_seconds < \
        devices["flash"].stats.simulated_seconds
    assert devices["pcm"].stats.energy_joules < devices["hdd"].stats.energy_joules
