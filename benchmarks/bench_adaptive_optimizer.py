"""Statistics-driven adaptive optimizer vs the syntax-order baseline.

Three measurements of the PR-9 feedback loop:

1. **Join ordering.** A 3-way join whose only good order is invisible to
   the syntax-driven greedy planner: the textually-first relation is the
   smallest *file* (so greedy drives from it) but fans out against the
   fact table, while a filter on the last relation is ~1000x more
   selective than the textbook guess — something only the collected NDV
   sketches reveal. Warm (stats collected, caches hot), the adaptive
   session must beat ``ViDa(adaptive_stats=False)`` by >= 2x.

2. **Engine selection.** With ``default_engine="auto"``, a tiny query
   must run on the static interpreter (zero codegen latency paid) while
   the join above picks JIT.

3. **Calibration.** The first cold scan is estimated with the
   hand-tuned constants; its measured timing recalibrates ``unit_ms``
   and the per-(format, access) factor, so an identical second cold scan
   is estimated strictly closer to its measured wall-clock.
"""

import math
import statistics
import time

from repro import EngineContext, ViDa
from repro.bench import emit, table

A_ROWS, B_ROWS, S_ROWS = 20000, 20000, 200

#: syntax order S, A, B: S is the smallest file (greedy drives from it)
#: but every S row matches A_ROWS/40 fact rows; b.v = 7 keeps ~20 rows
JOIN_Q = ("for { s <- S, a <- A, b <- B, s.k = a.k, a.id = b.id, b.v = 7 } "
          "yield sum 1")
TINY_Q = "for { t <- Tiny } yield sum t.v"


def write_datasets(d):
    with open(d / "a.csv", "w") as fh:
        fh.write("id,k,pad\n")
        for i in range(A_ROWS):
            fh.write(f"{i},{i % 40},{'x' * 24}\n")
    with open(d / "b.csv", "w") as fh:
        fh.write("id,v,pad\n")
        for i in range(B_ROWS):
            fh.write(f"{i},{i % 1000},{'x' * 24}\n")
    with open(d / "s.csv", "w") as fh:
        fh.write("k,name\n")
        for i in range(S_ROWS):
            fh.write(f"{i % 40},n{i}\n")
    with open(d / "tiny.csv", "w") as fh:
        fh.write("id,v\n")
        for i in range(30):
            fh.write(f"{i},{i}\n")


def register(db, d):
    db.register_csv("A", str(d / "a.csv"))
    db.register_csv("B", str(d / "b.csv"))
    db.register_csv("S", str(d / "s.csv"))
    db.register_csv("Tiny", str(d / "tiny.csv"))


def warm_median(db, query, runs=5):
    db.query(query)  # cold: collects stats / builds posmaps + caches
    db.query(query)  # replan with stats, warm the plan + compile caches
    times = []
    result = None
    for _ in range(runs):
        t0 = time.perf_counter()
        result = db.query(query)
        times.append((time.perf_counter() - t0) * 1e3)
    return statistics.median(times), result


def test_stats_join_order_beats_syntax_order(benchmark, tmp_path):
    write_datasets(tmp_path)

    def run():
        base = ViDa(adaptive_stats=False)
        adapt = ViDa()
        register(base, tmp_path)
        register(adapt, tmp_path)
        tb, rb = warm_median(base, JOIN_Q)
        ta, ra = warm_median(adapt, JOIN_Q)
        return tb, rb, ta, ra, base, adapt

    tb, rb, ta, ra, base, adapt = benchmark.pedantic(run, rounds=1, iterations=1)

    speedup = tb / ta
    rows = [
        ["syntax-order baseline (warm ms)", f"{tb:.1f}",
         " -> ".join(rb.decisions.join_order)],
        ["adaptive stats (warm ms)", f"{ta:.1f}",
         " -> ".join(ra.decisions.join_order)],
        ["speedup", f"{speedup:.1f}x", ">= 2x required"],
    ]
    lines = table(["session", "median warm time", "join order"], rows)
    lines.append("")
    lines.append(f"adaptive decisions: {ra.decisions.summary().splitlines()[0]}")
    emit("adaptive optimizer — stats-driven join order", lines)

    assert ra.value == rb.value, "both orders must produce the same answer"
    # the enumerator abandoned the syntax order and drove from the
    # post-filter-smallest relation, with cardinality estimates surfaced
    assert rb.decisions.join_order[0] == "s"
    assert ra.decisions.join_order[0] == "b"
    assert ra.decisions.join_order != rb.decisions.join_order
    assert len(ra.decisions.join_cards) == len(ra.decisions.join_order)
    assert "(~" in ra.decisions.summary()
    assert speedup >= 2.0, (
        f"adaptive join order must be >= 2x faster warm, got {speedup:.2f}x"
    )
    base.close()
    adapt.close()


def test_auto_engine_picks_static_for_tiny_queries(benchmark, tmp_path):
    write_datasets(tmp_path)

    def run():
        ctx = EngineContext()
        db = ViDa(context=ctx, default_engine="auto")
        register(db, tmp_path)
        tiny = db.query(TINY_Q)
        compilations_after_tiny = ctx.jit.stats.compilations
        join = db.query(JOIN_Q)
        return tiny, compilations_after_tiny, join, ctx, db

    tiny, compilations_after_tiny, join, ctx, db = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    lines = table(
        ["query", "engine", "reason"],
        [["30-row sum", tiny.stats.engine, tiny.decisions.engine_choice],
         ["3-way join", join.stats.engine, join.decisions.engine_choice]],
    )
    emit("adaptive optimizer — per-query engine selection", lines)

    assert tiny.stats.engine == "static"
    assert compilations_after_tiny == 0  # no codegen paid for 30 rows
    assert join.stats.engine == "jit"
    assert ctx.jit.stats.compilations > 0
    db.close()


def test_calibration_tightens_estimates(benchmark, tmp_path):
    write_datasets(tmp_path)
    # two identical files: T1's cold scan is estimated with the hand-tuned
    # constants, T2's with constants recalibrated from T1's measured time
    (tmp_path / "t2.csv").write_bytes((tmp_path / "a.csv").read_bytes())

    def run():
        ctx = EngineContext()
        db = ViDa(context=ctx)
        db.register_csv("T1", str(tmp_path / "a.csv"))
        db.register_csv("T2", str(tmp_path / "t2.csv"))
        factor0 = dict(ctx.calibration.factors)[("csv", "cold")]
        r1 = db.query("for { t <- T1, t.k > 5 } yield sum 1")
        factor1 = ctx.calibration.factors[("csv", "cold")]
        r2 = db.query("for { t <- T2, t.k > 5 } yield sum 1")
        return r1, r2, factor0, factor1, ctx, db

    r1, r2, factor0, factor1, ctx, db = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    ratio1 = r1.stats.est_ms / max(r1.stats.execute_ms, 1e-6)
    ratio2 = r2.stats.est_ms / max(r2.stats.execute_ms, 1e-6)
    drift1, drift2 = abs(math.log(ratio1)), abs(math.log(ratio2))
    rows = [
        ["T1 (hand-tuned constants)", f"{r1.stats.est_ms:.1f}",
         f"{r1.stats.execute_ms:.1f}", f"{ratio1:.2f}x"],
        ["T2 (after one calibration)", f"{r2.stats.est_ms:.1f}",
         f"{r2.stats.execute_ms:.1f}", f"{ratio2:.2f}x"],
    ]
    lines = table(["cold scan", "est ms", "measured ms", "est/measured"], rows)
    lines.append("")
    lines.append(f"(csv, cold) factor: {factor0:.2f} -> {factor1:.2f}, "
                 f"unit_ms: {ctx.calibration.unit_ms:.2e}")
    emit("adaptive optimizer — measured-runtime calibration", lines)

    assert factor1 != factor0                  # a cost constant moved
    assert ctx.calibration.unit_ms is not None
    assert ctx.calibration.version >= 1
    assert drift2 < drift1, (
        f"calibrated estimate must sit closer to measured wall-clock "
        f"(|log est/measured| {drift1:.2f} -> {drift2:.2f})"
    )
    db.close()
