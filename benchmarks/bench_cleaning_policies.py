"""§7 extension — scan-time cleaning policy overhead.

Measures query throughput over a dirtied Patients CSV under each cleaning
policy, against the clean-file baseline. Expected shape: skip/null repair
costs are proportional to the dirty fraction (the fast path is untouched);
dictionary validation pays on every row (it must see all values).
"""

import random
import time

from repro.bench import emit, table
from repro.cleaning import DictionaryPolicy, NullPolicy, SkipPolicy
from repro.core.session import ViDa
from repro.formats import write_csv

_CITIES = ["geneva", "lausanne", "zurich", "bern"]


def _make_files(tmp_path, rows=4000, dirty_fraction=0.05):
    rng = random.Random(3)
    clean_rows = []
    dirty_rows = []
    for i in range(rows):
        age = rng.randint(18, 90)
        city = rng.choice(_CITIES)
        protein = round(rng.uniform(30, 80), 2)
        clean_rows.append((i, age, city, protein))
        if rng.random() < dirty_fraction:
            dirty_rows.append((i, f"x{age}x", city, protein))
        else:
            dirty_rows.append((i, age, city, protein))
    cols = ["id", "age", "city", "protein"]
    clean_path = tmp_path / "clean.csv"
    dirty_path = tmp_path / "dirty.csv"
    write_csv(clean_path, cols, clean_rows)
    write_csv(dirty_path, cols, dirty_rows)
    return str(clean_path), str(dirty_path)


def _time_scan(path, policy) -> tuple[float, int]:
    db = ViDa(enable_cache=False)
    db.register_csv("T", path, columns=["id", "age", "city", "protein"],
                    types=["int", "int", "string", "float"])
    if policy is not None:
        db.set_cleaning("T", policy)
    t0 = time.perf_counter()
    result = db.query("for { t <- T, t.age > 40 } yield avg t.protein")
    return time.perf_counter() - t0, result.stats.skipped_rows


def test_cleaning_policy_overhead(benchmark, tmp_path):
    clean_path, dirty_path = _make_files(tmp_path)

    def run():
        out = {}
        out["clean file, no policy"] = _time_scan(clean_path, None)
        out["dirty file, skip"] = _time_scan(dirty_path, SkipPolicy())
        out["dirty file, null"] = _time_scan(dirty_path, NullPolicy())
        out["dirty file, dictionary"] = _time_scan(
            dirty_path,
            DictionaryPolicy(dictionaries={"city": _CITIES},
                             ranges={"age": (0, 110)}, fallback_skip=False),
        )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    base = results["clean file, no policy"][0]
    rows = []
    for name, (seconds, skipped) in results.items():
        rows.append([name, f"{seconds * 1e3:.1f}", f"{seconds / base:.2f}x",
                     skipped])
    lines = table(["configuration", "scan (ms)", "vs clean", "rows skipped"],
                  rows)
    lines.append("")
    lines.append("skip/null only pay on the ~5% dirty rows; dictionary")
    lines.append("validation inspects every row (validate_always).")
    emit("§7 — cleaning policy overhead", lines)

    assert results["dirty file, skip"][1] > 0
    assert results["dirty file, skip"][0] < results["dirty file, dictionary"][0], \
        "exception-path repair must be cheaper than always-validate"
