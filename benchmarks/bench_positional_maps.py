"""§5 ablation — positional maps amortise CSV navigation.

The paper's example: "for a CSV file for which no positional index
structures exist, the cost to retrieve a tuple might be estimated to be
3 × const_cost". This benchmark measures, on the wide Genetics CSV:

- the cold scan (tokenizes, builds the map),
- the warm scan of the *same* columns (direct offset hits),
- the warm scan of *new* columns (anchored navigation),
- the same scan with positional maps disabled (every query pays cold cost).
"""

import time

from repro.bench import emit, table
from repro.core.session import ViDa


def _timed(db, query):
    t0 = time.perf_counter()
    result = db.query(query)
    return time.perf_counter() - t0, result


def test_positional_map_amortisation(benchmark, hbp):
    datasets, _queries = hbp

    def run():
        out = {}
        db = ViDa(enable_cache=False)  # isolate the posmap effect from caching
        db.register_csv("G", datasets.genetics_csv)
        out["cold"], _ = _timed(db, "for { g <- G } yield avg g.snp_10")
        out["warm same"], _ = _timed(db, "for { g <- G } yield avg g.snp_10")
        out["warm new col"], _ = _timed(db, "for { g <- G } yield avg g.snp_777")
        stats = db.catalog.get("G").plugin.posmap.stats

        nomap = ViDa(enable_cache=False, enable_posmap=False)
        nomap.register_csv("G", datasets.genetics_csv)
        _timed(nomap, "for { g <- G } yield avg g.snp_10")
        out["no posmap repeat"], _ = _timed(
            nomap, "for { g <- G } yield avg g.snp_10"
        )
        return out, stats

    out, stats = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[name, f"{seconds * 1e3:.1f}"] for name, seconds in out.items()]
    lines = table(["scan", "time (ms)"], rows)
    lines.append("")
    lines.append(f"map navigation: {stats.direct_hits} direct hits, "
                 f"{stats.anchored_scans} anchored, {stats.full_scans} full")
    cold_over_warm = out["cold"] / out["warm same"]
    width = datasets.config.genetics_snps + 1
    lines.append(f"cold / warm ratio: {cold_over_warm:.1f}x — on a "
                 f"{width}-column file the map skips tokenizing "
                 "~99% of every line")
    lines.append("(the paper's 3x figure is the per-tuple wrapper estimate "
                 "for unmapped CSV vs a loaded DBMS; the amortisation "
                 "direction is what must hold)")
    emit("§5 — positional map amortisation on the Genetics CSV", lines)

    assert out["warm same"] < out["cold"], "the map must pay off"
    assert out["no posmap repeat"] > out["warm same"], \
        "disabling the map must make repeat scans slower"
    assert stats.direct_hits > 0
