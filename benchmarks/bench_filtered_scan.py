"""Selection-vector filters + vectorized joins — vec vs row-at-a-time.

The batch pipeline (PR 1/2) moved scans to columnar chunks but predicates
and join build/probe still ran row-at-a-time. This benchmark measures the
selection-vector execution strategy on *warm* CSV scans (positional map
complete, cache disabled so raw navigation stays on the hot path):

- a selective filter (~9% selectivity: ``age >= 89`` over uniform 18-95)
  whose warm scan late-materialises — the predicate column is navigated
  densely, every other column only at surviving row indexes;
- the same filter feeding a vectorized hash join (key-column build kernel,
  batched probe lookups emitting a matched-selection vector, root fold
  fused over the survivors).

``ViDa(vector_filters=False)`` compiles the exact row-at-a-time evaluation
this PR replaced, so the comparison is self-contained: identical plans,
identical answers, only the filter/join execution strategy differs. The
selective warm filter must run >= 1.3x faster vectorized, serial and DoP 2
answers must be bit-identical to the row path.
"""

import time

from repro.bench import emit, table
from repro.core.session import ViDa


#: (label, query) — predicates chosen for <=10% selectivity on HBP Patients
QUERIES = [
    ("selective warm filter",
     "for { p <- Patients, p.age >= 89 } "
     "yield bag (id := p.id, h := p.height)"),
    ("selective filter + join",
     "for { p <- Patients, g <- Genetics, p.id = g.id, p.age >= 89 } "
     "yield sum g.snp_7"),
]


def _warm_session(datasets, vec: bool, dop: int = 1) -> ViDa:
    """A session with complete positional maps and no cache service, so
    every timed query runs the warm raw-CSV path."""
    db = ViDa(vector_filters=vec, parallelism=dop, enable_cache=False)
    db.register_csv("Patients", datasets.patients_csv)
    db.register_csv("Genetics", datasets.genetics_csv)
    for q in ("for { p <- Patients } yield count 1",
              "for { g <- Genetics } yield count 1"):
        db.query(q)  # cold pass: builds the positional maps
    return db


def _best_seconds(db: ViDa, query: str, repeats: int = 5):
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = db.query(query).value
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_filtered_scan_vectorization(benchmark, hbp):
    datasets, _queries = hbp

    def run():
        out = []
        for name, query in QUERIES:
            row = _warm_session(datasets, vec=False)
            vec = _warm_session(datasets, vec=True)
            vec2 = _warm_session(datasets, vec=True, dop=2)
            t_row, v_row = _best_seconds(row, query)
            t_vec, v_vec = _best_seconds(vec, query)
            t_vec2, v_vec2 = _best_seconds(vec2, query)
            # serial and parallel vectorized answers == row-at-a-time answers
            assert v_vec == v_row, name
            assert v_vec2 == v_row, name
            out.append((name, t_row, t_vec, t_vec2))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, t_row, t_vec, t_vec2 in results:
        rows.append([name, f"{t_row * 1e3:.1f}", f"{t_vec * 1e3:.1f}",
                     f"{t_vec2 * 1e3:.1f}", f"{t_row / t_vec:.2f}x"])
    lines = table(
        ["query", "row-at-a-time (ms)", "vec (ms)", "vec DoP 2 (ms)",
         "speedup"],
        rows,
    )
    lines.append("")
    lines.append("selection vectors: predicate kernels narrow each chunk, "
                 "warm CSV late-materialises survivors only; joins build/"
                 "probe via batched key kernels.")
    emit("Selection-vector filters + vectorized joins (warm CSV)", lines)

    name, t_row, t_vec, _t_vec2 = results[0]
    assert t_row / t_vec >= 1.3, (
        f"{name}: vectorized warm filter ran {t_row / t_vec:.2f}x the "
        "row-at-a-time baseline; expected >= 1.3x"
    )
