"""Morsel-driven parallel scans — thread vs process backends on cold raw data.

The chunk pipeline made the columnar batch the unit of data movement; the
morsel scheduler makes a range of batches the unit of scale-out. This
benchmark drives the wide-CSV (Genetics, ~1000 SNP columns) and JSON
(BrainRegions) cold scans serially, on thread morsels, and on the
process-pool backend (picklable kernel specs, one worker interpreter per
core), asserting every configuration returns the same answer.

The speedup assertion is **not** self-gated on the interpreter: worker
processes sidestep the GIL, so stock CPython must show real wall-clock
scaling. The only gate is physical — the machine must actually have >= 4
cores for a DoP-4 run to beat serial; on smaller boxes the run reports
measured timings and enforces correctness only. Worker spawn is a
per-session fixed cost and is paid outside the timed region via
``ViDa.prestart()``, matching how a long-lived session amortises it.

(Scripts that drive a process-backed session must be import-safe: spawn
workers re-import ``__main__``. Under pytest that holds automatically.)
"""

import math
import os
import time

from repro.bench import emit, table
from repro.core.session import ViDa

#: DoP-4 wall-clock speedup the cold wide-CSV scan must reach on >=4 cores
REQUIRED_SPEEDUP = 1.5


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


#: (label, query, source the driver scan reads)
QUERIES = [
    ("wide CSV filter+sum",
     "for { g <- Genetics, g.snp_10 = 1 } yield sum g.snp_500"),
    ("wide CSV count",
     "for { g <- Genetics, g.snp_3 = 1, g.snp_7 = 0 } yield count 1"),
    ("JSON filter+count",
     "for { b <- BrainRegions, b.quality > 0.7 } yield count 1"),
]


def _cold_seconds(datasets, query, dop, backend="thread", repeats=3):
    """Average cold-scan time: a fresh session per run (no positional map,
    no semi-index, no cache) so raw-parse work dominates, as in Table 2.
    Process sessions prestart their worker pool before the clock starts —
    interpreter spawn is session-lifetime overhead, not per-query work."""
    values = []
    elapsed = 0.0
    for _ in range(repeats):
        db = ViDa(parallelism=dop, backend=backend, enable_cache=False)
        db.register_csv("Genetics", datasets.genetics_csv)
        db.register_json("BrainRegions", datasets.brain_json)
        if backend == "process" and dop > 1:
            db.prestart()
        t0 = time.perf_counter()
        values.append(db.query(query).value)
        elapsed += time.perf_counter() - t0
        db.close()
    return elapsed / repeats, values[0]


def test_parallel_scan_speedup(benchmark, hbp):
    datasets, _queries = hbp

    # the headline scan must actually ship to worker processes
    probe = ViDa(parallelism=4, backend="process", enable_cache=False)
    probe.register_csv("Genetics", datasets.genetics_csv)
    probe.register_json("BrainRegions", datasets.brain_json)
    assert "parallel=4/process" in probe.explain(QUERIES[0][1]), \
        "cold wide-CSV scan did not choose the process backend"
    probe.close()

    def run():
        out = []
        for name, query in QUERIES:
            serial, v1 = _cold_seconds(datasets, query, 1)
            thread4, vt = _cold_seconds(datasets, query, 4)
            proc2, v2 = _cold_seconds(datasets, query, 2, backend="process")
            proc4, v4 = _cold_seconds(datasets, query, 4, backend="process")
            for v in (vt, v2, v4):
                if isinstance(v, float):
                    assert math.isclose(v, v1, rel_tol=1e-9)
                else:
                    assert v == v1
            out.append((name, serial, thread4, proc2, proc4))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    speedups = []
    for name, serial, thread4, proc2, proc4 in results:
        speedups.append(serial / proc4)
        rows.append([name, f"{serial * 1e3:.1f}", f"{thread4 * 1e3:.1f}",
                     f"{proc2 * 1e3:.1f}", f"{proc4 * 1e3:.1f}",
                     f"{serial / proc4:.2f}x"])
    cores = _cores()
    lines = table(
        ["query", "serial (ms)", "thread@4 (ms)", "proc@2 (ms)",
         "proc@4 (ms)", "proc speedup@4"],
        rows,
    )
    lines.append("")
    if cores >= 4:
        lines.append(f"{cores} cores available: enforcing >= "
                     f"{REQUIRED_SPEEDUP}x at process DoP 4 on the cold "
                     "wide-CSV scan (stock CPython, GIL and all)")
    else:
        lines.append(f"only {cores} core(s) available: a DoP-4 run cannot "
                     "physically beat serial here; timings are "
                     "informational and correctness is enforced only")
    emit("Morsel-driven parallel scans — thread vs process backends (cold)",
         lines)

    if cores >= 4:
        assert speedups[0] >= REQUIRED_SPEEDUP, (
            f"cold wide-CSV scan speedup at process DoP 4 was "
            f"{speedups[0]:.2f}x; expected >= {REQUIRED_SPEEDUP}x on a "
            f"{cores}-core machine"
        )
