"""Morsel-driven parallel scans — serial vs DoP 2/4 on cold raw scans.

The chunk pipeline made the columnar batch the unit of data movement; the
morsel scheduler makes a range of batches the unit of scale-out. This
benchmark drives the wide-CSV (Genetics, ~1000 SNP columns) and JSON
(BrainRegions) cold scans serially and at DoP 2/4, asserting that every
degree of parallelism returns the same answer.

The *speedup* assertion is capability-gated: CPython with the GIL cannot
run the pure-Python conversion kernels of two morsels simultaneously, so
thread-pool sharding only pays on free-threaded builds with multiple cores.
On a GIL-ful or single-core interpreter the run reports measured timings
(documenting the overhead) and enforces correctness only.
"""

import math
import os
import sys
import time

from repro.bench import emit, table
from repro.core.session import ViDa


def _parallel_capable() -> bool:
    """True when morsel threads can actually overlap kernel execution."""
    gil = getattr(sys, "_is_gil_enabled", lambda: True)()
    return not gil and (os.cpu_count() or 1) >= 4


#: (label, source registration key, query)
QUERIES = [
    ("wide CSV filter+sum",
     "for { g <- Genetics, g.snp_10 = 1 } yield sum g.snp_500"),
    ("wide CSV count",
     "for { g <- Genetics, g.snp_3 = 1, g.snp_7 = 0 } yield count 1"),
    ("JSON filter+count",
     "for { b <- BrainRegions, b.quality > 0.7 } yield count 1"),
]


def _cold_seconds(datasets, query, dop, repeats=3):
    """Average cold-scan time: a fresh session per run (no positional map,
    no semi-index, no cache) so raw-parse work dominates, as in Table 2."""
    values = []
    elapsed = 0.0
    for _ in range(repeats):
        db = ViDa(parallelism=dop, enable_cache=False)
        db.register_csv("Genetics", datasets.genetics_csv)
        db.register_json("BrainRegions", datasets.brain_json)
        t0 = time.perf_counter()
        values.append(db.query(query).value)
        elapsed += time.perf_counter() - t0
    return elapsed / repeats, values[0]


def test_parallel_scan_speedup(benchmark, hbp):
    datasets, _queries = hbp

    def run():
        out = []
        for name, query in QUERIES:
            serial, v1 = _cold_seconds(datasets, query, 1)
            dop2, v2 = _cold_seconds(datasets, query, 2)
            dop4, v4 = _cold_seconds(datasets, query, 4)
            for v in (v2, v4):
                if isinstance(v, float):
                    assert math.isclose(v, v1, rel_tol=1e-9)
                else:
                    assert v == v1
            out.append((name, serial, dop2, dop4))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    speedups = []
    for name, serial, dop2, dop4 in results:
        speedups.append(serial / dop4)
        rows.append([name, f"{serial * 1e3:.1f}", f"{dop2 * 1e3:.1f}",
                     f"{dop4 * 1e3:.1f}", f"{serial / dop4:.2f}x"])
    lines = table(
        ["query", "serial (ms)", "DoP 2 (ms)", "DoP 4 (ms)", "speedup@4"],
        rows,
    )
    lines.append("")
    if _parallel_capable():
        lines.append("runtime is parallel-capable (free-threaded, >=4 cores): "
                     "enforcing >=1.3x at DoP 4 on the cold wide-CSV scan")
    else:
        lines.append("runtime is NOT parallel-capable (GIL or <4 cores): "
                     "timings are informational; correctness enforced only")
    emit("Morsel-driven parallel scans — serial vs DoP 2/4 (cold)", lines)

    if _parallel_capable():
        assert speedups[0] >= 1.3, (
            f"cold wide-CSV scan speedup at DoP 4 was {speedups[0]:.2f}x; "
            "expected >= 1.3x on a parallel-capable runtime"
        )
