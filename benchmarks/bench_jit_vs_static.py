"""§4 ablation — JIT-generated operators vs pre-cooked generic operators.

"A 'pre-cooked' operator offering all these capabilities must be very
generic, thus introducing significant interpretation overhead." Both
engines execute the *same physical plans* over the same data; the static
engine interprets them with generic Volcano-style operators and a recursive
expression interpreter, the JIT engine runs one fused generated function.
"""

import time

from repro.bench import emit, table
from repro.core.session import ViDa

QUERIES = [
    ("filter+aggregate",
     "for { p <- Patients, p.age > 40 } yield avg p.protein_3"),
    ("conjunctive filter",
     'for { p <- Patients, p.age > 30, p.gender = "f", p.protein_1 > 45.0 } '
     "yield count 1"),
    ("hash join",
     "for { p <- Patients, g <- Genetics, p.id = g.id, g.snp_5 = 1 } "
     "yield count 1"),
    ("projection",
     "for { p <- Patients, p.age >= 60 } yield bag "
     "(id := p.id, a := p.age, x := p.protein_2)"),
]


def _avg_seconds(db, query, engine, repeats=5):
    # warm-up run amortises raw access; measurement hits the caches, so the
    # engines' per-tuple CPU work is what's compared.
    db.query(query, engine=engine)
    t0 = time.perf_counter()
    for _ in range(repeats):
        db.query(query, engine=engine)
    return (time.perf_counter() - t0) / repeats


def test_jit_vs_static_interpretation_overhead(benchmark, hbp):
    datasets, _queries = hbp

    def run():
        db = ViDa()
        db.register_csv("Patients", datasets.patients_csv)
        db.register_csv("Genetics", datasets.genetics_csv)
        out = []
        for name, query in QUERIES:
            jit = _avg_seconds(db, query, "jit")
            static = _avg_seconds(db, query, "static")
            out.append((name, jit, static))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    speedups = []
    for name, jit, static in results:
        speedup = static / jit
        speedups.append(speedup)
        rows.append([name, f"{jit * 1e3:.2f}", f"{static * 1e3:.2f}",
                     f"{speedup:.1f}x"])
    lines = table(["query", "JIT (ms)", "static (ms)", "speedup"], rows)
    lines.append("")
    lines.append(f"geometric-ish mean speedup: "
                 f"{sum(speedups) / len(speedups):.1f}x — the interpretation "
                 "overhead the paper's JIT operators eliminate")
    emit("§4 — JIT-generated vs pre-cooked (interpreted) operators", lines)

    assert all(s > 1.0 for s in speedups), \
        "generated code must beat interpreted operators on every query"
