"""§4 "Operator Logic" ablation — cache population strategies on raw scans.

"The scan operators of ViDa eagerly populate data structures, especially if
part of the data structure population cost can be hidden by the I/O cost of
the initial accesses." This ablation compares, over a repeated query
sequence:

- **eager** (default): cold scans piggyback columnar cache population;
- **pipelining only**: caching disabled, every query re-reads raw data.

Expected shape: eager pays a small first-query overhead and wins the
sequence; pure pipelining keeps the first query minimal but re-pays raw
access forever.
"""

import time

from repro.bench import emit, table
from repro.core.session import ViDa

SEQUENCE = [
    "for { p <- Patients, p.age > 40 } yield avg p.protein_1",
    "for { p <- Patients, p.age > 50 } yield avg p.protein_1",
    "for { p <- Patients, p.age > 60 } yield avg p.protein_1",
    "for { p <- Patients, p.age > 70 } yield max p.protein_1",
    "for { p <- Patients, p.age > 30 } yield count 1",
]


def test_eager_population_vs_pipelining(benchmark, hbp):
    datasets, _queries = hbp

    def run(enable_cache: bool):
        db = ViDa(enable_cache=enable_cache)
        db.register_csv("Patients", datasets.patients_csv)
        times = []
        for query in SEQUENCE:
            t0 = time.perf_counter()
            db.query(query)
            times.append(time.perf_counter() - t0)
        return times

    def both():
        return run(True), run(False)

    eager, pipeline = benchmark.pedantic(both, rounds=1, iterations=1)

    rows = []
    for i, (e, p) in enumerate(zip(eager, pipeline)):
        rows.append([f"q{i + 1}", f"{e * 1e3:.1f}", f"{p * 1e3:.1f}"])
    rows.append(["total", f"{sum(eager) * 1e3:.1f}", f"{sum(pipeline) * 1e3:.1f}"])
    lines = table(["query", "eager populate (ms)", "pipeline only (ms)"], rows)
    lines.append("")
    lines.append("eager population amortises after the first query; pure")
    lines.append("pipelining re-pays the raw scan on every query.")
    emit("§4 — eager cache population vs pure pipelining", lines)

    assert sum(eager) < sum(pipeline), "eager must win the sequence"
    assert all(e < p for e, p in zip(eager[1:], pipeline[1:])), \
        "every post-first query must be faster with the cache"
