"""§6 in-text claims: cache service ratio and cached-query latency.

"ViDa served approximately 80% of the workload using its data caches. For
these queries, the execution time was comparable to that of the loaded
column store."

This benchmark runs the workload on ViDa, reports the service ratio and the
cached/cold latency split, loads the same data into the column store, and
compares per-query times for the cache-served queries.
"""

import statistics

from repro.bench import emit, table
from repro.workloads import run_baseline, run_vida


def test_cache_service_ratio_and_latency(benchmark, hbp, tmp_path):
    datasets, queries = hbp

    def run():
        return run_vida(datasets, queries)

    timing, db, _results = benchmark.pedantic(run, rounds=1, iterations=1)

    ratio = timing.extra["cache_hit_ratio"]
    cold = [s.execute_ms for s in db.query_log if not s.cache_only]
    warm = [s.execute_ms for s in db.query_log if s.cache_only]

    col_timing, _ = run_baseline("colstore", datasets, queries,
                                 str(tmp_path / "col"))
    col_avg = statistics.mean(col_timing.per_query_s) * 1e3

    rows = [
        ["cache service ratio", f"{ratio:.0%}", "~80% (paper)"],
        ["cache-served queries", len(warm), ""],
        ["raw-touching queries", len(cold), "~20% (paper)"],
        ["avg cache-served query (ms)", statistics.mean(warm), ""],
        ["avg raw-touching query (ms)", statistics.mean(cold), ""],
        ["avg loaded-colstore query (ms)", col_avg, "comparable to cached"],
    ]
    lines = table(["metric", "value", "paper"], rows)
    ratio_vs_col = statistics.mean(warm) / col_avg
    lines.append("")
    lines.append(f"cached-ViDa / loaded-colstore per-query ratio: {ratio_vs_col:.2f}x")
    emit("§6 — cache locality and cached-query latency", lines)

    assert ratio > 0.5, "locality workload should be majority cache-served"
    assert statistics.mean(warm) < statistics.mean(cold), \
        "cache-served queries must be cheaper than raw-touching ones"
    # "comparable to the loaded column store": same order of magnitude
    assert ratio_vs_col < 10


def test_cache_hit_ratio_grows_with_locality(benchmark, tmp_path):
    """Higher attribute locality ⇒ higher cache service ratio."""
    from repro.workloads import HBPConfig, generate_datasets, make_workload

    ratios = {}

    def run_at(locality: float) -> float:
        cfg = HBPConfig(patients_rows=400, patients_proteins=24,
                        genetics_rows=400, genetics_snps=60,
                        brain_objects=200, regions_per_object=4,
                        n_queries=60, locality=locality, seed=11)
        datasets = generate_datasets(tmp_path / f"loc{int(locality*100)}", cfg)
        queries = make_workload(cfg)
        timing, _db, _r = run_vida(datasets, queries)
        return timing.extra["cache_hit_ratio"]

    def sweep():
        for loc in (0.2, 0.5, 0.9):
            ratios[loc] = run_at(loc)
        return ratios

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = table(["workload locality", "cache service ratio"],
                  [[f"{k:.0%}", f"{v:.0%}"] for k, v in sorted(ratios.items())])
    emit("ablation — locality vs cache service ratio", lines)
    assert ratios[0.9] > ratios[0.2]
