"""Shared benchmark fixtures: one HBP instance per session + result bags.

Benchmark scale is chosen so the full suite finishes in a few minutes while
preserving the paper's shape drivers (Genetics far wider than queries touch,
nested JSON, 80%-locality workload). ``VIDA_BENCH_SCALE=full`` switches to
the default (larger) workload configuration.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import emit, reset_log, table
from repro.workloads import HBPConfig, generate_datasets, make_workload

BENCH_CONFIG = HBPConfig(
    patients_rows=2500,
    patients_proteins=64,
    genetics_rows=2000,
    genetics_snps=1000,
    brain_objects=1000,
    regions_per_object=10,
    n_queries=100,
)

if os.environ.get("VIDA_BENCH_SCALE") == "full":
    BENCH_CONFIG = HBPConfig()


@pytest.fixture(scope="session", autouse=True)
def _fresh_log():
    reset_log()


@pytest.fixture(scope="session")
def hbp(tmp_path_factory):
    """Generated HBP datasets + workload at benchmark scale."""
    directory = tmp_path_factory.mktemp("hbp_bench")
    datasets = generate_datasets(directory, BENCH_CONFIG)
    queries = make_workload(BENCH_CONFIG)
    return datasets, queries


@pytest.fixture(scope="session")
def figure5_results():
    """Accumulates per-system timings; prints the Figure 5 table at the end."""
    bag: dict = {}
    yield bag
    if not bag:
        return
    vida = bag.get("vida")
    rows = []
    for system in ("vida", "colstore", "rowstore", "colstore+mongo",
                   "rowstore+mongo"):
        t = bag.get(system)
        if t is None:
            continue
        speedup = (t.total_s / vida.total_s) if vida else float("nan")
        rows.append([
            system, t.flatten_s, t.load_dbms_s + t.load_mongo_s, t.query_s,
            t.total_s, f"{speedup:.2f}x",
        ])
    lines = table(
        ["system", "flatten (s)", "load (s)", "q1-qN (s)", "total (s)",
         "vs ViDa"],
        rows,
    )
    if vida:
        lines.append("")
        lines.append(f"ViDa cache service ratio: "
                     f"{vida.extra.get('cache_hit_ratio', 0):.0%} (paper: ~80%)")
        preps = [t.prep_s for k, t in bag.items() if k != "vida"]
        if preps and all(vida.total_s < p for p in preps):
            lines.append("ViDa finished the whole workload before every "
                         "baseline finished preparation (paper's claim).")
    emit("Figure 5 — cumulative preparation + 150-query workload", lines)
