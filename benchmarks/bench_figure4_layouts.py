"""Figure 4 (as an ablation) — layouts for tuples carrying a JSON object.

The paper's Figure 4 shows four layouts the optimizer chooses between for a
tuple ⟨int, JSON-object⟩: (a) JSON text, (b) binary JSON (BSON), (c) parsed
object, (d) only start/end byte positions. This benchmark measures, for the
BrainRegions objects: materialisation cost, downstream field-access cost,
memory footprint, and (for positions) the deferred re-assembly cost.

Expected shape: positions are by far the cheapest to build and carry
(pollution avoidance, §5) but pay at projection time; objects are the most
expensive to hold but cheapest to access repeatedly; BSON sits between text
and objects for access, beating text in compactness of *navigation*.
"""

import time

from repro.bench import emit, table
from repro.caching import materialize
from repro.formats.jsonfmt import JSONSource, get_path


def test_figure4_layout_tradeoffs(benchmark, hbp):
    datasets, _queries = hbp
    source = JSONSource(datasets.brain_json)
    objects = list(source.scan_objects())
    spans = [(s.start, s.end) for s in source.scan_positions()]

    results = {}

    def measure(layout: str, rows):
        t0 = time.perf_counter()
        cached = materialize(layout, [], rows)
        build_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        if layout == "positions":
            access_s = None  # cannot project from spans directly
        else:
            total = 0.0
            for (vol,) in cached.iter_rows(["volume_total"]):
                total += vol or 0.0
            access_s = time.perf_counter() - t0
        return cached, build_s, access_s

    def run_all():
        for layout, rows in (
            ("json_text", objects),
            ("bson", objects),
            ("objects", objects),
            ("positions", spans),
        ):
            results[layout] = measure(layout, rows)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # deferred assembly cost for the positions layout (10% survivors)
    survivors = [s for i, s in enumerate(source.scan_positions())
                 if i % 10 == 0]
    t0 = time.perf_counter()
    assembled = source.assemble(survivors)
    assemble_s = time.perf_counter() - t0

    rows = []
    for layout in ("json_text", "bson", "objects", "positions"):
        cached, build_s, access_s = results[layout]
        rows.append([
            layout, f"{build_s * 1e3:.1f}",
            f"{access_s * 1e3:.1f}" if access_s is not None
            else f"(assemble 10%: {assemble_s * 1e3:.1f})",
            f"{cached.nbytes / 1e6:.2f}",
        ])
    lines = table(["layout (Fig. 4)", "build (ms)", "project volume_total (ms)",
                   "memory (MB)"], rows)
    emit("Figure 4 — materialisation layouts for JSON-carrying tuples", lines)

    mem = {k: v[0].nbytes for k, v in results.items()}
    assert mem["positions"] < mem["bson"] < mem["objects"]
    assert mem["positions"] < 0.05 * mem["json_text"], \
        "positions must be orders of magnitude smaller (pollution avoidance)"
    access = {k: v[2] for k, v in results.items() if v[2] is not None}
    assert access["objects"] < access["json_text"], \
        "parsed objects must be cheaper to re-access than re-parsing text"
    assert len(assembled) == len(survivors)
