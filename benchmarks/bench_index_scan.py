"""JIT secondary indexes — value-based access paths vs full chunked scans.

Positional maps cut *navigation* cost, but a warm filtered scan still
touches every row to evaluate its predicate. The value-index subsystem
builds hash/sorted-run indexes over the predicate column *as a byproduct of
the first scan* (the same just-in-time economics as the positional map:
never a dedicated pass), then lets the planner answer repeated point and
range queries through candidate-row fetches instead of full scans.

This benchmark registers a 40k-row CSV, pays one cold query (positional map
+ value index build), then times repeated point and range filters:

- ``enable_indexes=False`` — the warm full-chunked-scan baseline (cache off
  so every repeat really re-scans; this is the workload indexes exist for);
- ``enable_indexes=True`` — identical session, planner upgrades the scan to
  ``access=index`` (EXPLAIN proof asserted).

Answers must be bit-identical and the warm point query must run >= 3x
faster through the index.
"""

import random
import time

import pytest

from repro.bench import emit, table
from repro.core.session import ViDa

ROWS = 40_000
REQUIRED_SPEEDUP = 3.0

#: (label, query) — point and range filters over the indexed column
QUERIES = [
    ("point (val = 377)",
     "for { e <- Events, e.val = 377 } yield bag (id := e.id)"),
    ("range (val >= 990)",
     "for { e <- Events, e.val >= 990 } yield bag (id := e.id)"),
]


@pytest.fixture(scope="module")
def events_csv(tmp_path_factory):
    rng = random.Random(42)
    path = tmp_path_factory.mktemp("index_bench") / "events.csv"
    with open(path, "w") as fh:
        fh.write("id,val,score\n")
        for i in range(ROWS):
            fh.write(f"{i},{rng.randrange(1000)},{rng.random():.4f}\n")
    return str(path)


def _warm_session(events_csv, indexed: bool) -> ViDa:
    """Cache off so warm repeats stay on the raw path; the cold pass builds
    the positional map and (when enabled) the value index as byproducts."""
    db = ViDa(enable_cache=False, enable_indexes=indexed)
    db.register_csv("Events", events_csv)
    db.query("for { e <- Events, e.val = 0 } yield count 1")  # cold pass
    return db


def _best_seconds(db: ViDa, query: str, repeats: int = 5):
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = db.query(query).value
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_index_scan_speedup(benchmark, events_csv):
    def run():
        scan = _warm_session(events_csv, indexed=False)
        idx = _warm_session(events_csv, indexed=True)
        # EXPLAIN proof: the planner chose the index access path
        explain = idx.explain(QUERIES[0][1])
        assert "access=index[val]" in explain, explain
        out = []
        for name, query in QUERIES:
            t_scan, v_scan = _best_seconds(scan, query)
            t_idx, v_idx = _best_seconds(idx, query)
            assert v_idx == v_scan, name  # bit-identical answers
            r = idx.query(query)
            assert r.stats.index_hits == 1, (name, r.decisions.summary())
            out.append((name, t_scan, t_idx))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, t_scan, t_idx in results:
        rows.append([name, f"{t_scan * 1e3:.1f}", f"{t_idx * 1e3:.1f}",
                     f"{t_scan / t_idx:.2f}x"])
    lines = table(
        ["query", "full scan (ms)", "index (ms)", "speedup"], rows)
    lines.append("")
    lines.append("value indexes built as byproducts of the cold scan; warm "
                 "point/range filters fetch candidate rows through the "
                 "positional map instead of re-scanning, with the original "
                 "predicate kept as a recheck.")
    emit(f"JIT value indexes vs full chunked scans ({ROWS} rows, warm CSV)",
         lines)

    name, t_scan, t_idx = results[0]
    assert t_scan / t_idx >= REQUIRED_SPEEDUP, (
        f"{name}: index-served query ran {t_scan / t_idx:.2f}x the full-scan "
        f"baseline; expected >= {REQUIRED_SPEEDUP}x"
    )
