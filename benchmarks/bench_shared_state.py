"""Shared engine state — a second tenant rides the first tenant's cold scan.

The multi-tenant economics of the EngineContext split: positional maps,
data-cache entries and value indexes are properties of the *data*, so once
any tenant session pays a cold scan, every other session attached to the
same context gets the warm access paths for free.

This benchmark registers a 60k-row CSV once in a shared context, has tenant
A pay the cold scan, then times tenant B's first query of its life:

- ``shared`` — B attaches to A's context; its "cold" query is served from
  the cache/posmap A built (B itself never scanned anything);
- ``isolated`` — the same query by a fresh session on a fresh context, the
  price B would have paid without sharing.

Answers must be bit-identical and the shared-context query must run >= 3x
faster than the isolated cold baseline.
"""

import time

import pytest

from repro.bench import emit, table
from repro.core.engine import EngineContext
from repro.core.session import ViDa

ROWS = 60_000
REQUIRED_SPEEDUP = 3.0

QUERY = "for { e <- Events, e.val > 600 } yield bag (id := e.id, v := e.val)"


@pytest.fixture(scope="module")
def events_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("shared_bench") / "events.csv"
    with open(path, "w") as fh:
        fh.write("id,val,score\n")
        for i in range(ROWS):
            fh.write(f"{i},{i * 7919 % 1000},{i % 97}\n")
    return str(path)


def _timed(db: ViDa, query: str):
    t0 = time.perf_counter()
    result = db.query(query)
    return time.perf_counter() - t0, result


def test_second_session_rides_first_sessions_scan(benchmark, events_csv):
    def run():
        # isolated baseline: what the query costs on a context nobody warmed
        lone = ViDa()
        lone.register_csv("Events", events_csv)
        t_cold, r_cold = _timed(lone, QUERY)
        lone.close()

        # shared context: tenant A pays the cold scan, tenant B never does
        ctx = EngineContext()
        a = ViDa(context=ctx)
        b = ViDa(context=ctx)
        a.register_csv("Events", events_csv)
        t_a, r_a = _timed(a, QUERY)
        t_warm, r_b = _timed(b, QUERY)  # B's very first query
        assert r_a.value == r_cold.value
        assert r_b.value == r_cold.value  # bit-identical across tenants
        assert r_b.stats.cache_only, "B should never touch the raw file"
        assert ctx.stats.posmap_adoptions == 1
        snapshot = ctx.stats_snapshot()
        a.close()
        b.close()
        return t_cold, t_a, t_warm, snapshot

    t_cold, t_a, t_warm, snapshot = benchmark.pedantic(
        run, rounds=1, iterations=1)

    speedup = t_cold / t_warm
    lines = table(
        ["tenant", "context", "first query (ms)", "vs isolated cold"],
        [
            ["isolated", "fresh", f"{t_cold * 1e3:.1f}", "1.00x"],
            ["A (pays the scan)", "shared", f"{t_a * 1e3:.1f}",
             f"{t_cold / t_a:.2f}x"],
            ["B (rides A's state)", "shared", f"{t_warm * 1e3:.1f}",
             f"{speedup:.2f}x"],
        ],
    )
    lines.append("")
    lines.append(f"engine after the run: cache hits={snapshot['cache']['hits']}, "
                 f"admissions={snapshot['cache']['admissions']}, "
                 f"posmap adoptions={snapshot['posmap_adoptions']}, "
                 f"sessions served={snapshot['sessions_opened']}")
    lines.append("tenant B's first query is served from the cache entry and "
                 "positional map tenant A's cold scan piggybacked — the "
                 "pay-once-amortise-everywhere economics, now cross-session.")
    emit(f"Shared EngineContext — warm tenant vs isolated cold ({ROWS} rows)",
         lines)

    assert speedup >= REQUIRED_SPEEDUP, (
        f"second tenant's warm query ran {speedup:.2f}x the isolated cold "
        f"baseline; expected >= {REQUIRED_SPEEDUP}x"
    )
