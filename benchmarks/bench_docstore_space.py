"""§6 in-text claim: document-store space amplification.

"Although no initial flattening was required, populating MongoDB was a time-
but also a space-consuming process: the imported JSON data reached 12GB
(twice the space of the raw JSON dataset)."
"""

import os

from repro.bench import emit, table
from repro.warehouse import DocStore, load_json_to_docstore


def test_docstore_space_amplification(benchmark, hbp):
    datasets, _queries = hbp
    raw_bytes = os.path.getsize(datasets.brain_json)

    def load():
        store = DocStore()
        load_json_to_docstore(store, "BrainRegions", datasets.brain_json)
        return store

    store = benchmark.pedantic(load, rounds=1, iterations=1)
    stats = store.stats("BrainRegions")
    amplification = stats["storage_bytes"] / raw_bytes
    payload_ratio = stats["payload_bytes"] / raw_bytes

    lines = table(
        ["metric", "bytes", "vs raw JSON"],
        [
            ["raw JSON file", raw_bytes, "1.00x"],
            ["BSON payload", stats["payload_bytes"], f"{payload_ratio:.2f}x"],
            ["allocated storage", stats["storage_bytes"], f"{amplification:.2f}x"],
        ],
    )
    lines.append("")
    lines.append(f"paper: imported JSON reached 2.0x raw; ours: {amplification:.2f}x")
    emit("§6 — document store space amplification", lines)

    assert amplification > 1.2, "BSON + slot allocation must amplify storage"
    assert amplification < 4.0, "amplification should stay near the paper's 2x"
