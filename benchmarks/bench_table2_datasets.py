"""Table 2 — workload characteristics (paper §6).

Regenerates the HBP datasets and prints their measured characteristics next
to the paper's originals. The benchmark measures generation throughput.
"""

from repro.bench import emit, table
from repro.workloads import PAPER_TABLE2, HBPConfig, generate_datasets


def test_table2_dataset_characteristics(benchmark, hbp, tmp_path):
    datasets, _queries = hbp

    def regenerate():
        return generate_datasets(tmp_path / "regen", HBPConfig.tiny())

    benchmark.pedantic(regenerate, rounds=3, iterations=1)

    measured = datasets.table2_rows()
    rows = []
    for paper, mine in zip(PAPER_TABLE2, measured):
        rows.append([
            paper["relation"],
            f"{paper['tuples']:,} / {mine['tuples']:,}",
            f"{paper['attributes']:,} / {mine['attributes']}",
            f"{paper['size']} / {mine['bytes'] / 1e6:.1f} MB",
            paper["type"],
        ])
    lines = table(
        ["relation", "tuples (paper/ours)", "attrs (paper/ours)",
         "size (paper/ours)", "type"],
        rows,
    )
    lines.append("")
    lines.append("scaled instance preserves the paper's shape: Genetics is the")
    lines.append("widest relation by far; BrainRegions is hierarchical JSON.")
    emit("Table 2 — Human Brain Project workload characteristics", lines)

    by_name = {r["relation"]: r for r in measured}
    assert by_name["Genetics"]["attributes"] > 5 * by_name["Patients"]["attributes"]
    assert all(r["bytes"] > 0 for r in measured)
