"""O(delta) refresh — an appended tail costs the tail, not the file.

A 100k-row CSV grows by 1% tails. A long-lived session classifies each
mutation as an append and *extends* its positional map, cached columns,
and stats over the new tail (re-scanning only the appended bytes); the
baseline is what everyone pays without the delta path — a cold rebuild
(fresh session, full scan) over the same grown file.

Gates: answers bit-identical every round, the delta path >= 5x faster than
the rebuild, and the engine's raw-byte accounting shows the refreshes
re-read exactly the appended tail bytes (no silent full re-scans).
"""

import time

import pytest

from repro.bench import emit, table
from repro.core.session import ViDa

ROWS = 100_000
TAIL_ROWS = ROWS // 100  # 1% growth per round
ROUNDS = 5
REQUIRED_SPEEDUP = 5.0

QUERY = "for { e <- Events, e.val > 900 } yield bag (id := e.id, v := e.val)"


def _write(path, n):
    with open(path, "w") as fh:
        fh.write("id,val\n")
        for i in range(n):
            fh.write(f"{i},{i * 7919 % 1000}\n")


def _append_tail(path, start, count):
    data = "".join(f"{i},{i * 7919 % 1000}\n"
                   for i in range(start, start + count))
    with open(path, "a") as fh:
        fh.write(data)
    return len(data.encode())


def _timed(db, query):
    t0 = time.perf_counter()
    result = db.query(query)
    return time.perf_counter() - t0, result


def test_delta_refresh_beats_cold_rebuild(benchmark, tmp_path):
    path = str(tmp_path / "events.csv")
    _write(path, ROWS)

    def run():
        db = ViDa()
        db.register_csv("Events", path)
        db.query(QUERY)  # pay the cold scan once; auxiliaries are live

        rows = ROWS
        t_delta = t_rebuild = 0.0
        appended_bytes = 0
        per_round = []
        for rnd in range(ROUNDS):
            appended_bytes += _append_tail(path, rows, TAIL_ROWS)
            rows += TAIL_ROWS
            # delta path: first query after the append on the warm session
            dt, warm = _timed(db, QUERY)
            # rebuild baseline: a fresh session's cold scan of the same file
            cold_db = ViDa()
            cold_db.register_csv("Events", path)
            rt, cold = _timed(cold_db, QUERY)
            cold_db.close()
            assert warm.value == cold.value  # bit-identical every round
            t_delta += dt
            t_rebuild += rt
            per_round.append((rnd + 1, dt, rt))
        snapshot = db.engine_context.stats_snapshot()
        db.close()
        return t_delta, t_rebuild, appended_bytes, snapshot, per_round

    t_delta, t_rebuild, appended_bytes, snapshot, per_round = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    # every round was classified append and re-read only the tail bytes
    assert snapshot["delta_refreshes"] == ROUNDS
    assert snapshot["full_invalidations"] == 0
    assert snapshot["delta_tail_bytes"] == appended_bytes

    speedup = t_rebuild / t_delta
    lines = table(
        ["round", "delta refresh (ms)", "cold rebuild (ms)", "speedup"],
        [[rnd, f"{dt * 1e3:.1f}", f"{rt * 1e3:.1f}", f"{rt / dt:.1f}x"]
         for rnd, dt, rt in per_round],
    )
    lines.append("")
    lines.append(f"totals: delta {t_delta * 1e3:.1f} ms vs rebuild "
                 f"{t_rebuild * 1e3:.1f} ms ({speedup:.1f}x); tail bytes "
                 f"re-read {snapshot['delta_tail_bytes']} == appended "
                 f"{appended_bytes}")
    lines.append("the refresh price is the appended 1% tail, not the file — "
                 "posmap, cached columns and stats extend in place and the "
                 "superseded generation stays retained for AS OF.")
    emit(f"O(delta) refresh vs cold rebuild ({ROWS} rows + "
         f"{ROUNDS}x{TAIL_ROWS}-row tails)", lines)

    assert speedup >= REQUIRED_SPEEDUP, (
        f"delta refresh ran only {speedup:.2f}x faster than a cold rebuild; "
        f"expected >= {REQUIRED_SPEEDUP}x"
    )
