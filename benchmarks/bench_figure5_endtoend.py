"""Figure 5 — ViDa vs. warehouse baselines on the HBP workload (paper §6).

One benchmark per system configuration; each runs preparation (flatten +
load, zero for ViDa) and then the full query workload. The session fixture
prints the combined Figure 5 table with per-bar components and speedups.

Expected shape (paper): ViDa total ≪ every baseline; ViDa completes the
whole workload before the baselines finish loading; speedup vs the worst
configuration in the low single digits ("up to 4.2x" on the paper's
hardware — our rowstore substrate pays relatively more per tuple, so its
factor can be larger).
"""

import pytest

from repro.workloads import BASELINES, normalize_result, run_baseline, run_vida

_vida_results = {}


def test_figure5_vida(benchmark, hbp, figure5_results):
    datasets, queries = hbp

    def run():
        timing, _db, results = run_vida(datasets, queries)
        return timing, results

    timing, results = benchmark.pedantic(run, rounds=1, iterations=1)
    figure5_results["vida"] = timing
    _vida_results["values"] = results
    assert timing.extra["cache_hit_ratio"] > 0.5


@pytest.mark.parametrize("kind", BASELINES)
def test_figure5_baseline(benchmark, hbp, figure5_results, tmp_path, kind):
    datasets, queries = hbp

    def run():
        return run_baseline(kind, datasets, queries, str(tmp_path / kind.replace("+", "_")))

    timing, results = benchmark.pedantic(run, rounds=1, iterations=1)
    figure5_results[kind] = timing

    # every baseline must compute the same answers as ViDa
    vida_values = _vida_results.get("values")
    if vida_values is not None:
        mismatches = sum(
            1 for a, b in zip(vida_values, results)
            if normalize_result(a) != normalize_result(b)
        )
        assert mismatches == 0, f"{kind} disagrees with ViDa on {mismatches} queries"

    # the headline shape: ViDa total below this baseline's total
    vida_timing = figure5_results.get("vida")
    if vida_timing is not None:
        assert vida_timing.total_s < timing.total_s, (
            f"ViDa ({vida_timing.total_s:.1f}s) should beat {kind} "
            f"({timing.total_s:.1f}s)"
        )
