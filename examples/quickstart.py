#!/usr/bin/env python
"""Quickstart: build a database just-in-time by launching queries.

Creates two raw files (a CSV relation and a hierarchical JSON dataset),
registers them with a ViDa session — *no loading, no transformation* — and
queries across both models with the comprehension language and with SQL.

Run:  python examples/quickstart.py
"""

import json
import os
import tempfile

from repro import ViDa
from repro.formats import write_csv


def make_raw_files(directory: str) -> tuple[str, str]:
    """Write the raw inputs a user might already have on disk."""
    patients = os.path.join(directory, "patients.csv")
    write_csv(
        patients,
        ["id", "age", "gender", "protein"],
        [(i, 25 + (i * 7) % 50, "mf"[i % 2], round(40 + (i % 9) * 2.5, 2))
         for i in range(500)],
    )
    scans = os.path.join(directory, "scans.json")
    with open(scans, "w") as fh:
        for i in range(500):
            fh.write(json.dumps({
                "id": i,
                "quality": round(0.5 + (i % 10) / 20, 2),
                "regions": [{"name": f"BA{r}", "volume": 10.0 + r + i * 0.01}
                            for r in range(4)],
            }) + "\n")
    return patients, scans


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="vida-quickstart-")
    patients_csv, scans_json = make_raw_files(workdir)

    db = ViDa()
    db.register_csv("Patients", patients_csv)
    db.register_json("Scans", scans_json)

    print("== monoid comprehension over raw CSV ==")
    result = db.query(
        'for { p <- Patients, p.gender = "f", p.age > 60 } yield avg p.protein'
    )
    print(f"avg protein (women over 60): {result.value:.2f}")
    print(f"  engine={result.stats.engine} raw rows parsed={result.stats.raw_rows}")

    print("\n== the same query again: served from ViDa's caches ==")
    result = db.query(
        'for { p <- Patients, p.gender = "f", p.age > 60 } yield avg p.protein'
    )
    print(f"avg protein: {result.value:.2f}  cache-only={result.stats.cache_only}")

    print("\n== cross-model join: CSV × nested JSON, unnesting arrays ==")
    result = db.query("""
        for { p <- Patients, s <- Scans, r <- s.regions,
              p.id = s.id, p.age >= 70, r.volume > 12.5 }
        yield bag (id := p.id, region := r.name, volume := r.volume)
    """)
    print(f"{len(result.value)} region rows; first: {result.value[0]}")

    print("\n== SQL over the same raw files ==")
    result = db.sql(
        "SELECT gender, COUNT(*) AS n, AVG(protein) AS p "
        "FROM Patients p GROUP BY gender"
    )
    for row in result.value:
        print(f"  {row}")

    print("\n== EXPLAIN shows the raw-data-aware physical plan ==")
    print(db.explain(
        "for { p <- Patients, p.age > 40 } yield count 1"
    ))

    print("\n== the generated (JIT) code of the last query ==")
    result = db.query("for { p <- Patients, p.age > 40 } yield count 1")
    print("\n".join(result.code.splitlines()[:20]))
    print("  ...")


if __name__ == "__main__":
    main()
