#!/usr/bin/env python
"""Procedural analytics on ViDa (paper §7): iterative K-means over raw data.

"The monoid comprehension calculus provides numerous constructs (e.g.,
variables, if-then-else clauses) that ViDa can already use to express tasks
that would typically be expressed using a procedural language."

Each K-means iteration is expressed as *declarative comprehensions* with the
current centroids inlined as constants — so every iteration JIT-compiles a
fresh specialised engine (the "database as a query" idea taken literally),
while the raw CSV is read once and every later pass is served from ViDa's
columnar caches.

Run:  python examples/procedural_kmeans.py
"""

import os
import random
import tempfile

from repro import ViDa
from repro.formats import write_csv

K = 3
ITERATIONS = 8


def make_points(path: str, seed: int = 5) -> list[tuple[float, float]]:
    """Three gaussian blobs in 2-D, written as a raw CSV."""
    rng = random.Random(seed)
    centers = [(0.0, 0.0), (8.0, 8.0), (0.0, 9.0)]
    points = []
    for i in range(1200):
        cx, cy = centers[i % 3]
        points.append((round(rng.gauss(cx, 1.2), 3), round(rng.gauss(cy, 1.2), 3)))
    write_csv(path, ["id", "x", "y"],
              [(i, x, y) for i, (x, y) in enumerate(points)])
    return points


def nearest_pred(centroids: list[tuple[float, float]], j: int) -> str:
    """A predicate selecting points whose nearest centroid is ``j``.

    Squared distances are spelled out arithmetically; ties break toward the
    lower index (strict inequality for earlier centroids).
    """
    def dist(c):
        cx, cy = c
        return f"((p.x - {cx}) * (p.x - {cx}) + (p.y - {cy}) * (p.y - {cy}))"

    dj = dist(centroids[j])
    clauses = []
    for other, c in enumerate(centroids):
        if other == j:
            continue
        cmp_op = "<" if j < other else "<="
        clauses.append(f"{dj} {cmp_op} {dist(c)}")
    return " and ".join(clauses)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="vida-kmeans-")
    csv_path = os.path.join(workdir, "points.csv")
    make_points(csv_path)

    db = ViDa()
    db.register_csv("Points", csv_path)

    rng = random.Random(1)
    centroids = [(rng.uniform(-2, 10), rng.uniform(-2, 10)) for _ in range(K)]
    print(f"initial centroids: {[(round(x,2), round(y,2)) for x, y in centroids]}")

    for it in range(ITERATIONS):
        new_centroids = []
        sizes = []
        for j in range(K):
            pred = nearest_pred(centroids, j)
            n = db.query(f"for {{ p <- Points, {pred} }} yield count 1").value
            if n == 0:
                new_centroids.append(centroids[j])
                sizes.append(0)
                continue
            sx = db.query(f"for {{ p <- Points, {pred} }} yield sum p.x").value
            sy = db.query(f"for {{ p <- Points, {pred} }} yield sum p.y").value
            new_centroids.append((sx / n, sy / n))
            sizes.append(n)
        shift = max(
            abs(a[0] - b[0]) + abs(a[1] - b[1])
            for a, b in zip(centroids, new_centroids)
        )
        centroids = new_centroids
        print(f"iter {it + 1}: sizes={sizes} "
              f"centroids={[(round(x, 2), round(y, 2)) for x, y in centroids]} "
              f"shift={shift:.4f}")
        if shift < 1e-4:
            break

    served = sum(1 for s in db.query_log if s.cache_only)
    print(f"\n{len(db.query_log)} JIT-compiled queries; "
          f"{served} served from ViDa's caches "
          f"({served / len(db.query_log):.0%} — the raw file was parsed once)")
    print("every iteration generated fresh specialised code: the engine is "
          "rebuilt per query, as the paper envisions")


if __name__ == "__main__":
    main()
