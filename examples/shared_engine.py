#!/usr/bin/env python
"""Shared engine context: many tenants, one set of just-in-time structures.

A single EngineContext owns the catalog, the data cache, the positional
maps and the value indexes; each ViDa session attached to it is a thin
per-tenant view. Tenant A pays the one cold scan; tenant B's very first
query is then served from the cache A's scan populated — the paper's
pay-once-amortise-forever economics, extended across sessions.

Also shows per-tenant cache-write quotas (a metered tenant still *reads*
everything others warmed) and the engine's cross-tenant sharing counters.

Run:  python examples/shared_engine.py
"""

import os
import tempfile
import time

from repro import EngineContext, ViDa
from repro.formats import write_csv

QUERY = "for { e <- Events, e.val > 600 } yield sum e.val"


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "events.csv")
        write_csv(path, ["id", "val"],
                  [(i, i * 7919 % 1000) for i in range(200_000)])

        ctx = EngineContext()
        tenant_a = ViDa(context=ctx)
        tenant_b = ViDa(context=ctx)
        # a metered tenant: its own admissions are capped at 0 bytes, but
        # it still reads every structure the other tenants built
        tenant_c = ViDa(context=ctx, cache_write_quota_bytes=0)

        tenant_a.register_csv("Events", path)  # one catalog for everyone

        t0 = time.perf_counter()
        r_a = tenant_a.query(QUERY)
        t_cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        r_b = tenant_b.query(QUERY)  # B's first query ever
        t_warm = time.perf_counter() - t0

        r_c = tenant_c.query(QUERY)  # cache read: quota does not apply
        # a projection the cache doesn't cover: C scans warm (via A's
        # positional map) but its admission is refused by the write quota
        tenant_c.query("for { e <- Events } yield sum e.id")

        assert r_a.value == r_b.value == r_c.value
        print(f"tenant A (cold scan):        {t_cold * 1e3:7.1f} ms")
        print(f"tenant B (rides A's state):  {t_warm * 1e3:7.1f} ms "
              f"({t_cold / t_warm:.1f}x faster, cache_only={r_b.stats.cache_only})")
        print(f"tenant C (quota'd writer):   cache_only={r_c.stats.cache_only}, "
              f"writes denied={tenant_c.cache.writes_denied}")

        snap = ctx.stats_snapshot()
        print(f"\nengine: {snap['queries']} queries over "
              f"{snap['sessions_opened']} sessions; "
              f"posmap adoptions={snap['posmap_adoptions']}, "
              f"cache hits={snap['cache']['hits']}, "
              f"compile-cache hits={snap['compile_cache']['hits']}")

        for session in (tenant_a, tenant_b, tenant_c):
            session.close()  # last one out shuts shared resources


if __name__ == "__main__":
    main()
