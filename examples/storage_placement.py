#!/usr/bin/env python
"""Storage-technology placement study (paper §7): where should raw data,
positional structures, and caches live as HDD gives way to flash/PCM?

Uses the simulated device models to compare placement plans on a raw-scan
workload, reporting simulated seconds and energy — the decision inputs the
paper says a virtualization layer must weigh ("cost, performance and energy
consumption").

Run:  python examples/storage_placement.py
"""

import os
import tempfile

from repro import ViDa
from repro.formats import write_csv
from repro.storage import PROFILES, StorageDevice


def run_with_device(csv_path: str, profile: str) -> StorageDevice:
    device = StorageDevice(profile)  # accounted, not slept
    db = ViDa()
    db.register_csv("T", csv_path)
    db.set_device("T", device)
    # one cold scan (builds positional map), one warm projective query
    db.query("for { t <- T } yield avg t.v0")
    db.cache.clear()
    db.query("for { t <- T } yield avg t.v7")
    return device


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="vida-storage-")
    csv_path = os.path.join(workdir, "wide.csv")
    cols = ["id"] + [f"v{i}" for i in range(20)]
    write_csv(csv_path, cols,
              [tuple([r] + [round(r * 0.1 + i, 2) for i in range(20)])
               for r in range(20000)])
    size_mb = os.path.getsize(csv_path) / 1e6
    print(f"raw file: {size_mb:.1f} MB, devices: {', '.join(PROFILES)}\n")

    print(f"{'device':<8} {'sim seconds':>12} {'energy (J)':>12} "
          f"{'MB read':>9} {'seeks':>6}")
    results = {}
    for profile in ("hdd", "flash", "pcm"):
        device = run_with_device(csv_path, profile)
        stats = device.stats
        results[profile] = stats
        print(f"{profile:<8} {stats.simulated_seconds:12.4f} "
              f"{stats.energy_joules:12.6f} {stats.bytes_read / 1e6:9.1f} "
              f"{stats.read_seeks:6d}")

    hdd = results["hdd"].simulated_seconds
    print("\nspeedups over HDD for the same raw-data workload:")
    for profile in ("flash", "pcm"):
        print(f"  {profile}: {hdd / results[profile].simulated_seconds:.1f}x")
    print("\nimplication (paper §7): raw data benefits most from sequential "
          "bandwidth; positional maps and caches are small and random — "
          "place them on the lowest-latency tier.")


if __name__ == "__main__":
    main()
