#!/usr/bin/env python
"""The paper's motivating scenario: Human Brain Project analysis (§1.1/§6).

Generates a scaled HBP instance (wide Patients/Genetics CSVs + hierarchical
BrainRegions JSON), runs the 150-query epidemiological + interactive
workload on ViDa over the raw files, and reports what the paper reports:
cumulative time, the cache service ratio, and where the time went.

Run:  python examples/hbp_analysis.py
"""

import tempfile

from repro.workloads import HBPConfig, generate_datasets, make_workload, run_vida


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="vida-hbp-")
    config = HBPConfig(
        patients_rows=2000, patients_proteins=48,
        genetics_rows=1500, genetics_snps=400,
        brain_objects=600, regions_per_object=8,
        n_queries=80,
    )
    print("generating raw datasets (the hospital's files, never loaded) ...")
    datasets = generate_datasets(workdir, config)
    for row in datasets.table2_rows():
        mb = row["bytes"] / 1e6
        print(f"  {row['relation']:<14} {row['tuples']:>6} tuples  "
              f"{str(row['attributes']):>5} attrs  {mb:6.1f} MB  {row['type']}")

    queries = make_workload(config)
    epi = sum(1 for q in queries if q.kind == "epidemiological")
    print(f"\nworkload: {len(queries)} queries "
          f"({epi} epidemiological, {len(queries) - epi} interactive)")
    print(f"example: {queries[-1].comprehension[:100]} ...")

    print("\nrunning on ViDa (raw files are the golden repository) ...")
    timing, db, _results = run_vida(datasets, queries)

    print(f"\ntotal wall time    : {timing.total_s:6.2f} s (zero preparation)")
    print(f"cache service ratio: {timing.extra['cache_hit_ratio']:.0%} "
          f"(paper reports ~80%)")
    cold = [s for s in db.query_log if not s.cache_only]
    warm = [s for s in db.query_log if s.cache_only]
    if cold and warm:
        avg_cold = sum(s.execute_ms for s in cold) / len(cold)
        avg_warm = sum(s.execute_ms for s in warm) / len(warm)
        print(f"avg raw-touching query : {avg_cold:7.1f} ms ({len(cold)} queries)")
        print(f"avg cache-served query : {avg_warm:7.1f} ms ({len(warm)} queries)")
        print(f"raw bytes re-read      : {timing.extra['raw_bytes'] / 1e6:7.1f} MB")
    print(f"cache entries: {len(db.cache)}, "
          f"~{db.cache.used_bytes / 1e6:.1f} MB in {sorted({e.cached.layout for e in db.cache.entries()})} layouts")


if __name__ == "__main__":
    main()
