#!/usr/bin/env python
"""Multi-model querying: binary arrays × CSV × workbook in one query.

Reproduces the paper's §3.1 example — an array file described as::

    Array(Dim(i, int), Dim(j, int), Att(val))
    val = Record(Att(elevation, float), Att(temperature, float))

and shows ViDa joining it against a CSV station relation and an XLS-like
workbook, with the array's dimensions bound as ordinary record fields.

Run:  python examples/multimodel_arrays.py
"""

import os
import tempfile

from repro import ViDa
from repro.formats import parse_description, write_array, write_csv, write_workbook


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="vida-arrays-")

    # --- the paper's source description, parsed by the grammar -----------
    description = parse_description("""
        Array(Dim(i, int), Dim(j, int), Att(val))
        val = Record(Att(elevation, float), Att(temperature, float))
    """)
    print(f"parsed description: {description}")

    # --- a 20x20 sensor grid in the binary array format ------------------
    grid_path = os.path.join(workdir, "grid.varr")
    values = [
        (100.0 + 5 * i + j, 10.0 + 0.5 * i - 0.2 * j)
        for i in range(20) for j in range(20)
    ]
    write_array(grid_path, (20, 20),
                [("elevation", "float"), ("temperature", "float")], values)

    # --- stations (CSV) index into the grid ------------------------------
    stations_path = os.path.join(workdir, "stations.csv")
    write_csv(stations_path, ["name", "cell_i", "cell_j"],
              [(f"st{k}", k % 20, (k * 7) % 20) for k in range(40)])

    # --- maintenance log in the workbook format ---------------------------
    book_path = os.path.join(workdir, "mntlog.vxls")
    write_workbook(book_path, [
        ("log", ["station", "cost"],
         [(f"st{k}", round(100 + k * 3.5, 2)) for k in range(0, 40, 2)]),
    ])

    db = ViDa()
    db.register_array("Grid", grid_path, dim_names=["i", "j"])
    db.register_csv("Stations", stations_path)
    db.register_xls("Maintenance", book_path)

    print("\n== aggregate directly over the array (dims are fields) ==")
    r = db.query("for { c <- Grid, c.i < 5, c.j < 5 } yield avg c.temperature")
    print(f"avg temperature in 5x5 corner: {r.value:.2f}")

    print("\n== array × CSV join through grid coordinates ==")
    r = db.query("""
        for { s <- Stations, c <- Grid,
              s.cell_i = c.i, s.cell_j = c.j, c.elevation > 150 }
        yield bag (name := s.name, elev := c.elevation, temp := c.temperature)
    """)
    print(f"{len(r.value)} high-elevation stations; e.g. {r.value[0]}")

    print("\n== three models in one comprehension ==")
    r = db.query("""
        for { s <- Stations, c <- Grid, m <- Maintenance,
              s.cell_i = c.i, s.cell_j = c.j, m.station = s.name,
              c.temperature < 12.0 }
        yield sum m.cost
    """)
    print(f"maintenance spend on cold cells: {r.value:.2f}")

    print("\n== result re-shaped ('virtualized') as columns ==")
    r = db.query(
        "for { c <- Grid, c.j = 0 } yield list (i := c.i, elev := c.elevation)",
        output="columns",
    )
    print(f"column j=0 elevations: {r.value['elev'][:6]} ...")


if __name__ == "__main__":
    main()
