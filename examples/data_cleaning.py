#!/usr/bin/env python
"""Scan-time data cleaning (paper §7): policies over a dirty raw CSV.

The same dirty file is queried under four policies — raise, skip, null, and
domain-knowledge repair (dictionaries of valid values via Hamming distance +
acceptable numeric ranges) — without ever rewriting the file.

Run:  python examples/data_cleaning.py
"""

import os
import tempfile

from repro import CleaningError, ViDa
from repro.cleaning import DictionaryPolicy, NullPolicy, RaisePolicy, SkipPolicy

DIRTY_CSV = """id,age,city,protein
1,34,geneva,55.2
2,4x,lausanne,48.0
3,51,genevq,61.3
4,29,zurich,uh-oh
5,abc,bern,44.9
6,47,lausnane,58.8
7,62,geneva,52.1
"""

VALID_CITIES = ["geneva", "lausanne", "zurich", "bern", "basel"]


def fresh_db(path: str, policy) -> ViDa:
    db = ViDa()
    db.register_csv("T", path, columns=["id", "age", "city", "protein"],
                    types=["int", "int", "string", "float"])
    if policy is not None:
        db.set_cleaning("T", policy)
    return db


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="vida-cleaning-")
    path = os.path.join(workdir, "dirty.csv")
    with open(path, "w") as fh:
        fh.write(DIRTY_CSV)

    query = "for { t <- T } yield bag (id := t.id, age := t.age, protein := t.protein)"

    print("== RaisePolicy: surface the first dirty value ==")
    try:
        fresh_db(path, RaisePolicy()).query(query)
    except CleaningError as err:
        print(f"  CleaningError: {err}")

    print("\n== SkipPolicy: drop dirty rows (conservative strategy) ==")
    db = fresh_db(path, SkipPolicy())
    r = db.query(query)
    print(f"  kept ids: {[row['id'] for row in r.value]} "
          f"(skipped {r.stats.skipped_rows} rows)")

    print("\n== NullPolicy: dirty values become nulls ==")
    r = fresh_db(path, NullPolicy()).query(query)
    for row in r.value:
        print(f"  {row}")

    print("\n== DictionaryPolicy: repair with domain knowledge ==")
    policy = DictionaryPolicy(
        dictionaries={"city": VALID_CITIES},
        ranges={"age": (0, 110), "protein": (20.0, 90.0)},
        fallback_skip=False,
    )
    db = fresh_db(path, policy)
    r = db.query("for { t <- T } yield bag (id := t.id, city := t.city, age := t.age)")
    for row in r.value:
        print(f"  {row}")
    print(f"  repairs performed: {policy.repairs}")
    print("  (genevq→geneva and lausnane→lausanne via Hamming distance; "
          "unparseable ages→range midpoint)")

    print("\n== queries not touching dirty columns see every row ==")
    r = fresh_db(path, SkipPolicy()).query("for { t <- T } yield count 1")
    print(f"  count over id only: {r.value} (projection pushdown means the "
          "dirty cells were never parsed)")


if __name__ == "__main__":
    main()
