"""Data cache: layouts, admission policy, merging, eviction, invalidation."""

import pytest

from repro.caching import AdmissionPolicy, CachedData, DataCache, materialize
from repro.errors import ViDaError


def test_materialize_rows_and_columns():
    rows = [(1, "a"), (2, "b")]
    as_rows = materialize("rows", ["x", "y"], rows)
    assert list(as_rows.iter_rows(["y", "x"])) == [("a", 1), ("b", 2)]
    as_cols = materialize("columns", ["x", "y"], rows)
    assert list(as_cols.iter_rows(["x"])) == [(1,), (2,)]
    assert as_cols.covers(["y"]) and not as_cols.covers(["z"])


def test_materialize_objects_layouts():
    objs = [{"a": 1, "b": {"c": 2}}, {"a": 3, "b": {"c": 4}}]
    for layout in ("objects", "json_text", "bson"):
        cached = materialize(layout, [], objs)
        assert cached.covers(["anything"])  # whole elements serve any projection
        assert list(cached.iter_rows(["a", "b.c"])) == [(1, 2), (3, 4)]
        assert [row[0] for row in cached.iter_rows(None)] == objs


def test_positions_layout_not_iterable():
    cached = materialize("positions", [], [(0, 10), (10, 25)])
    assert cached.count == 2
    with pytest.raises(ViDaError):
        list(cached.iter_rows(["a"]))


def test_unknown_layout():
    with pytest.raises(ViDaError):
        materialize("rowgroups", [], [])


def test_cache_lookup_prefers_columns():
    cache = DataCache(budget_bytes=1 << 20)
    cache.put("S", "objects", [], [{"a": 1}])
    cache.put("S", "columns", ["a"], [(1,)])
    entry = cache.lookup("S", ["a"])
    assert entry.cached.layout == "columns"


def test_cache_lookup_whole_needs_object_layout():
    cache = DataCache(1 << 20)
    cache.put("S", "columns", ["a"], [(1,)])
    assert not cache.peek("S", [], whole=True)
    cache.put("S", "objects", [], [{"a": 1}])
    assert cache.peek("S", [], whole=True)


def test_columnar_merge_accumulates_fields():
    cache = DataCache(1 << 20)
    cache.put("S", "columns", ["a"], [(1,), (2,)])
    cache.put("S", "columns", ["b"], [("x",), ("y",)])
    entry = cache.lookup("S", ["a", "b"])
    assert entry is not None
    assert list(entry.cached.iter_rows(["a", "b"])) == [(1, "x"), (2, "y")]
    # merged into a single entry
    assert len(cache) == 1


def test_columnar_merge_requires_same_count():
    cache = DataCache(1 << 20)
    cache.put("S", "columns", ["a"], [(1,), (2,)])
    cache.put("S", "columns", ["b"], [("x",)])  # different row universe
    assert cache.lookup("S", ["a", "b"]) is None
    assert len(cache) == 2


def test_admission_policy_rejects_large_entries():
    policy = AdmissionPolicy(max_entry_fraction=0.01)
    cache = DataCache(budget_bytes=10_000, policy=policy)
    out = cache.put("S", "columns", ["a"], [(i,) for i in range(1000)])
    assert out is None
    assert cache.stats.rejections == 1


def test_policy_nested_layout_thresholds():
    policy = AdmissionPolicy(object_bytes_demote_bson=100,
                             object_bytes_demote_positions=1000)
    assert policy.nested_layout(50) == "objects"
    assert policy.nested_layout(500) == "bson"
    assert policy.nested_layout(5000) == "positions"


def test_eviction_under_budget():
    cache = DataCache(budget_bytes=1)  # absurdly small
    cache.policy = AdmissionPolicy(max_entry_fraction=1e12)
    cache.put("A", "columns", ["a"], [(i,) for i in range(100)])
    cache.put("B", "columns", ["b"], [(i,) for i in range(100)])
    assert cache.stats.evictions >= 1
    assert len(cache) == 1  # only the most recent survives


def test_invalidate_source():
    cache = DataCache(1 << 20)
    cache.put("S", "columns", ["a"], [(1,)])
    cache.put("T", "columns", ["b"], [(2,)])
    dropped = cache.invalidate_source("S")
    assert dropped == 1
    assert cache.lookup("S", ["a"]) is None
    assert cache.lookup("T", ["b"]) is not None


def test_hit_ratio_stats():
    cache = DataCache(1 << 20)
    cache.put("S", "columns", ["a"], [(1,)])
    cache.lookup("S", ["a"])
    cache.lookup("S", ["zz"])
    assert cache.stats.lookups == 2
    assert cache.stats.hits == 1
    assert cache.stats.hit_ratio == 0.5
