"""Bench reporting helper tests."""

import os

from repro.bench import emit, table


def test_table_alignment():
    lines = table(["name", "value"], [["a", 1.5], ["longer-name", 123456.0]])
    assert lines[0].startswith("name")
    assert "-" in lines[1]
    assert len(lines) == 4
    # columns align: every rendered line has the same total width
    assert len({len(line) for line in lines}) == 1


def test_table_float_formatting():
    lines = table(["v"], [[0.12345], [12.3456], [1234.56]])
    assert "0.1234" in lines[2] or "0.1235" in lines[2]
    assert "12.35" in lines[3] or "12.34" in lines[3]
    assert "1234.6" in lines[4]


def test_emit_appends_to_log(tmp_path, monkeypatch):
    log = tmp_path / "bench.log"
    monkeypatch.setenv("VIDA_BENCH_LOG", str(log))
    emit("my experiment", ["row one", "row two"])
    content = log.read_text()
    assert "=== my experiment ===" in content
    assert "row two" in content
    emit("second", ["x"])
    assert "second" in log.read_text()


def test_reset_log(tmp_path, monkeypatch):
    from repro.bench import reset_log

    log = tmp_path / "bench.log"
    monkeypatch.setenv("VIDA_BENCH_LOG", str(log))
    emit("t", ["a"])
    reset_log()
    assert log.read_text() == ""
