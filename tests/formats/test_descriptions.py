"""Source-description grammar + schema-learning tests."""

import json

import pytest

from repro.errors import ParseError
from repro.formats import (
    describe_type,
    detect_format,
    learn_description,
    parse_description,
    sniff_delimiter,
    write_array,
    write_csv,
    write_workbook,
)
from repro.formats.descriptions import SourceDescription
from repro.mcc import types as T


def test_paper_example_array_description():
    t = parse_description("""
        Array(Dim(i, int), Dim(j, int), Att(val))
        val = Record(Att(elevation, float), Att(temperature, float))
    """)
    assert isinstance(t, T.ArrayType)
    assert t.rank == 2
    assert t.elem.field_type("elevation") == T.FLOAT


def test_record_description():
    t = parse_description("Record(Att(id, int), Att(name, string))")
    assert t == T.RecordType.of({"id": T.INT, "name": T.STRING})


def test_collection_descriptions():
    assert parse_description("Bag(Record(Att(a, int)))").kind == "bag"
    assert parse_description("Set(int)").elem == T.INT
    assert parse_description("List(float)").kind == "list"


def test_untyped_att_resolves_to_any():
    t = parse_description("Record(Att(payload))")
    assert t.field_type("payload") == T.ANY


def test_bad_syntax():
    with pytest.raises(ParseError):
        parse_description("Record(Whatever(a))")
    with pytest.raises(ParseError):
        parse_description("Array(Att(val, int))")  # missing Dim
    with pytest.raises(ParseError):
        parse_description("")


def test_describe_type_roundtrip():
    for text in (
        "Record(Att(id, int), Att(name, string))",
        "Bag(Record(Att(a, float)))",
        "Array(Dim(i, int), Att(val, float))",
    ):
        t = parse_description(text)
        assert parse_description(describe_type(t)) == t


def test_source_description_validation():
    with pytest.raises(ParseError):
        SourceDescription("x", "csv", T.bag_of(T.ANY), unit="blob")
    with pytest.raises(ParseError):
        SourceDescription("x", "csv", T.bag_of(T.ANY),
                          access_paths=("teleport",))


def test_element_type_of_array_description():
    desc = SourceDescription(
        "grid", "array",
        T.ArrayType((T.Dim("i"),), T.RecordType.of({"v": T.FLOAT})),
        unit="element",
    )
    elem = desc.element_type
    assert elem.field_names() == ("i", "v")


# -- format detection / learning ---------------------------------------------


def test_detect_and_learn_all_formats(tmp_path):
    csv_p = tmp_path / "a.csv"
    write_csv(csv_p, ["x", "y"], [(1, 2.5), (2, 3.5)])
    json_p = tmp_path / "b.json"
    json_p.write_text("\n".join(json.dumps({"k": i}) for i in range(3)))
    arr_p = tmp_path / "c.varr"
    write_array(arr_p, (2,), [("v", "int")], [(1,), (2,)])
    xls_p = tmp_path / "d.vxls"
    write_workbook(xls_p, [("s", ["a"], [(1,)])])

    assert detect_format(csv_p) == "csv"
    assert detect_format(json_p) == "json"
    assert detect_format(arr_p) == "array"
    assert detect_format(xls_p) == "xls"

    desc = learn_description(csv_p)
    assert desc.format == "csv" and desc.schema.elem.field_type("x") == T.INT
    assert learn_description(json_p).format == "json"
    assert learn_description(arr_p).schema.rank == 1
    assert learn_description(xls_p).options["sheet"] == "s"


def test_sniff_delimiter(tmp_path):
    p = tmp_path / "t.psv"
    p.write_text("a|b|c\n1|2|3\n4|5|6\n")
    assert sniff_delimiter(p) == "|"
    p2 = tmp_path / "t.tsv"
    p2.write_text("a\tb\n1\t2\n")
    assert sniff_delimiter(p2) == "\t"
