"""Schema-learning edge cases."""

import pytest

from repro.errors import DataFormatError
from repro.formats import detect_format, learn_description, sniff_delimiter


def test_empty_file_rejected(tmp_path):
    p = tmp_path / "empty.csv"
    p.write_text("")
    with pytest.raises(DataFormatError):
        detect_format(p)


def test_headerless_numbers_detected_as_csv(tmp_path):
    p = tmp_path / "n.txt"
    p.write_text("1,2,3\n4,5,6\n")
    assert detect_format(p) == "csv"


def test_json_with_leading_whitespace(tmp_path):
    p = tmp_path / "w.json"
    p.write_text('   \n\t{"a": 1}')
    assert detect_format(p) == "json"


def test_sniffer_prefers_consistent_delimiter(tmp_path):
    # commas appear but inconsistently; semicolons are the real delimiter
    p = tmp_path / "mixed.csv"
    p.write_text("a;b;c,d\n1;2;3\n4;5;6,7\n")
    assert sniff_delimiter(p) == ";"


def test_sniffer_no_content(tmp_path):
    p = tmp_path / "blank.csv"
    p.write_text("\n\n")
    with pytest.raises(DataFormatError):
        sniff_delimiter(p)


def test_learned_description_name_defaults_to_stem(tmp_path):
    p = tmp_path / "mydata.csv"
    p.write_text("a,b\n1,2\n")
    desc = learn_description(p)
    assert desc.name == "mydata"
    named = learn_description(p, "Custom")
    assert named.name == "Custom"
