"""Binary array (VARR) and workbook (VXLS) format tests."""

import pytest

from repro.errors import DataFormatError
from repro.formats.arrayfmt import ArraySource, read_header, write_array
from repro.formats.xlsfmt import XLSSource, write_workbook


@pytest.fixture()
def grid(tmp_path):
    path = tmp_path / "g.varr"
    values = [(float(i * 10 + j), i + j) for i in range(3) for j in range(4)]
    write_array(path, (3, 4), [("elev", "float"), ("temp", "int")], values)
    return str(path)


def test_header_roundtrip(grid):
    header = read_header(grid)
    assert header.dims == (3, 4)
    assert header.fields == (("elev", "float"), ("temp", "int"))
    assert header.element_count == 12


def test_element_access(grid):
    arr = ArraySource(grid, ["i", "j"])
    assert arr.read_element((1, 2)) == (12.0, 3)
    assert arr.read_element((0, 0)) == (0.0, 0)


def test_bounds_check(grid):
    arr = ArraySource(grid)
    with pytest.raises(DataFormatError):
        arr.read_element((3, 0))
    with pytest.raises(DataFormatError):
        arr.read_element((0,))


def test_row_column_chunk_units(grid):
    arr = ArraySource(grid)
    row = arr.read_row(2)
    assert [v[0] for v in row] == [20.0, 21.0, 22.0, 23.0]
    col = arr.read_column(1)
    assert [v[0] for v in col] == [1.0, 11.0, 21.0]
    chunk = arr.read_chunk(1, 1, 2, 2)
    assert chunk[0][0] == (11.0, 2)
    assert chunk[1][1] == (22.0, 4)


def test_chunk_bounds(grid):
    arr = ArraySource(grid)
    with pytest.raises(DataFormatError):
        arr.read_chunk(2, 3, 2, 2)


def test_full_scan_row_major(grid):
    arr = ArraySource(grid, ["i", "j"])
    rows = list(arr.scan())
    assert rows[0] == (0, 0, 0.0, 0)
    assert rows[5] == (1, 1, 11.0, 2)
    assert len(rows) == 12


def test_schema(grid):
    arr = ArraySource(grid, ["i", "j"])
    schema = arr.schema()
    assert schema.rank == 2
    elem = arr.element_type()
    assert elem.field_names() == ("i", "j", "elev", "temp")


def test_write_validates_element_count(tmp_path):
    with pytest.raises(DataFormatError):
        write_array(tmp_path / "bad.varr", (2, 2),
                    [("v", "float")], [(1.0,)] * 3)


def test_write_validates_types(tmp_path):
    with pytest.raises(DataFormatError):
        write_array(tmp_path / "bad.varr", (1,), [("v", "complex")], [(1,)])


def test_bad_magic(tmp_path):
    path = tmp_path / "junk.varr"
    path.write_bytes(b"NOPE" + b"\x00" * 64)
    with pytest.raises(DataFormatError):
        read_header(path)


# -- VXLS -----------------------------------------------------------


def test_workbook_roundtrip(tmp_path):
    path = tmp_path / "b.vxls"
    write_workbook(path, [
        ("s1", ["a", "b"], [(1, "x"), (None, "y"), (3, None)]),
        ("s2", ["v"], [(1.5,), (2.5,)]),
    ])
    wb = XLSSource(path)
    assert wb.sheet_names() == ["s1", "s2"]
    assert list(wb.scan("s1")) == [(1, "x"), (None, "y"), (3, None)]
    assert list(wb.scan("s2")) == [(1.5,), (2.5,)]


def test_workbook_projection(tmp_path):
    path = tmp_path / "b.vxls"
    write_workbook(path, [("s", ["a", "b", "c"], [(1, 2, 3), (4, 5, 6)])])
    wb = XLSSource(path)
    assert list(wb.scan("s", ["c", "a"])) == [(3, 1), (6, 4)]


def test_workbook_unknown_sheet_and_column(tmp_path):
    path = tmp_path / "b.vxls"
    write_workbook(path, [("s", ["a"], [(1,)])])
    wb = XLSSource(path)
    with pytest.raises(DataFormatError):
        list(wb.scan("nope"))
    with pytest.raises(DataFormatError):
        list(wb.scan("s", ["zz"]))


def test_workbook_row_width_validation(tmp_path):
    with pytest.raises(DataFormatError):
        write_workbook(tmp_path / "b.vxls", [("s", ["a", "b"], [(1,)])])
