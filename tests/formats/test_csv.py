"""CSV plugin + positional map tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DataFormatError
from repro.formats.csvfmt import CSVOptions, CSVSource, PositionalMap, write_csv


@pytest.fixture()
def csv_file(tmp_path):
    path = tmp_path / "t.csv"
    rows = [(i, f"name{i}", i * 1.5 if i % 4 else None, i % 2 == 0)
            for i in range(20)]
    write_csv(path, ["id", "name", "score", "flag"], rows)
    return str(path)


def test_schema_inference(csv_file):
    src = CSVSource(csv_file)
    assert src.columns == ["id", "name", "score", "flag"]
    assert src.types == ["int", "string", "float", "bool"]


def test_cold_scan_projection(csv_file):
    src = CSVSource(csv_file)
    rows = list(src.scan(["id", "score"]))
    assert rows[0] == (0, None)
    assert rows[1] == (1, 1.5)
    assert len(rows) == 20


def test_cold_scan_builds_posmap(csv_file):
    src = CSVSource(csv_file)
    assert not src.posmap.complete
    list(src.scan(["id"]))
    assert src.posmap.complete
    assert len(src.posmap.row_offsets) == 20


def test_warm_scan_equals_cold_scan(csv_file):
    src = CSVSource(csv_file)
    cold = list(src.scan(["name", "flag"]))
    warm = list(src.scan(["name", "flag"]))
    assert cold == warm


def test_warm_scan_unmapped_column(csv_file):
    src = CSVSource(csv_file, posmap_stride=0)
    list(src.scan(["id"]))  # maps only column 0
    scores = [r[0] for r in src.scan(["score"])]
    assert scores[1] == 1.5
    assert src.posmap.stats.anchored_scans > 0


def test_fetch_row_positional_access(csv_file):
    src = CSVSource(csv_file)
    list(src.scan(["id"]))
    assert src.fetch_row(5, ["name", "id"]) == ("name5", 5)
    assert src.fetch_row(19, ["id"]) == (19,)


def test_fetch_row_requires_map(csv_file):
    src = CSVSource(csv_file)
    with pytest.raises(DataFormatError):
        src.fetch_row(0, ["id"])


def test_row_count(csv_file):
    src = CSVSource(csv_file)
    assert src.row_count() == 20
    list(src.scan(["id"]))
    assert src.row_count() == 20


def test_unknown_column(csv_file):
    src = CSVSource(csv_file)
    with pytest.raises(DataFormatError):
        list(src.scan(["nope"]))


def test_dirty_value_raises_without_policy(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b\n1,2\nXX,4\n")
    # declared types pin column a to int; the dirty token must surface
    src = CSVSource(path, columns=["a", "b"], types=["int", "int"])
    with pytest.raises(DataFormatError):
        list(src.scan(["a"]))


def test_inference_widens_dirty_column_to_string(tmp_path):
    path = tmp_path / "mixed.csv"
    path.write_text("a,b\n1,2\nXX,4\n")
    src = CSVSource(path)
    assert src.types[0] == "string"
    assert list(src.scan(["a"])) == [("1",), ("XX",)]


def test_invalidate_auxiliary(csv_file):
    src = CSVSource(csv_file)
    list(src.scan(["id"]))
    src.invalidate_auxiliary()
    assert not src.posmap.complete


def test_no_header_mode(tmp_path):
    path = tmp_path / "nh.csv"
    path.write_text("1,a\n2,b\n")
    src = CSVSource(path, CSVOptions(header=False))
    assert src.columns == ["c0", "c1"]
    assert list(src.scan(None)) == [(1, "a"), (2, "b")]


def test_alternative_delimiter(tmp_path):
    path = tmp_path / "t.tsv"
    path.write_text("a\tb\n1\tx\n")
    src = CSVSource(path, CSVOptions(delimiter="\t"))
    assert list(src.scan(["b"])) == [("x",)]


# -- positional map unit tests -------------------------------------------------


def test_posmap_direct_hit_and_anchor():
    pm = PositionalMap(ncols=6, stride=0)
    line = "aa,bb,cc,dd,ee,ff"
    pm.begin_population([1, 4])
    pm.record_row(0, line, [1, 4])
    pm.finish_population()
    assert pm.field_in_line(line, 0, 1) == "bb"
    assert pm.stats.direct_hits == 1
    assert pm.field_in_line(line, 0, 5) == "ff"  # anchored from col 4
    assert pm.stats.anchored_scans == 1
    assert pm.field_in_line(line, 0, 0) == "aa"  # full scan from row start
    assert pm.stats.full_scans == 1


def test_posmap_navigation_cost():
    pm = PositionalMap(ncols=10, stride=0)
    pm.begin_population([4])
    pm.record_row(0, ",".join(str(i) for i in range(10)), [4])
    assert pm.navigation_cost(4) == 0
    assert pm.navigation_cost(7) == 3
    assert pm.navigation_cost(2) == 2  # no anchor ≤ 2 → from row start


def test_posmap_short_row():
    pm = PositionalMap(ncols=5, stride=0)
    pm.begin_population([3])
    pm.record_row(0, "a,b", [3])  # row shorter than target column
    assert pm.field_in_line("a,b", 0, 3) == ""


@given(st.lists(
    st.tuples(st.integers(-1000, 1000), st.floats(allow_nan=False,
              allow_infinity=False, width=32)),
    min_size=1, max_size=30,
))
@settings(max_examples=30, deadline=None)
def test_roundtrip_write_then_scan(tmp_path_factory, rows):
    """write_csv → CSVSource.scan is the identity on (int, float) rows."""
    path = tmp_path_factory.mktemp("rt") / "r.csv"
    write_csv(path, ["a", "b"], rows)
    src = CSVSource(path)
    got = list(src.scan(None))
    assert [r[0] for r in got] == [r[0] for r in rows]
    for (_, b1), (_, b2) in zip(rows, got):
        assert b2 == pytest.approx(b1)


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_posmap_random_access_equals_split(data):
    """field_in_line agrees with naive split() for random anchors/targets."""
    ncols = data.draw(st.integers(2, 8))
    nrows = data.draw(st.integers(1, 5))
    anchors = sorted(data.draw(st.sets(st.integers(0, ncols - 1), max_size=3)))
    lines = [
        ",".join(f"v{r}_{c}" for c in range(ncols)) for r in range(nrows)
    ]
    pm = PositionalMap(ncols=ncols, stride=0)
    pm.begin_population(list(anchors))
    for r, line in enumerate(lines):
        pm.record_row(r * 100, line, list(anchors))
    pm.finish_population()
    for r, line in enumerate(lines):
        for c in range(ncols):
            assert pm.field_in_line(line, r, c) == line.split(",")[c]
