"""JSON plugin, semi-index, and BSON-lite codec tests."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DataFormatError
from repro.formats.jsonfmt import (
    JSONSemiIndex,
    JSONSource,
    bson,
    get_path,
)


@pytest.fixture()
def ndjson_file(tmp_path):
    path = tmp_path / "objs.json"
    with open(path, "w") as fh:
        for i in range(10):
            fh.write(json.dumps(
                {"id": i, "info": {"vol": i * 1.5, "tag": f"t{i}"},
                 "items": [{"v": j} for j in range(i % 3)]}
            ) + "\n")
    return str(path)


@pytest.fixture()
def array_json_file(tmp_path):
    path = tmp_path / "arr.json"
    objs = [{"id": i, "x": "a{b}c" if i == 1 else "plain"} for i in range(5)]
    path.write_text(json.dumps(objs))
    return str(path)


def test_semi_index_counts_ndjson(ndjson_file):
    src = JSONSource(ndjson_file)
    assert src.object_count() == 10


def test_semi_index_counts_top_level_array(array_json_file):
    src = JSONSource(array_json_file)
    assert src.object_count() == 5


def test_semi_index_ignores_braces_in_strings(array_json_file):
    src = JSONSource(array_json_file)
    objs = list(src.scan_objects())
    assert objs[1]["x"] == "a{b}c"


def test_semi_index_spans_are_parseable(ndjson_file):
    src = JSONSource(ndjson_file)
    raw = open(ndjson_file, "rb").read()
    for span in src.scan_positions():
        obj = json.loads(raw[span.start:span.end])
        assert "id" in obj


def test_load_object_positional(ndjson_file):
    src = JSONSource(ndjson_file)
    assert src.load_object(7)["id"] == 7


def test_scan_paths(ndjson_file):
    src = JSONSource(ndjson_file)
    rows = list(src.scan_paths(["id", "info.vol", "missing.path"]))
    assert rows[2] == (2, 3.0, None)


def test_assemble_survivors_only(ndjson_file):
    src = JSONSource(ndjson_file)
    spans = [s for i, s in enumerate(src.scan_positions()) if i % 2 == 0]
    objs = src.assemble(spans)
    assert [o["id"] for o in objs] == [0, 2, 4, 6, 8]


def test_schema_samples_prefix_only(ndjson_file):
    src = JSONSource(ndjson_file)
    schema = src.schema()
    assert schema.elem.field_type("id") is not None
    # schema inference must not have built the (full-pass) semi-index
    assert not src.has_semi_index()


def test_invalidate_auxiliary(ndjson_file):
    src = JSONSource(ndjson_file)
    src.object_count()
    assert src.has_semi_index()
    src.invalidate_auxiliary()
    assert not src.has_semi_index()


def test_truncated_json_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"a": 1')
    with pytest.raises(DataFormatError):
        JSONSemiIndex.build_from_file(str(path))


def test_unbalanced_brace_rejected():
    with pytest.raises(DataFormatError):
        JSONSemiIndex.build(b'}{')


def test_get_path():
    obj = {"a": {"b": [10, {"c": 3}]}}
    assert get_path(obj, "a.b.0") == 10
    assert get_path(obj, "a.b.1.c") == 3
    assert get_path(obj, "a.x") is None
    assert get_path(obj, "a.b.9") is None


def test_build_chunked_equals_in_memory(ndjson_file):
    data = open(ndjson_file, "rb").read()
    in_memory = JSONSemiIndex.build(data)
    chunked = JSONSemiIndex.build_from_file(ndjson_file, chunk_size=17)
    assert [(s.start, s.end) for s in in_memory] == \
           [(s.start, s.end) for s in chunked]


# -- BSON-lite -----------------------------------------------------------

_json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(min_size=1, max_size=8).filter(
            lambda s: "\x00" not in s), children, max_size=4),
    ),
    max_leaves=12,
)


@given(st.dictionaries(
    st.text(min_size=1, max_size=8).filter(lambda s: "\x00" not in s),
    _json_values, max_size=5,
))
@settings(max_examples=80, deadline=None)
def test_bson_roundtrip(doc):
    assert bson.decode(bson.encode(doc)) == doc


def test_bson_rejects_non_document():
    with pytest.raises(DataFormatError):
        bson.encode([1, 2, 3])


def test_bson_trailing_bytes_rejected():
    blob = bson.encode({"a": 1}) + b"junk"
    with pytest.raises(DataFormatError):
        bson.decode(blob)


def test_bson_nested_arrays():
    doc = {"xs": [1, [2, 3], {"k": "v"}]}
    assert bson.decode(bson.encode(doc)) == doc


def test_bson_encoded_size_counts():
    assert bson.encoded_size({"a": 1}) == len(bson.encode({"a": 1}))
