"""The NDJSON query server: N tenants multiplexed over one EngineContext."""

import asyncio
import json

import pytest

from repro import EngineContext, ViDa
from repro.server import TenantQuota, ViDaServer

ROWS = 3000
Q = "for { t <- T, t.age > 40 } yield bag (id := t.id, s := t.score)"
SUM_Q = "for { t <- T, t.age > 40 } yield sum t.score"


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "t.csv"
    with open(path, "w") as fh:
        fh.write("id,age,score\n")
        for i in range(ROWS):
            fh.write(f"{i},{20 + i % 60},{i * 3 % 101}\n")
    return str(path)


def expected_rows(csv_path):
    db = ViDa()
    db.register_csv("T", csv_path)
    try:
        return db.query(Q, output="records").value
    finally:
        db.close()


async def send(writer, payload: dict) -> None:
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()


async def recv(reader) -> dict:
    line = await asyncio.wait_for(reader.readline(), timeout=30)
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


async def request(host, port, payload: dict) -> dict:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await send(writer, payload)
        return await recv(reader)
    finally:
        writer.close()


def run(coro):
    return asyncio.run(coro)


def make_server(csv_path, **kwargs):
    """A started server with T pre-registered in the shared catalog."""

    async def setup():
        ctx = EngineContext()
        bootstrap = ViDa(context=ctx)
        bootstrap.register_csv("T", csv_path)
        bootstrap.close()
        server = ViDaServer(context=ctx, **kwargs)
        await server.start()
        return server

    return setup


# ---------------------------------------------------------------------------
# 16 concurrent tenants over one engine: shared warm state, identical rows
# ---------------------------------------------------------------------------


def test_sixteen_concurrent_clients_share_warm_state(csv_path):
    expected = expected_rows(csv_path)

    async def scenario():
        server = await make_server(csv_path, max_workers=8)()
        host, port = server.address
        try:
            # one warmup query builds posmap + cache for everyone
            warm = await request(host, port, {"id": 0, "q": Q})
            assert warm["ok"], warm
            responses = await asyncio.gather(*[
                request(host, port, {"id": i, "q": Q}) for i in range(16)
            ])
            stats = await request(host, port, {"op": "stats"})
        finally:
            await server.stop()
        return responses, stats

    responses, stats = run(scenario())
    for i, resp in enumerate(responses):
        assert resp["ok"], resp
        assert resp["id"] == i
        assert resp["rows"] == expected  # bit-identical across tenants
    assert stats["ok"]
    engine = stats["engine"]
    # cross-tenant sharing: the cold scan was paid once, everyone else hit
    assert engine["cache"]["hits"] > 0
    assert engine["posmap_adoptions"] == 1
    assert engine["queries"] >= 17
    assert engine["sessions_opened"] >= 17  # bootstrap + one per connection


# ---------------------------------------------------------------------------
# per-tenant admission control: structured quota errors
# ---------------------------------------------------------------------------


def test_max_inflight_quota_rejects_structured_error(csv_path):
    async def scenario():
        server = await make_server(
            csv_path, quota=TenantQuota(max_inflight=1))()
        host, port = server.address
        try:
            reader, writer = await asyncio.open_connection(host, port)
            # two queries on one tenant connection, written back to back:
            # only one slot exists, so exactly one is refused immediately
            writer.write(json.dumps({"id": 1, "q": SUM_Q}).encode() + b"\n"
                         + json.dumps({"id": 2, "q": SUM_Q}).encode() + b"\n")
            await writer.drain()
            r1 = await recv(reader)
            r2 = await recv(reader)
            writer.close()
        finally:
            await server.stop()
        return r1, r2

    r1, r2 = run(scenario())
    by_ok = sorted((r1, r2), key=lambda r: r["ok"])
    rejected, served = by_ok
    assert served["ok"]
    assert not rejected["ok"]
    assert rejected["error"]["type"] == "quota"
    assert "in flight" in rejected["error"]["message"]


def test_zero_inflight_quota_rejects_everything(csv_path):
    async def scenario():
        server = await make_server(
            csv_path, quota=TenantQuota(max_inflight=0))()
        host, port = server.address
        try:
            resp = await request(host, port, {"id": 9, "q": SUM_Q})
            stats = await request(host, port, {"op": "stats"})
        finally:
            await server.stop()
        return resp, stats

    resp, stats = run(scenario())
    assert not resp["ok"]
    assert resp["error"]["type"] == "quota"
    assert stats["server"]["quota_rejections"] >= 1


def test_cache_write_quota_surfaces_in_tenant_stats(csv_path):
    async def scenario():
        server = await make_server(
            csv_path,
            quota=TenantQuota(max_inflight=4, cache_write_bytes=0))()
        host, port = server.address
        try:
            reader, writer = await asyncio.open_connection(host, port)
            await send(writer, {"id": 1, "q": SUM_Q})
            assert (await recv(reader))["ok"]
            await send(writer, {"id": 2, "op": "stats"})
            stats = await recv(reader)
            writer.close()
        finally:
            await server.stop()
        return stats

    stats = run(scenario())
    tenant = stats["tenant"]
    assert tenant["cache_write_quota_bytes"] == 0
    assert tenant["cache_writes_denied"] >= 1
    assert tenant["queries"] == 1


# ---------------------------------------------------------------------------
# protocol and error surfaces
# ---------------------------------------------------------------------------


def test_protocol_and_parse_errors(csv_path):
    async def scenario():
        server = await make_server(csv_path)()
        host, port = server.address
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            await writer.drain()
            bad_json = await recv(reader)
            await send(writer, {"id": 1, "op": "frobnicate"})
            bad_op = await recv(reader)
            await send(writer, {"id": 2, "q": "for { broken"})
            bad_query = await recv(reader)
            await send(writer, {"id": 3, "sql": 42})
            bad_type = await recv(reader)
            await send(writer, {"id": 4, "q": "for { t <- Nope } yield count 1"})
            bad_source = await recv(reader)
            writer.close()
        finally:
            await server.stop()
        return bad_json, bad_op, bad_query, bad_type, bad_source

    bad_json, bad_op, bad_query, bad_type, bad_source = run(scenario())
    assert bad_json["error"]["type"] == "protocol"
    assert bad_op["error"]["type"] == "protocol"
    assert bad_op["id"] == 1
    assert bad_query["error"]["type"] == "parse"
    assert bad_type["error"]["type"] == "protocol"
    assert bad_source["ok"] is False  # unknown source is a structured error


def test_register_explain_and_sql_ops(csv_path, tmp_path):
    extra = tmp_path / "extra.csv"
    with open(extra, "w") as fh:
        fh.write("k,v\n1,10\n2,20\n3,30\n")

    async def scenario():
        server = await make_server(csv_path)()
        host, port = server.address
        try:
            reader, writer = await asyncio.open_connection(host, port)
            await send(writer, {"id": 1, "op": "register", "name": "E",
                                "path": str(extra), "format": "csv"})
            reg = await recv(reader)
            await send(writer, {"id": 2, "sql": "SELECT v FROM E WHERE k > 1"})
            rows = await recv(reader)
            await send(writer, {"id": 3, "op": "explain", "q": SUM_Q})
            explain = await recv(reader)
            writer.close()
        finally:
            await server.stop()
        return reg, rows, explain

    reg, rows, explain = run(scenario())
    assert reg["ok"] and reg["registered"] == "E"
    assert rows["ok"]
    assert sorted(r["v"] for r in rows["rows"]) == [20, 30]
    assert explain["ok"] and "physical" in explain["text"]
